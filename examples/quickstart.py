#!/usr/bin/env python3
"""Quickstart: inductance-aware repeater insertion for a global wire.

Optimizes the segment length and repeater size of a 100 nm-node top-metal
wire once ignoring inductance (classical Elmore/RC optimum) and once with
the paper's exact two-pole optimization at l = 1.5 nH/mm, then shows what
the inductance-blind design would cost.

Run:  python examples/quickstart.py
"""

from repro import (NODE_100NM, Stage, critical_inductance, optimize_repeater,
                   rc_optimum, stage_delay_per_length, threshold_delay,
                   units)


def main() -> None:
    node = NODE_100NM
    l = 1.5 * units.NH_PER_MM          # effective line inductance
    line = node.line_with_inductance(l)

    print(f"Technology: {node.name} (metal {node.metal_level}, "
          f"r = {units.to_ohm_per_mm(line.r):.1f} ohm/mm, "
          f"c = {units.to_pf_per_m(line.c):.1f} pF/m, "
          f"l = {units.to_nh_per_mm(line.l):.1f} nH/mm)")
    print()

    # Classical RC (Elmore) optimum — closed form, inductance-blind.
    rc = rc_optimum(node.line, node.driver)
    print("RC (Elmore) optimum:")
    print(f"  segment length h = {units.to_mm(rc.h_opt):.2f} mm")
    print(f"  repeater size  k = {rc.k_opt:.0f} x minimum")
    print(f"  segment delay    = {units.to_ps(rc.tau_opt):.1f} ps "
          f"({rc.delay_per_length * 1e9:.2f} ps/mm)")
    print()

    # The paper's RLC optimization (Eqs. 7-8, 2-D Newton).
    rlc = optimize_repeater(line, node.driver)
    print(f"RLC optimum at l = {units.to_nh_per_mm(l):.1f} nH/mm "
          f"({rlc.method.value}, {rlc.iterations} iterations, "
          f"{rlc.damping.value}):")
    print(f"  segment length h = {units.to_mm(rlc.h_opt):.2f} mm "
          f"({rlc.h_opt / rc.h_opt:.2f}x RC)")
    print(f"  repeater size  k = {rlc.k_opt:.0f} x minimum "
          f"({rlc.k_opt / rc.k_opt:.2f}x RC)")
    print(f"  segment delay    = {units.to_ps(rlc.tau):.1f} ps "
          f"({rlc.delay_per_length * 1e9:.2f} ps/mm)")
    print()

    # What the inductance-blind sizing costs on this line (Fig. 8).
    blind = stage_delay_per_length(line, node.driver, rc.h_opt, rc.k_opt, 0.5)
    penalty = blind / rlc.delay_per_length
    print(f"Using the RC sizing on the real (inductive) line costs "
          f"{(penalty - 1.0) * 100:.1f}% extra delay per unit length.")

    # Damping diagnostics (Fig. 4 territory).
    stage = Stage(line=line, driver=node.driver, h=rlc.h_opt, k=rlc.k_opt)
    l_crit = critical_inductance(stage)
    result = threshold_delay(stage)
    print(f"At the optimum the stage is {result.damping.value} "
          f"(l = {units.to_nh_per_mm(l):.2f} nH/mm vs "
          f"l_crit = {units.to_nh_per_mm(l_crit):.2f} nH/mm).")


if __name__ == "__main__":
    main()
