#!/usr/bin/env python3
"""Variation-aware and power-aware repeater design.

Two engineering questions layered on the paper's optimizer:

1. *How much guardband does inductance uncertainty cost?*  The effective
   l of a global wire spans a wide range with neighbour activity
   (see examples/extraction_tour.py); this script propagates a 30%
   1-sigma spread on l (plus 10% on c) through the exact delay — by
   Monte Carlo and by the analytic sensitivities — at the RLC optimum.

2. *What does a power cap cost in delay?*  Delay-optimal repeater
   insertion spends a large fraction of its switching capacitance on the
   repeaters themselves; the power-capped optimizer quantifies the
   delay/power trade-off curve.

Run:  python examples/variation_and_power.py
"""

from repro import NODE_100NM, Stage, optimize_repeater, units
from repro.analysis import delay_variation
from repro.analysis.power import optimize_with_power_cap, power_report
from repro.core.sensitivity import delay_sensitivities


def main() -> None:
    node = NODE_100NM
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    optimum = optimize_repeater(line, node.driver)
    stage = Stage(line=line, driver=node.driver,
                  h=optimum.h_opt, k=optimum.k_opt)

    print(f"RLC optimum at l = 1 nH/mm: h = {units.to_mm(optimum.h_opt):.2f}"
          f" mm, k = {optimum.k_opt:.0f}, "
          f"tau = {units.to_ps(optimum.tau):.1f} ps")
    print()

    # --- 1. Variation analysis -------------------------------------
    sens = delay_sensitivities(stage)
    print("delay elasticities (%/%):",
          {p: round(v, 3) for p, v in sens.relative.items()
           if p not in ("h", "k")})
    spreads = {"l": 0.30, "c": 0.10}
    variation = delay_variation(stage, spreads, samples=400)
    print(f"under 1-sigma spreads {spreads}:")
    print(f"  Monte Carlo: sigma_tau = "
          f"{units.to_ps(variation.std_tau):.2f} ps "
          f"({variation.three_sigma_fraction * 100:.1f}% 3-sigma "
          f"guardband)")
    print(f"  linearized:  sigma_tau = "
          f"{units.to_ps(variation.linear_std_tau):.2f} ps "
          f"(error {variation.linearization_error * 100:.1f}%)")
    print()

    # --- 2. Power-capped design ------------------------------------
    frequency = 2e9
    full = power_report(line, node.driver, optimum.h_opt, optimum.k_opt,
                        vdd=node.vdd, frequency=frequency)
    print(f"delay-optimal power: "
          f"{full.dynamic_power_per_length * units.MM * 1e3:.3f} mW/mm "
          f"({full.repeater_fraction * 100:.0f}% spent on repeaters)")
    for fraction in (0.9, 0.8, 0.7):
        capped = optimize_with_power_cap(
            line, node.driver, vdd=node.vdd, frequency=frequency,
            power_budget_per_length=fraction
            * full.dynamic_power_per_length)
        print(f"  cap at {fraction:.0%}: h = "
              f"{units.to_mm(capped.h_opt):.1f} mm, k = "
              f"{capped.k_opt:.0f}, delay penalty "
              f"{(capped.delay_penalty - 1) * 100:.1f}%")
    print()
    print("Reading: ~20% of the repeater power buys back almost no delay")
    print("(the optimum is flat), so power-aware insertion is nearly free")
    print("— until the cap forces the repeater density below the knee.")


if __name__ == "__main__":
    main()
