#!/usr/bin/env python3
"""Wire-width co-optimization at fixed routing pitch.

At a fixed 4 um pitch, a wider wire has less resistance but more
capacitance — both to the planes (plate term grows with w) and to its
neighbours (the spacing shrinks).  Feeding the extraction closed forms
into the paper's exact RLC repeater optimizer yields the best width per
inductance assumption, and shows how the optimum shifts when the
neighbours' switching (Miller factor) is accounted for.

Run:  python examples/wire_sizing_study.py
"""

from repro import optimize_repeater, units
from repro.core.wire_sizing import line_from_geometry, optimize_wire_width
from repro.extraction import wire_from_tech
from repro.tech import NODE_100NM


def main() -> None:
    node = NODE_100NM
    reference = wire_from_tech(node.geometry)
    pitch = node.geometry.pitch

    print(f"Wire sizing at fixed {pitch * 1e6:.0f} um pitch, "
          f"{node.name} drivers")
    print(f"{'l (nH/mm)':>10} {'miller':>7} {'best w (um)':>12} "
          f"{'h_opt (mm)':>11} {'k_opt':>6} {'delay (ps/mm)':>14}")
    for l_nh in (0.5, 1.0, 2.0):
        for miller in (0.0, 1.0, 2.0):
            sized = optimize_wire_width(
                reference, pitch, node.epsilon_r, node.driver,
                inductance=l_nh * units.NH_PER_MM, miller_factor=miller)
            print(f"{l_nh:>10.1f} {miller:>7.1f} "
                  f"{sized.width * 1e6:>12.2f} "
                  f"{units.to_mm(sized.h_opt):>11.2f} "
                  f"{sized.k_opt:>6.0f} "
                  f"{sized.delay_per_length * 1e9:>14.2f}")

    # What the drawn (Table 1) width costs vs the co-optimized one.
    drawn = line_from_geometry(reference, node.geometry.width, pitch,
                               node.epsilon_r,
                               inductance=1.0 * units.NH_PER_MM)
    drawn_optimum = optimize_repeater(drawn, node.driver)
    best = optimize_wire_width(reference, pitch, node.epsilon_r,
                               node.driver,
                               inductance=1.0 * units.NH_PER_MM)
    penalty = drawn_optimum.delay_per_length / best.delay_per_length
    print()
    print(f"Table 1's drawn width ({node.geometry.width * 1e6:.0f} um) is "
          f"{(penalty - 1) * 100:.1f}% off the co-optimized width "
          f"({best.width * 1e6:.2f} um) at l = 1 nH/mm — the drawn "
          f"geometry is already close to optimal for these drivers.")


if __name__ == "__main__":
    main()
