#!/usr/bin/env python3
"""Parasitic-extraction tour: from wire geometry to (r, c, l) bounds.

Starts from Table 1's top-metal geometry and recomputes, with the
library's closed-form extractors (the offline stand-ins for FASTCAP and a
field solver):

* the DC resistance per unit length (exact match to Table 1),
* the capacitance per unit length with its Miller switching range
  (the paper's Sec. 3 "up to 4x" variation remark),
* the effective inductance range from best-case (adjacent return) to
  worst-case (distant return), justifying the paper's 0 <= l < 5 nH/mm
  sweep window.

Run:  python examples/extraction_tour.py
"""

from repro import units
from repro.extraction import (COPPER_RESISTIVITY, capacitance_range,
                              inductance_range, partial_self_inductance_per_length,
                              sakurai_coupling, sakurai_tamaru_ground,
                              total_capacitance, wire_from_tech)
from repro.tech import NODE_100NM, NODE_250NM


def tour(node) -> None:
    wire = wire_from_tech(node.geometry, length=10e-3)   # 1 cm global wire
    print(f"--- {node.name}: w = {wire.width * 1e6:.1f} um, "
          f"t = {wire.thickness * 1e6:.1f} um, "
          f"h_ins = {wire.height * 1e6:.1f} um, "
          f"spacing = {wire.spacing * 1e6:.1f} um, eps_r = {node.epsilon_r}")

    r = wire.resistance_per_length(COPPER_RESISTIVITY)
    print(f"resistance: {units.to_ohm_per_mm(r):.2f} ohm/mm "
          f"(Table 1: {units.to_ohm_per_mm(node.line.r):.2f})")

    ground = sakurai_tamaru_ground(wire, node.epsilon_r)
    coupling = sakurai_coupling(wire, node.epsilon_r)
    quiet = total_capacitance(wire, node.epsilon_r)
    low, high = capacitance_range(wire, node.epsilon_r)
    print(f"capacitance: plane {units.to_pf_per_m(ground):.1f} + "
          f"2 x lateral {units.to_pf_per_m(coupling):.1f} pF/m")
    print(f"  quiet-neighbour total {units.to_pf_per_m(quiet.total):.1f} "
          f"pF/m (Table 1: {units.to_pf_per_m(node.line.c):.1f}), "
          f"Miller range {units.to_pf_per_m(low):.0f}.."
          f"{units.to_pf_per_m(high):.0f} pF/m "
          f"({high / low:.1f}x swing)")

    partial = partial_self_inductance_per_length(wire)
    best, worst = inductance_range(wire)
    print(f"inductance: partial self {units.to_nh_per_mm(partial):.2f} "
          f"nH/mm; effective range {units.to_nh_per_mm(best):.2f} "
          f"(adjacent return) .. {units.to_nh_per_mm(worst):.2f} nH/mm "
          f"(distant return) — inside the paper's < 5 nH/mm bound")
    print()


def main() -> None:
    for node in (NODE_250NM, NODE_100NM):
        tour(node)
    print("This uncertainty in the effective l — one wire, a 5x range of")
    print("plausible inductance depending on where the return current")
    print("flows — is exactly why the paper studies delay sensitivity to")
    print("inductance *variation* (Fig. 8) rather than one fixed value.")


if __name__ == "__main__":
    main()
