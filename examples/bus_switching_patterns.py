#!/usr/bin/env python3
"""Switching-pattern (Miller) effects on a coupled bus.

Builds a three-line bus at Table 1's 100 nm geometry — coupling
capacitance from the Sakurai extractor, mutual inductance between the
segment inductors — and measures the centre line's delay while its
neighbours are quiet, switching in phase, or switching anti-phase.

The headline: with capacitive coupling alone the classic Miller ordering
holds (in-phase fastest); once inductive coupling is included the
ordering *inverts*, because in-phase switching pushes the victim's return
current far away (large effective loop inductance) while anti-phase
neighbours act as nearby returns.  This is the dynamic, measurable form
of the paper's Sec. 1.1 argument that the effective l of a wire depends
on its neighbours' activity.

Run:  python examples/bus_switching_patterns.py   (~20 s)
"""

from repro.experiments import run_experiment


def main() -> None:
    result = run_experiment("ext_bus", inductive_couplings=(0.0, 0.3, 0.5))
    print(result.format_report())
    print()
    rows = {row[0]: row for row in result.rows}
    cap_split = rows[0.0][3] - rows[0.0][2]       # anti - in (k = 0)
    ind_split = rows[0.5][2] - rows[0.5][3]       # in - anti (k = 0.5)
    print(f"capacitive regime: anti-phase slower by {cap_split:.0f} ps")
    print(f"inductive regime:  in-phase  slower by {ind_split:.0f} ps "
          f"(ordering inverted)")
    print()
    print("Design consequence: on inductance-dominated global buses the")
    print("worst-case timing pattern is simultaneous same-direction")
    print("switching — the exact opposite of the RC-era Miller worst case")
    print("— so pattern-blind corner methodologies mis-identify the")
    print("critical vector.")


if __name__ == "__main__":
    main()
