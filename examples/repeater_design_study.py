#!/usr/bin/env python3
"""Design study: how the repeater optimum moves with line inductance.

Sweeps l over the practical global-wire range for both Table 1 nodes and
prints the Fig. 5/6/7 quantities side by side with the Ismail-Friedman
curve-fitted baseline, including the baseline's own validity check (the
paper's critique: realistic optima fall outside its fitted ranges).

Run:  python examples/repeater_design_study.py
"""

import numpy as np

from repro import NODE_100NM, NODE_250NM, sweep_inductance, units
from repro.baselines import if_optimum, validity_ranges_satisfied


def study(node) -> None:
    grid = np.linspace(0.0, 5.0, 11) * units.NH_PER_MM
    sweep = sweep_inductance(node.line, node.driver, grid)
    rc = sweep.rc_reference

    print(f"--- {node.name}: h_RC = {units.to_mm(rc.h_opt):.2f} mm, "
          f"k_RC = {rc.k_opt:.0f} ---")
    header = (f"{'l (nH/mm)':>10} {'h/h_RC':>8} {'k/k_RC':>8} "
              f"{'delay x':>8} {'IF h/h_RC':>10} {'IF valid?':>9}")
    print(header)
    for i, l in enumerate(sweep.l_values):
        line = node.line_with_inductance(float(l))
        empirical = if_optimum(line, node.driver)
        valid = validity_ranges_satisfied(line, node.driver,
                                          empirical.h_opt, empirical.k_opt)
        print(f"{units.to_nh_per_mm(float(l)):>10.1f} "
              f"{sweep.h_ratio[i]:>8.3f} {sweep.k_ratio[i]:>8.3f} "
              f"{sweep.delay_ratio_vs_rc[i]:>8.3f} "
              f"{empirical.h_opt / rc.h_opt:>10.3f} "
              f"{str(valid):>9}")
    print(f"worst-case penalty of inductance-blind sizing: "
          f"{(sweep.mistuning_penalty.max() - 1) * 100:.1f}%")
    print()


def main() -> None:
    for node in (NODE_250NM, NODE_100NM):
        study(node)
    print("Observations (paper Sec. 3.1-3.2):")
    print(" * h grows and k shrinks with l; delay/length degrades ~2x at")
    print("   250nm and ~3x at 100nm across the range (Figs. 5-7).")
    print(" * The Ismail-Friedman fit tracks the h trend but its validity")
    print("   conditions fail at global-wire optima (paper Sec. 2.2).")


if __name__ == "__main__":
    main()
