#!/usr/bin/env python3
"""Catastrophic logic failure from inductive undershoot (paper Sec. 3.3.1).

Builds the paper's five-stage ring oscillator at the 100 nm node — each
stage an RC-optimally sized inverter driving an 11.1 mm top-metal line —
in the library's own MNA transient simulator, and sweeps the line
inductance through the false-switching onset.  Below the onset the input
waveform rings but the output is clean; above it, undershoot flips the
inverter mid-cycle and the oscillation period collapses.

Run:  python examples/ring_oscillator_failure.py   (~1 minute)
"""

from repro import units
from repro.analysis import assess_current_density, current_density_report
from repro.experiments.ring import run_ring
from repro.tech import NODE_100NM


def main() -> None:
    node = NODE_100NM
    print(f"Five-stage ring oscillator, {node.name} node, "
          f"h = 11.1 mm lines, VDD = {node.vdd} V")
    print(f"{'l (nH/mm)':>10} {'period (ps)':>12} {'in undershoot':>14} "
          f"{'out overshoot':>14} {'J_rms (MA/cm2)':>15} {'EM ok':>6}")

    reference_period = None
    collapse_reported = False
    for l_nh in (1.0, 1.6, 2.0, 2.4, 3.0):
        run = run_ring(node.name, l_nh, segments=10,
                       period_budget=10.0, steps_per_period=500)
        vin = run.input_waveform
        vout = run.output_waveform
        try:
            period = run.period()
        except Exception:
            period = float("nan")
        ladder = run.oscillator.ladders[run.probe_stage]
        report = current_density_report(
            run.result, ladder, node.geometry.cross_section_area)
        verdict = assess_current_density(report)
        print(f"{l_nh:>10.1f} {units.to_ps(period):>12.0f} "
              f"{vin.undershoot(0.0):>13.2f}V "
              f"{vout.overshoot(node.vdd):>13.2f}V "
              f"{report.rms_density_a_per_cm2 / 1e6:>15.3f} "
              f"{str(verdict.ok):>6}")
        if reference_period is None:
            reference_period = period
        elif not collapse_reported and period < 0.6 * reference_period:
            print(f"{'':>10} ^^^ false switching: period collapsed below "
                  f"60% of its low-l value")
            collapse_reported = True

    print()
    print("Paper's conclusions reproduced: the period collapses sharply")
    print("around l ~ 2 nH/mm at 100 nm (Figs. 10-11) while the wire's")
    print("rms/peak current densities barely move (Fig. 12) — inductance")
    print("threatens logic correctness, not wire reliability.")


if __name__ == "__main__":
    main()
