#!/usr/bin/env python3
"""Signal-integrity screen of a driver-line-load stage.

Takes a concrete stage (100 nm node, RC-optimal sizing, swept inductance)
and reports, per inductance value: the damping regime, two-pole overshoot
and undershoot, the delay from three independent engines (two-pole model,
exact transfer function via Talbot inversion, MNA circuit simulation of a
20-segment ladder), and the gate-oxide stress verdict of Sec. 3.3.2.

Run:  python examples/signal_integrity_check.py
"""

import numpy as np

from repro import (NODE_100NM, Stage, StepResponse, compute_moments,
                   rc_optimum, threshold_delay, units)
from repro.analysis import Waveform, assess_oxide_stress, step_response_exact
from repro.circuits import build_linear_stage, simulate


def check_stage(node, l_nh: float) -> None:
    line = node.line_with_inductance(l_nh * units.NH_PER_MM)
    rc = rc_optimum(node.line, node.driver)
    stage = Stage(line=line, driver=node.driver, h=rc.h_opt, k=rc.k_opt)

    response = StepResponse.from_moments(compute_moments(stage))
    tau_model = threshold_delay(stage).tau

    # Exact reference via Talbot inversion of Eq. 1.
    t = np.linspace(1e-13, 8.0 * tau_model, 400)
    exact = Waveform(t, step_response_exact(stage, t))
    tau_exact = exact.first_crossing(0.5)

    # Circuit-level reference on a discretized ladder.
    bench = build_linear_stage(stage, segments=20, v_step=node.vdd)
    result = simulate(bench.circuit, 8.0 * tau_model, tau_model / 300.0)
    sim = Waveform(result.time, result.voltage(bench.output_node))
    tau_sim = sim.first_crossing(0.5 * node.vdd)

    oxide = assess_oxide_stress(sim, node.vdd)
    print(f"l = {l_nh:>4.1f} nH/mm | {response.damping.value:>13} | "
          f"delay model/exact/sim = {units.to_ps(tau_model):6.1f}/"
          f"{units.to_ps(tau_exact):6.1f}/{units.to_ps(tau_sim):6.1f} ps | "
          f"overshoot {response.overshoot() * 100:5.1f}% | "
          f"oxide {'VIOLATION' if oxide.violates else 'ok':>9} "
          f"(peak {oxide.max_voltage:.2f} V on {node.vdd:.1f} V rail)")


def main() -> None:
    node = NODE_100NM
    print(f"Signal-integrity screen, {node.name} node, RC-optimal sizing")
    print("(three delay engines: two-pole Pade model / exact H(s) via "
          "Talbot / MNA ladder simulation)")
    print()
    for l_nh in (0.0, 0.5, 1.0, 2.0, 3.5, 5.0):
        check_stage(node, l_nh)
    print()
    print("Takeaways (paper Secs. 3.1, 3.3.2):")
    print(" * the stage leaves the overdamped regime at a fraction of a")
    print("   nH/mm and overshoot grows steadily with l;")
    print(" * overshoot beyond ~10% of VDD flags gate-oxide overstress;")
    print(" * the two-pole model tracks the exact delay within ~10% while")
    print("   being the only one cheap enough to sit inside an optimizer.")


if __name__ == "__main__":
    main()
