"""Setup shim enabling legacy editable installs (no `wheel` on this host)."""

from setuptools import setup

setup()
