"""Bench: Fig. 11 — ring-oscillator period vs line inductance.

Paper claims: at 100 nm the period collapses sharply around l ~ 2 nH/mm
(onset of false switching); at 250 nm no collapse occurs for any
l < 5 nH/mm.
"""

import numpy as np

from repro.experiments import run_experiment


def test_fig11_100nm_collapse(once):
    result = once(run_experiment, "fig11", node_name="100nm",
                  l_values=(1.0, 1.6, 2.0, 2.4, 3.0),
                  period_budget=10.0, steps_per_period=500)
    onset = result.data["collapse_onset"]
    assert onset is not None
    assert 1.5 <= onset <= 3.0               # paper: ~2 nH/mm
    print()
    print(result.format_report())


def test_fig11_250nm_immune(once):
    result = once(run_experiment, "fig11", node_name="250nm",
                  l_values=(0.5, 2.0, 3.5, 4.8),
                  period_budget=10.0, steps_per_period=500)
    assert result.data["collapse_onset"] is None
    periods = np.array(result.data["periods"])
    assert np.all(np.isfinite(periods))
    print()
    print(result.format_report())
