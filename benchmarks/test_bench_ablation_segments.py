"""Ablation: ladder segment-count convergence of the circuit simulator.

The ring-oscillator experiments discretize each line into N = 10 sections;
this bench shows the stage delay converges toward the exact (Talbot)
response as N grows and quantifies the N = 10 residual error.
"""

import numpy as np

from repro import NODE_100NM, Stage, rc_optimum, threshold_delay, units
from repro.analysis import Waveform, step_response_exact
from repro.circuits import build_linear_stage, simulate


def stage_under_test():
    node = NODE_100NM
    rc_opt = rc_optimum(node.line, node.driver)
    line = node.line_with_inductance(1.5 * units.NH_PER_MM)
    return Stage(line=line, driver=node.driver,
                 h=rc_opt.h_opt, k=rc_opt.k_opt)


def simulated_delay(stage, segments, tau_hint):
    bench = build_linear_stage(stage, segments=segments)
    result = simulate(bench.circuit, 6.0 * tau_hint, tau_hint / 300.0)
    return Waveform(result.time,
                    result.voltage(bench.output_node)).first_crossing(0.5)


def test_segment_convergence(once):
    stage = stage_under_test()
    tau_hint = threshold_delay(stage).tau
    t = np.linspace(1e-13, 6.0 * tau_hint, 400)
    tau_exact = Waveform(t, step_response_exact(stage, t)).first_crossing(0.5)

    def sweep():
        return {n: abs(simulated_delay(stage, n, tau_hint) - tau_exact)
                / tau_exact for n in (2, 5, 10, 20, 40)}

    errors = once(sweep)
    values = list(errors.values())
    # Monotone-ish convergence and a small N = 10 residual.
    assert values[-1] < values[0]
    assert errors[10] < 0.04
    assert errors[40] < 0.01
    print()
    print("ladder delay error vs exact:",
          {n: f"{e:.2%}" for n, e in errors.items()})


def test_single_stage_simulation_cost(once):
    """Wall-clock of one 20-segment stage transient (the unit of cost for
    all ring-oscillator figures)."""
    stage = stage_under_test()
    tau_hint = threshold_delay(stage).tau
    delay = once(simulated_delay, stage, 20, tau_hint)
    assert delay > 0.0
