"""Shared benchmark configuration.

Each benchmark regenerates one paper artifact (table/figure) and asserts
its shape claims, so a green ``pytest benchmarks/ --benchmark-only`` run
is simultaneously a timing report and a reproduction check.  Simulation
benches run one round (they take tens of seconds); analytic benches use
pytest-benchmark's normal calibration.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive callable with a single round/iteration."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper for single-shot benchmarking of heavy experiments."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
