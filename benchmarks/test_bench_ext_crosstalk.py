"""Bench (extension): coupled noise — RC vs RLC victim response.

Quantifies the paper's Sec. 1.1 citation of Deutsch et al. [6]: RC-only
models substantially underestimate coupled noise on inductive global
wires.  Measured here: > 3x underestimate at practical inductances.
"""

from repro.experiments import run_experiment


def test_ext_crosstalk(once):
    result = once(run_experiment, "ext_crosstalk",
                  l_values=(0.0, 1.0, 2.0))
    noise = {row[0]: row[1] for row in result.rows}
    assert noise[2.0] > 3.0 * noise[0.0]
    peaks = [row[1] for row in result.rows]
    assert peaks == sorted(peaks)
    print()
    print(result.format_report())
