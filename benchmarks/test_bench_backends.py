"""Backend throughput: process vs thread dispatch under the serve layer.

Drives one optimize-heavy request stream (48 concurrent repeater
optimizations, micro-batched into small batches so several dispatch
concurrently) through two identical services differing only in the
shared execution backend, and writes both arms' timings to
``BENCH_backends.json`` (path override: ``REPRO_BENCH_OUT``).  Set
``REPRO_BENCH_SMOKE=1`` for a reduced-size single-repetition pass (CI
smoke mode — no ratio assertion).

The Newton inner loops are pure-Python + small-array numpy, so thread
workers serialize on the GIL while warm process workers genuinely
parallelize; on a >= 4-core host the process arm must win by >= 1.5x.
Beyond the ratio, the run is an answer-preservation check: both arms'
responses must match lane for lane once the batching-shape execution
counters are stripped (the backend may only change *where* work runs,
never what it returns).

Like ``test_bench_serve.py`` this file times both sides with the same
bare ``perf_counter`` loop (the quantity under test is a ratio), so it
does not use pytest-benchmark.
"""

import json
import os

from repro.engine.jobs import canonical_json
from repro.serve.bench import run_backend_benchmark, strip_responses

N_REQUESTS = 48
WORKERS = 4

#: Conservative floor on the process-over-thread throughput ratio; warm
#: measurements sit well above it, so a loaded CI box cannot flake the
#: suite.  Only asserted on hosts with enough cores to host the workers.
MIN_RATIO = 1.5

#: Batching-shape counters: how many kernel batches/lanes an evaluation
#: used depends on dispatch interleaving, not on the answer.
EXECUTION_COUNTERS = ("lanes_evaluated", "batch_calls", "memo_hits")


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _out_path() -> str:
    return os.environ.get("REPRO_BENCH_OUT", "BENCH_backends.json")


def _normalized(body):
    result = {k: v for k, v in body["result"].items()
              if k not in EXECUTION_COUNTERS}
    return canonical_json(result)


def test_process_backend_beats_threads_on_optimize_stream():
    if _smoke():
        n_requests, workers, reps = 12, 2, 1
    else:
        n_requests, workers, reps = N_REQUESTS, WORKERS, 3
    report = run_backend_benchmark(n_requests, workers=workers,
                                   reps=reps, max_batch_size=6)
    responses = report.pop("_responses")
    report["smoke"] = _smoke()

    thread, process = responses["thread"], responses["process"]
    assert len(thread) == len(process) == n_requests
    assert all(body["ok"] for body in thread + process)

    # Answer preservation, lane for lane across the two backends.
    for thread_body, process_body in zip(thread, process):
        assert _normalized(thread_body) == _normalized(process_body)

    # Both arms actually exercised their pools.
    for arm in ("thread", "process"):
        stats = report[arm]["backend"]
        assert stats["backend"] == arm
        assert stats["workers"] == workers
        assert stats["dispatches"] > 0
        assert stats["in_flight"] == 0

    with open(_out_path(), "w", encoding="utf-8") as handle:
        json.dump(strip_responses(report), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")

    cores = os.cpu_count() or 1
    if not _smoke() and cores >= WORKERS:
        assert report["process_over_thread"] >= MIN_RATIO, report
