"""Bench: Fig. 6 — k_optRLC / k_optRC vs line inductance.

Paper claims: the optimal repeater shrinks with l, approaching (from
above) the size whose output impedance matches the line's characteristic
impedance sqrt(l/c).
"""

import numpy as np

from repro.experiments import run_experiment


def test_fig6_reproduction(benchmark):
    result = benchmark(run_experiment, "fig6", points=11)
    sweeps = result.data["sweeps"]
    for name, sweep in sweeps.items():
        assert np.all(np.diff(sweep.k_ratio) < 0.0)
        assert sweep.k_ratio[0] < 1.0          # already < 1 at l = 0
    assert sweeps["100nm"].k_ratio[-1] < sweeps["250nm"].k_ratio[-1]
    # Approaching the matched size from above: every tabulated k ratio
    # exceeds the matched-impedance ratio at the same l.
    for row in result.rows[1:]:
        l_nh, k250, m250, k100, m100 = row
        assert k250 > m250
        assert k100 > m100
