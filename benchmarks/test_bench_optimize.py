"""Optimizer throughput: kernel-backed Newton vs the scalar path.

Times the refactored optimizer stack against the pre-refactor scalar
Newton loop — reimplemented here verbatim on top of the retained scalar
reference :func:`~repro.core.optimize.stationarity_residuals` — on
identical work, in three sections:

* ``grid`` — the headline number: a Fig. 5-style inductance grid
  (l = 0..5 nH/mm, 11 points, each lane independently RC-seeded)
  optimized by the *lockstep* batch driver
  :func:`~repro.core.optimize.optimize_repeater_many`, which pools all
  lanes' probe and backtracking evaluations into single kernel batches
  per Newton iteration, vs the same 11 optimizations run sequentially
  through the scalar loop.  The asserted speedup floor applies here.
* ``single`` — one solo :func:`~repro.core.optimize.optimize_repeater`
  call.  Informational: a solo run only batches 3 lanes per iteration,
  which does not amortize the kernel pipeline's fixed cost (see
  DESIGN.md S27), so this ratio is expected to be near or below 1.
* ``sweep`` — the warm-started solo sweep (each point seeded from the
  previous optimum), also informational for the same reason.

Every section first checks the two implementations converge to
bitwise-identical (h_opt, k_opt, tau), so the ratios are pure
implementation comparisons.  Results land in ``BENCH_optimize.json``
(override: ``REPRO_BENCH_OUT``); set ``REPRO_BENCH_SMOKE=1`` for the
single-repetition CI smoke mode.
"""

import json
import math
import os
import time

import numpy as np

from repro import NODE_100NM, rc_optimum, units
from repro.core.optimize import (optimize_repeater, optimize_repeater_many,
                                 stationarity_residuals)
from repro.core.params import LineParams
from repro.errors import (DelaySolverError, OptimizationError,
                          ParameterError)

#: Conservative floor asserted on the lockstep grid speedup; the
#: acceptance target (>= 2x, recorded in the JSON) has headroom over
#: this measurement (~3x on an idle box) so a loaded CI box cannot
#: flake the suite.
MIN_GRID_SPEEDUP = 1.5
TARGET_GRID_SPEEDUP = 2.0

L_VALUES_NH = np.linspace(0.0, 5.0, 11)


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _out_path() -> str:
    return os.environ.get("REPRO_BENCH_OUT", "BENCH_optimize.json")


def _time(func, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _scalar_newton(line, driver, f, h0, k0, *, tol=1e-9,
                   max_iterations=200):
    """The pre-refactor scalar Newton loop (3+ scalar walks/iteration)."""
    h, k = h0, k0
    g1, g2, tau = stationarity_residuals(line, driver, h, k, f)
    norm = math.hypot(g1, g2)
    for iteration in range(1, max_iterations + 1):
        eps_h = 1e-6 * h
        eps_k = 1e-6 * k
        g1_h, g2_h, _ = stationarity_residuals(line, driver, h + eps_h, k, f)
        g1_k, g2_k, _ = stationarity_residuals(line, driver, h, k + eps_k, f)
        jac = np.array([[(g1_h - g1) / eps_h, (g1_k - g1) / eps_k],
                        [(g2_h - g2) / eps_h, (g2_k - g2) / eps_k]])
        rhs = np.array([g1, g2])
        step = np.linalg.solve(jac, rhs)
        scale = 1.0
        for _ in range(40):
            h_new = h - scale * step[0]
            k_new = k - scale * step[1]
            if h_new > 0.0 and k_new > 0.0:
                try:
                    g1_new, g2_new, tau_new = stationarity_residuals(
                        line, driver, h_new, k_new, f)
                except (DelaySolverError, ParameterError):
                    scale *= 0.5
                    continue
                norm_new = math.hypot(g1_new, g2_new)
                if norm_new < norm or scale < 1e-3:
                    break
            scale *= 0.5
        else:
            raise OptimizationError(
                f"backtracking failed at iteration {iteration}")
        moved = max(abs(h_new - h) / h, abs(k_new - k) / k)
        h, k, g1, g2, tau, norm = (h_new, k_new, g1_new, g2_new, tau_new,
                                   norm_new)
        if moved < tol:
            return h, k, tau, iteration
    raise OptimizationError(
        f"did not converge in {max_iterations} iterations")


def _line_at(l_nh):
    node = NODE_100NM
    return LineParams(r=node.line.r, l=l_nh * units.NH_PER_MM, c=node.line.c)


def _grid_lines_and_seeds():
    node = NODE_100NM
    lines = [_line_at(float(l_nh)) for l_nh in L_VALUES_NH]
    seeds = []
    for line in lines:
        rc = rc_optimum(line, node.driver)
        seeds.append((rc.h_opt, rc.k_opt))
    return lines, seeds


def _run_scalar_grid(lines, seeds):
    node = NODE_100NM
    return [_scalar_newton(line, node.driver, 0.5, *seed)
            for line, seed in zip(lines, seeds)]


def _run_lockstep_grid(lines, seeds):
    return optimize_repeater_many(lines, NODE_100NM.driver, initials=seeds)


def _run_scalar_sweep():
    node = NODE_100NM
    results = []
    warm = None
    for l_nh in L_VALUES_NH:
        line = _line_at(float(l_nh))
        if warm is None:
            rc = rc_optimum(line, node.driver)
            warm = (rc.h_opt, rc.k_opt)
        h, k, tau, _ = _scalar_newton(line, node.driver, 0.5, *warm)
        warm = (h, k)
        results.append((h, k, tau))
    return results


def _run_batched_sweep():
    node = NODE_100NM
    results = []
    warm = None
    for l_nh in L_VALUES_NH:
        line = _line_at(float(l_nh))
        optimum = optimize_repeater(line, node.driver, initial=warm)
        warm = (optimum.h_opt, optimum.k_opt)
        results.append((optimum.h_opt, optimum.k_opt, optimum.tau))
    return results


def test_newton_inner_loop_speedup():
    reps = 1 if _smoke() else 3
    node = NODE_100NM
    report = {"smoke": _smoke(), "reps": reps,
              "target_grid_speedup": TARGET_GRID_SPEEDUP,
              "asserted_floor": MIN_GRID_SPEEDUP}

    # --- grid: lockstep batch Newton vs N sequential scalar runs -----
    # Both must walk the same convergence path lane for lane: the ratio
    # below is meaningless if the iterates ever diverge.
    lines, seeds = _grid_lines_and_seeds()
    scalar_grid = _run_scalar_grid(lines, seeds)
    lockstep_grid = _run_lockstep_grid(lines, seeds)
    total_iterations = 0
    for lane, (want, got) in enumerate(zip(scalar_grid, lockstep_grid)):
        h_s, k_s, tau_s, it_s = want
        assert float(got.h_opt) == h_s, lane
        assert float(got.k_opt) == k_s, lane
        assert float(got.tau) == tau_s, lane
        assert got.iterations == it_s, lane
        total_iterations += it_s

    t_scalar_grid = _time(lambda: _run_scalar_grid(lines, seeds), reps)
    t_lockstep_grid = _time(lambda: _run_lockstep_grid(lines, seeds), reps)
    report["grid"] = {
        "points": len(L_VALUES_NH),
        "l_range_nh_per_mm": [float(L_VALUES_NH[0]), float(L_VALUES_NH[-1])],
        "newton_iterations_total": total_iterations,
        "scalar_seconds": t_scalar_grid,
        "lockstep_seconds": t_lockstep_grid,
        "speedup": t_scalar_grid / t_lockstep_grid,
    }

    # --- single + warm sweep: informational (3-lane batches only) ----
    line = _line_at(1.0)
    rc = rc_optimum(line, node.driver)
    h_s, k_s, tau_s, it_s = _scalar_newton(line, node.driver, 0.5,
                                           rc.h_opt, rc.k_opt)
    batched = optimize_repeater(line, node.driver)
    assert float(batched.h_opt) == h_s
    assert float(batched.k_opt) == k_s
    assert float(batched.tau) == tau_s
    assert batched.iterations == it_s
    scalar_sweep = _run_scalar_sweep()
    batched_sweep = _run_batched_sweep()
    for lane, (got, want) in enumerate(zip(batched_sweep, scalar_sweep)):
        assert tuple(float(v) for v in got) == want, lane

    t_scalar_single = _time(
        lambda: _scalar_newton(line, node.driver, 0.5, rc.h_opt, rc.k_opt),
        reps)
    t_batched_single = _time(
        lambda: optimize_repeater(line, node.driver), reps)
    report["single"] = {
        "iterations": it_s,
        "scalar_seconds": t_scalar_single,
        "batched_seconds": t_batched_single,
        "speedup": t_scalar_single / t_batched_single,
        "asserted": False,
    }

    t_scalar_sweep = _time(_run_scalar_sweep, reps)
    t_batched_sweep = _time(_run_batched_sweep, reps)
    report["sweep"] = {
        "points": len(L_VALUES_NH),
        "scalar_seconds": t_scalar_sweep,
        "batched_seconds": t_batched_sweep,
        "speedup": t_scalar_sweep / t_batched_sweep,
        "asserted": False,
    }

    with open(_out_path(), "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    assert report["grid"]["speedup"] >= MIN_GRID_SPEEDUP, report
