"""Store tiers under a hot-repeat workload: memory hits vs disk hits.

A served sweep that keeps re-requesting the same working set spends its
time in cache *hits*, so the quantity that matters is the hit path: a
disk hit opens a file and decodes JSON, a tiered store's memory hit is
a dictionary lookup on the already-decoded payload.  This benchmark
puts one delay working set into a plain disk store and a tiered store,
then times repeated hot gets against both and writes the timings to
``BENCH_store.json`` (path override: ``REPRO_BENCH_OUT``).  On a warm
cache the tiered memory hits must be >= 5x faster than disk hits.

Before timing anything, the run is an answer-preservation check: every
store flavor (disk, memory, tiered), cold and replayed, produces
batch results bitwise identical to a cache-off run of the same
manifest.  Set ``REPRO_BENCH_SMOKE=1`` for a reduced pass with no ratio
assertion (CI smoke mode).

Like the other ratio benchmarks this times both sides with the same
bare ``perf_counter`` loop, so it does not use pytest-benchmark.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro import NODE_100NM, units
from repro.engine.executor import BatchExecutor
from repro.engine.jobs import DelayJob, canonical_json
from repro.engine.store import (STORE_NAMES, DiskStore, TieredStore,
                                make_store)

NH = units.NH_PER_MM

N_JOBS = 16
N_REPEATS = 200
REPS = 3

#: Floor on the memory-hit-over-disk-hit throughput ratio.  Warm
#: measurements sit one to two orders of magnitude above it — a memory
#: hit skips open/read/json.loads entirely — so a loaded CI box cannot
#: flake the suite.
MIN_RATIO = 5.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _out_path() -> str:
    return os.environ.get("REPRO_BENCH_OUT", "BENCH_store.json")


def _delay_jobs(count):
    node = NODE_100NM
    return [DelayJob(line=node.line.with_inductance(0.2 * i * NH),
                     driver=node.driver, h=0.01, k=150.0)
            for i in range(count)]


def _time_hot_gets(store, jobs, repeats):
    """Best-of-REPS seconds for ``repeats`` passes of hot gets."""
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        for _ in range(repeats):
            for job in jobs:
                result = store.get(job)
                assert result is not None, "hot get missed"
        best = min(best, time.perf_counter() - start)
    return best


def test_tiered_memory_hits_beat_disk_hits():
    n_jobs = 4 if _smoke() else N_JOBS
    repeats = 5 if _smoke() else N_REPEATS
    jobs = _delay_jobs(n_jobs)
    baseline = [job.run() for job in jobs]

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        root = Path(tmp)

        # -- answer preservation: every store config == store-off -----
        expected = canonical_json({"results": baseline})
        for name in STORE_NAMES:
            store = make_store(name, root=root / f"check-{name}")
            for arm in ("cold", "replay"):
                report = BatchExecutor(jobs=1, cache=store).run(jobs)
                produced = canonical_json(
                    {"results": [outcome.result
                                 for outcome in report.outcomes]})
                assert produced == expected, \
                    f"{name} store ({arm}) diverged from store-off"
            replay = BatchExecutor(jobs=1, cache=store).run(jobs)
            assert all(outcome.from_cache for outcome in replay.outcomes)

        # -- the hot-repeat timing ------------------------------------
        disk = DiskStore(root / "disk")
        tiered = TieredStore(root=root / "tiered")
        for job, result in zip(jobs, baseline):
            disk.put(job, result)
            tiered.put(job, result)
        for job in jobs:
            tiered.get(job)  # warm pass: promote into the memory tier

        disk_seconds = _time_hot_gets(disk, jobs, repeats)
        tiered_seconds = _time_hot_gets(tiered, jobs, repeats)

    hits = n_jobs * repeats
    ratio = disk_seconds / tiered_seconds if tiered_seconds else float("inf")
    report = {
        "jobs": n_jobs,
        "repeats": repeats,
        "reps": REPS,
        "hits_per_arm": hits,
        "smoke": _smoke(),
        "disk": {"seconds": disk_seconds,
                 "hits_per_s": hits / disk_seconds},
        "tiered_memory": {"seconds": tiered_seconds,
                          "hits_per_s": hits / tiered_seconds},
        "memory_over_disk": ratio,
        "min_ratio": MIN_RATIO,
    }
    with open(_out_path(), "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    if not _smoke():
        assert ratio >= MIN_RATIO, report
