"""Bench: Table 1 — technology parameters and RC-optimal repeater insertion.

Paper values: 250nm -> h_optRC 14.4 mm, k_optRC 578, tau_optRC 305.17 ps;
100nm -> 11.1 mm, 528, 105.94 ps.  The closed forms reproduce them exactly
from the stored (r_s, c_p, c_0); the extraction substitutes land within
10% of the tabulated r and c.
"""

import pytest

from repro.experiments import run_experiment
from repro.verify import unit_tolerance


def test_table1_reproduction(benchmark):
    result = benchmark(run_experiment, "table1")
    rows = {row[0]: row for row in result.rows}
    h_abs = unit_tolerance("bench.table1.h_opt_mm.abs")
    k_abs = unit_tolerance("bench.table1.k_opt.abs")
    tau_abs = unit_tolerance("bench.table1.tau_ps.abs")
    ext_rel = unit_tolerance("bench.table1.extraction.rel")
    assert rows["250nm"][1] == pytest.approx(14.4, abs=h_abs)
    assert rows["250nm"][2] == pytest.approx(578, abs=k_abs)
    assert rows["250nm"][3] == pytest.approx(305.17, abs=tau_abs)
    assert rows["100nm"][1] == pytest.approx(11.1, abs=h_abs)
    assert rows["100nm"][2] == pytest.approx(528, abs=k_abs)
    assert rows["100nm"][3] == pytest.approx(105.94, abs=tau_abs)
    assert rows["250nm"][4] == pytest.approx(203.5, rel=ext_rel)
    assert rows["100nm"][4] == pytest.approx(123.33, rel=ext_rel)


def test_table1_with_simulated_characterization(once):
    """Include the simulator path re-deriving r_s (the paper's SPICE leg)."""
    result = once(run_experiment, "table1", simulate=True)
    rows = {row[0]: row for row in result.rows}
    # Simulated r_s (kohm) vs the stored Table 1 value.
    rs_rel = unit_tolerance("bench.table1.r_s_simulated.rel")
    assert rows["250nm"][6] == pytest.approx(11.784, rel=rs_rel)
    assert rows["100nm"][6] == pytest.approx(7.534, rel=rs_rel)
    print()
    print(result.format_report())
