"""Serving throughput: dynamic micro-batching vs batch-size-1 serving.

Drives 256 concurrent in-process requests through one
:class:`~repro.serve.service.ReproService` twice — micro-batching
enabled, then degraded to batch-size 1 (every request evaluated through
the scalar ``job.run()`` path) — and writes both arms' timings to
``BENCH_serve.json`` (path override: ``REPRO_BENCH_OUT``).  Set
``REPRO_BENCH_SMOKE=1`` for a single repetition per arm (CI smoke mode).

Beyond the speedup, the run is an answer-preservation check: every
batched response must be bitwise identical to the same request's solo
``DelayJob.run()`` — micro-batching may only change *when* work runs,
never what it returns.

Like ``test_bench_kernels.py`` this file times both sides with the same
bare ``perf_counter`` loop (the quantity under test is a ratio), so it
does not use pytest-benchmark.
"""

import json
import os

from repro.engine.jobs import canonical_json
from repro.serve.bench import (build_delay_jobs, run_benchmark,
                               strip_responses)

N_REQUESTS = 256

#: Conservative floor on the micro-batching speedup; warm measurements
#: sit around 6-9x, so a loaded CI box cannot flake the suite.
MIN_SPEEDUP = 3.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _out_path() -> str:
    return os.environ.get("REPRO_BENCH_OUT", "BENCH_serve.json")


def test_micro_batched_serving_throughput():
    reps = 1 if _smoke() else 3
    report = run_benchmark(N_REQUESTS, reps=reps)
    responses = report.pop("_responses")
    report["smoke"] = _smoke()

    batched, solo = responses["batched"], responses["solo"]
    assert len(batched) == len(solo) == N_REQUESTS
    assert all(body["ok"] for body in batched + solo)

    # Coalescing happened: the batched arm dispatched multi-lane batches,
    # the solo arm dispatched nothing but singletons.
    batched_sizes = {int(key.split(":")[1]) for key in
                     report["batched"]["batch_size_histogram"]}
    assert max(batched_sizes) > 1
    assert set(report["solo"]["batch_size_histogram"]) == {"delay:1"}

    # Answer preservation: batched == solo == the job's own run(),
    # bitwise (canonical JSON compares float repr, not approximate).
    jobs = build_delay_jobs(N_REQUESTS)
    for job, batched_body, solo_body in zip(jobs, batched, solo):
        assert canonical_json(batched_body["result"]) \
            == canonical_json(solo_body["result"])
        assert canonical_json(batched_body["result"]) \
            == canonical_json(job.run())

    with open(_out_path(), "w", encoding="utf-8") as handle:
        json.dump(strip_responses(report), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")

    assert report["speedup"] >= MIN_SPEEDUP, report
