"""Bench: Fig. 8 — delay penalty of RC-optimal sizing under inductance.

Paper claims: sizing for the Elmore optimum regardless of the actual l
costs at worst ~6% (250 nm) and ~12% (100 nm) over the true RLC optimum.
Our measured worst cases: 8.4% and 11.7%.
"""

import numpy as np

from repro.experiments import run_experiment


def test_fig8_reproduction(benchmark):
    result = benchmark(run_experiment, "fig8", points=11)
    worst = result.data["worst_penalty"]
    assert 1.03 < worst["250nm"] < 1.12          # paper: ~1.06
    assert 1.08 < worst["100nm"] < 1.18          # paper: ~1.12
    assert worst["100nm"] > worst["250nm"]
    # Penalty grows monotonically with l for both nodes.
    for sweep in result.data["sweeps"].values():
        assert np.all(np.diff(sweep.mistuning_penalty) > -1e-9)
