"""Bench: Fig. 2 — step responses of the three damping regimes.

Only the underdamped response overshoots/undershoots; the over- and
critically damped responses are monotonic, and the 50% delays order as
underdamped < critical < overdamped at equal natural frequency.
"""

from repro.experiments import run_experiment


def test_fig2_reproduction(benchmark):
    result = benchmark(run_experiment, "fig2")
    rows = {row[0]: row for row in result.rows}
    assert rows["underdamped"][2] > 0.1            # visible overshoot
    assert rows["underdamped"][3] > 0.0            # and undershoot
    assert rows["overdamped"][2] == 0.0
    assert rows["critically damped"][2] == 0.0
    assert rows["overdamped"][5] and rows["critically damped"][5]
    assert (rows["underdamped"][4] < rows["critically damped"][4]
            < rows["overdamped"][4])
