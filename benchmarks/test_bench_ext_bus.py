"""Bench (extension): switching-pattern Miller effects on a coupled bus.

Capacitive-only coupling shows the classic ordering (in-phase fastest);
inductive coupling inverts it — the dynamic form of the paper's argument
that effective inductance depends on neighbours' switching activity.
"""

from repro.experiments import run_experiment


def test_ext_bus(once):
    result = once(run_experiment, "ext_bus", segments=8,
                  inductive_couplings=(0.0, 0.5))
    by_km = {row[0]: row for row in result.rows}
    quiet0, in0, anti0 = by_km[0.0][1:4]
    quiet5, in5, anti5 = by_km[0.5][1:4]
    assert in0 < quiet0 < anti0          # capacitive Miller
    assert in5 > quiet5 > anti5          # inductive inversion
    print()
    print(result.format_report())
