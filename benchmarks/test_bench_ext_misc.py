"""Bench (extensions): Miller-capacitance, skin, power and sensitivity.

These four extension experiments are analytic-speed; benching them keeps
their shape claims continuously verified alongside the paper artifacts.
"""

import pytest

from repro.experiments import run_experiment


def test_ext_miller(benchmark):
    result = benchmark(run_experiment, "ext_miller")
    h_values = [row[2] for row in result.rows]
    k_values = [row[3] for row in result.rows]
    assert h_values == sorted(h_values, reverse=True)
    assert k_values == sorted(k_values)


def test_ext_skin(benchmark):
    result = benchmark(run_experiment, "ext_skin")
    ratios = [row[2] for row in result.rows]
    assert ratios == sorted(ratios)
    assert 1e9 < result.data["onset"] < 1e10


def test_ext_power(benchmark):
    result = benchmark(run_experiment, "ext_power",
                       budget_fractions=(1.0, 0.8))
    penalties = [row[4] for row in result.rows]
    assert penalties[0] == pytest.approx(1.0)
    assert penalties[1] > 1.0


def test_ext_sensitivity(benchmark):
    result = benchmark(run_experiment, "ext_sensitivity")
    table = {row[0]: row[1] for row in result.rows}
    assert table["k"] == pytest.approx(0.0, abs=1e-6)
    assert table["h"] == pytest.approx(1.0, rel=1e-4)
    assert table["c"] == pytest.approx(0.5, rel=1e-4)
