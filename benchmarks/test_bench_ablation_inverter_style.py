"""Ablation: MOSFET vs behavioral switch inverter in the failure study.

The false-switching collapse (Figs. 10-11) must not be an artifact of the
device model.  Both inverter styles show a period collapse; the switch
inverter's stiff bidirectional output damps the line harder, pushing its
onset to higher l (~4 nH/mm vs ~2 nH/mm for the calibrated MOSFET).
"""

from repro.experiments.ring import run_ring


def collapse_ratio(style: str, l_low: float, l_high: float) -> float:
    low = run_ring("100nm", l_low, segments=10, style=style,
                   period_budget=9.0, steps_per_period=450)
    high = run_ring("100nm", l_high, segments=10, style=style,
                    period_budget=9.0, steps_per_period=450)
    return high.period() / low.period()


def test_mosfet_style_collapse(once):
    ratio = once(collapse_ratio, "mosfet", 1.4, 2.6)
    assert ratio < 0.6
    print(f"\nmosfet period ratio (2.6 vs 1.4 nH/mm): {ratio:.2f}")


def test_switch_style_collapse(once):
    ratio = once(collapse_ratio, "switch", 2.0, 4.0)
    assert ratio < 0.7
    print(f"\nswitch period ratio (4.0 vs 2.0 nH/mm): {ratio:.2f}")
