"""Bench: Figs. 9-10 — ring-oscillator waveforms below/above failure onset.

Paper claims at 100 nm, five stages, (h_optRC, k_optRC) sizing:
* l = 1.8 nH/mm — input rings hard (overshoot/undershoot approaching the
  rail) but the inverter output stays clean and the period is nominal;
* l = 2.2 nH/mm — input undershoot falsely switches the inverter; the
  period drops to *less than half* the l = 1.8 value.
"""

from repro.experiments import run_experiment


def test_fig9_10_reproduction(once):
    result = once(run_experiment, "fig9_10",
                  period_budget=10.0, steps_per_period=500)
    rows = {row[0]: row for row in result.rows}
    period_18, period_22 = rows[1.8][1], rows[2.2][1]
    # Collapse to less than half the nominal period.
    assert period_22 < 0.5 * period_18
    # Below onset: heavy input ringing, clean output.
    vdd = result.data["vdd"]
    assert rows[1.8][2] > 0.4 * vdd         # input overshoot
    assert rows[1.8][3] > 0.4 * vdd         # input undershoot
    assert rows[1.8][4] < 0.1 * vdd         # output overshoot (clean)
    # Above onset: undershoot exceeding the rail, the failure driver.
    assert rows[2.2][3] > vdd
    print()
    print(result.format_report())
