"""Kernel-layer throughput: batched vs scalar threshold-delay pipeline.

Times the full moments→poles→response→delay pipeline both ways on the
same inductance sweep — N scalar :func:`repro.threshold_delay` calls
against one :func:`repro.core.kernels.threshold_delay_v` batch — at
N ∈ {16, 256, 4096}, and writes the measurements to
``BENCH_kernels.json`` (path override: ``REPRO_BENCH_OUT``).

Set ``REPRO_BENCH_SMOKE=1`` to run a single repetition per size (the CI
smoke mode); the JSON is emitted either way.  Unlike the figure
benchmarks this file does not use pytest-benchmark: the quantity under
test is the *ratio* of two implementations on identical work, so both
sides are timed with the same bare ``perf_counter`` loop.
"""

import json
import os
import time

import numpy as np
import pytest

from repro import NODE_100NM, rc_optimum, threshold_delay, units
from repro.core.kernels import StageBatch, threshold_delay_v

SIZES = (16, 256, 4096)

#: Conservative floor asserted on the N = 4096 speedup; the acceptance
#: target (>= 5x, recorded in the JSON) has headroom over this so a
#: loaded CI box cannot flake the suite.
MIN_SPEEDUP_AT_4096 = 3.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def _out_path() -> str:
    return os.environ.get("REPRO_BENCH_OUT", "BENCH_kernels.json")


def _sweep_batch(n: int) -> StageBatch:
    node = NODE_100NM
    rc_opt = rc_optimum(node.line, node.driver)
    l_values = np.linspace(0.0, 2.0 * units.NH_PER_MM, n)
    return StageBatch.from_inductance_sweep(
        node.line, node.driver, l_values, h=rc_opt.h_opt, k=rc_opt.k_opt)


def _time(func, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def test_batched_pipeline_throughput():
    reps = 1 if _smoke() else 3
    report = {"sizes": [], "smoke": _smoke(), "reps": reps}
    for n in SIZES:
        batch = _sweep_batch(n)
        stages = [batch.stage(i) for i in range(n)]

        def scalar():
            return [threshold_delay(s, 0.5, polish_with_newton=False).tau
                    for s in stages]

        def batched():
            return threshold_delay_v(batch, 0.5).tau

        t_scalar = _time(scalar, reps)
        t_batch = _time(batched, reps)
        tau_scalar = np.array(scalar())
        tau_batch = batched()
        assert np.array_equal(tau_scalar, tau_batch), n

        report["sizes"].append({
            "n": n,
            "scalar_seconds": t_scalar,
            "batched_seconds": t_batch,
            "speedup": t_scalar / t_batch,
            "scalar_per_lane_us": 1e6 * t_scalar / n,
            "batched_per_lane_us": 1e6 * t_batch / n,
        })

    with open(_out_path(), "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)

    largest = report["sizes"][-1]
    assert largest["n"] == 4096
    assert largest["speedup"] >= MIN_SPEEDUP_AT_4096, report
