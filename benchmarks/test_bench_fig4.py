"""Bench: Fig. 4 — critical inductance at the RLC optimum vs l.

Paper claims: l and l_crit share an order of magnitude over the practical
range (so Kahng-Muddu's asymptotic delay branches do not apply at the
optimum), and l_crit(100nm) < l_crit(250nm) everywhere.
"""

import numpy as np

from repro import units
from repro.experiments import run_experiment


def test_fig4_reproduction(benchmark):
    result = benchmark(run_experiment, "fig4", points=11)
    sweeps = result.data["sweeps"]
    assert np.all(sweeps["100nm"].l_crit < sweeps["250nm"].l_crit)
    # Same order of magnitude: l / l_crit within [0.5, 30] for l >= 0.5 nH/mm.
    for sweep in sweeps.values():
        mask = sweep.l_values >= 0.5 * units.NH_PER_MM
        ratio = sweep.l_values[mask] / sweep.l_crit[mask]
        assert np.all(ratio > 0.5)
        assert np.all(ratio < 30.0)
    # The optimum is underdamped over most of the range (l > l_crit), the
    # regime where only the exact Eq. 3 solve works.
    assert np.all(sweeps["100nm"].damping_margin[2:] > 1.0)
