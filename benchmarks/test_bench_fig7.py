"""Bench: Fig. 7 — normalized optimal delay per unit length vs l.

Paper claims: the optimized RLC delay per unit length grows to ~2x its
l = 0 value at 250 nm and ~3.5x at 100 nm across 0 <= l < 5 nH/mm; the
100 nm node with the 250 nm dielectric (identical c) still rises like the
100 nm curve — the susceptibility comes from driver scaling, not the wire.
Our measured top-of-range ratios: 2.0x and 3.0x — same winners, same
ordering, slightly compressed at 100 nm.
"""

import pytest

from repro.experiments import run_experiment


def test_fig7_reproduction(benchmark):
    result = benchmark(run_experiment, "fig7", points=11)
    final = result.data["final_ratios"]
    assert 1.8 <= final["250nm"] <= 2.3          # paper: ~2x
    assert 2.6 <= final["100nm"] <= 3.7          # paper: ~3.5x
    assert final["100nm"] > 1.4 * final["250nm"]
    # Control case overlays the 100nm curve (c-invariance of the ratio).
    assert final["100nm-eps3.3"] == pytest.approx(final["100nm"], rel=1e-3)
    print()
    print(result.format_report())
