"""Bench: Fig. 5 — h_optRLC / h_optRC vs line inductance.

Paper claims: ratio slightly below 1 at l = 0 (second-order model vs
Elmore — invisible to curve-fitted approaches), rising monotonically with
l, faster at 100 nm.
"""

import numpy as np

from repro.experiments import run_experiment


def test_fig5_reproduction(benchmark):
    result = benchmark(run_experiment, "fig5", points=11)
    sweeps = result.data["sweeps"]
    for sweep in sweeps.values():
        assert 0.9 < sweep.h_ratio[0] < 1.0
        assert np.all(np.diff(sweep.h_ratio) > 0.0)
    # 100nm rises faster and ends higher.
    assert sweeps["100nm"].h_ratio[-1] > sweeps["250nm"].h_ratio[-1]
    assert 1.3 < sweeps["250nm"].h_ratio[-1] < 1.5
    assert 1.5 < sweeps["100nm"].h_ratio[-1] < 1.75
