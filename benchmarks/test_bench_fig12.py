"""Bench: Fig. 12 — peak and rms interconnect current densities vs l.

Paper claims: neither the peak nor the rms current density of the ring's
interconnect changes appreciably with l (below the false-switching
onset), so wire reliability is not degraded by inductance variation.
"""

from repro.analysis.reliability import assess_current_density
from repro.experiments import run_experiment


def test_fig12_reproduction(once):
    result = once(run_experiment, "fig12",
                  l_values=(0.5, 1.0, 1.5, 2.0),
                  period_budget=10.0, steps_per_period=500)
    reports = result.data["reports"]
    peaks = [r.peak_density for r in reports]
    rms = [r.rms_density for r in reports]
    # Flat below the onset: spread bounded by a small factor.
    assert max(peaks) / min(peaks) < 2.0
    assert max(rms) / min(rms) < 2.0
    # And comfortably inside the reliability limits.
    for report in reports:
        assert assess_current_density(report).ok
    print()
    print(result.format_report())
