"""Ablation: delay solvers and optimizer variants.

* The paper's Newton polish vs plain bracketed Brent for the Eq. 3 solve.
* The Kahng-Muddu closed forms: cheap, but l-blind near critical damping
  (the paper's Sec. 2.1 critique, measured).
* The paper's 2-D Newton optimizer vs derivative-free Nelder-Mead: same
  optimum, an order of magnitude fewer objective evaluations.
"""

import pytest

from repro import (NODE_100NM, OptimizerMethod, Stage, StepResponse,
                   compute_moments, critical_inductance, optimize_repeater,
                   rc_optimum, threshold_delay, units)
from repro.baselines import km_delay
from repro.verify import unit_tolerance


@pytest.fixture(scope="module")
def stage():
    node = NODE_100NM
    rc_opt = rc_optimum(node.line, node.driver)
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    return Stage(line=line, driver=node.driver,
                 h=rc_opt.h_opt, k=rc_opt.k_opt)


def test_delay_newton_polish(benchmark, stage):
    result = benchmark(threshold_delay, stage, 0.5,
                       polish_with_newton=True)
    assert result.newton_iterations <= 6


def test_delay_brent_only(benchmark, stage):
    result = benchmark(threshold_delay, stage, 0.5,
                       polish_with_newton=False)
    reference = threshold_delay(stage, 0.5, polish_with_newton=True)
    assert result.tau == pytest.approx(
        reference.tau,
        rel=unit_tolerance("bench.solvers.newton_vs_bracketed.rel"))


def test_delay_kahng_muddu_closed_form(benchmark, stage):
    moments = compute_moments(stage)
    tau_km = benchmark(km_delay, moments.b1, moments.b2, 0.5)
    tau_exact = threshold_delay(stage).tau
    # Cheap but biased: error is real yet bounded at this operating point.
    assert tau_km == pytest.approx(
        tau_exact, rel=unit_tolerance("bench.solvers.km_vs_exact.rel"))


def test_kahng_muddu_l_blindness_at_critical(benchmark, stage):
    """Measured Sec. 2.1 critique: across +-20% of l around l_crit the KM
    delay is exactly constant while the true delay moves."""
    l_crit = critical_inductance(stage)

    def sweep():
        km, exact = [], []
        for factor in (0.8, 1.0, 1.2):
            moments = compute_moments(
                stage.with_inductance(factor * l_crit))
            km.append(km_delay(moments.b1, moments.b2, 0.5))
            exact.append(threshold_delay(
                StepResponse.from_moments(moments), 0.5).tau)
        return km, exact

    km, exact = benchmark(sweep)
    assert km[0] == km[1] == km[2]
    assert abs(exact[2] - exact[0]) / exact[1] > 1e-3


def test_optimizer_newton(benchmark):
    node = NODE_100NM
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    result = benchmark(optimize_repeater, line, node.driver,
                       method=OptimizerMethod.NEWTON)
    assert result.iterations <= 8


def test_optimizer_direct(benchmark):
    node = NODE_100NM
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    result = benchmark(optimize_repeater, line, node.driver,
                       method=OptimizerMethod.DIRECT)
    newton = optimize_repeater(line, node.driver,
                               method=OptimizerMethod.NEWTON)
    assert result.h_opt == pytest.approx(
        newton.h_opt,
        rel=unit_tolerance("bench.solvers.direct_vs_newton.rel"))
    # Nelder-Mead needs far more outer iterations than the paper's Newton.
    assert result.iterations > 5 * newton.iterations
