"""Ablation: threshold-fraction sensitivity of the repeater optimum.

The paper stresses its method works for *any* threshold f (the
Ismail-Friedman fit is 50%-only).  This bench sweeps f and checks the
optimum moves smoothly and physically: higher thresholds expose more of
the ringing tail, favouring shorter, harder-driven segments.
"""

import numpy as np

from repro import NODE_100NM, optimize_repeater, units


def optimum_vs_threshold():
    node = NODE_100NM
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    thresholds = (0.3, 0.5, 0.7, 0.9)
    return {f: optimize_repeater(line, node.driver, f) for f in thresholds}


def test_threshold_sweep(once):
    optima = once(optimum_vs_threshold)
    taus = [o.tau for o in optima.values()]
    # Later thresholds are reached later.
    assert all(b > a for a, b in zip(taus, taus[1:]))
    # Optima vary smoothly: no more than 2.5x spread in h over f in
    # [0.3, 0.9], and every configuration converged.
    h_values = np.array([o.h_opt for o in optima.values()])
    assert h_values.max() / h_values.min() < 2.5
    print()
    print("f -> (h_opt mm, k_opt, tau ps):",
          {f: (round(o.h_opt * 1e3, 2), round(o.k_opt),
               round(o.tau * 1e12, 1)) for f, o in optima.items()})


def test_fifty_percent_reference(benchmark):
    node = NODE_100NM
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    result = benchmark(optimize_repeater, line, node.driver, 0.5)
    assert result.h_opt > 0.0
