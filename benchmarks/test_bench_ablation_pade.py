"""Ablation: two-pole Padé model vs the exact transfer function.

Quantifies the only model error the paper's optimizer accepts (Sec. 2.2):
replacing Eq. 1 by the two-pole Eq. 2.  The 50% delay error stays within
~15% across the practical inductance range, while the optimizer itself is
orders of magnitude cheaper than inverting Eq. 1 numerically per point.
"""

import numpy as np
import pytest

from repro import (NODE_100NM, Stage, rc_optimum, threshold_delay, units)
from repro.analysis import Waveform, step_response_exact


def pade_vs_exact_delay_error(l_nh: float) -> float:
    node = NODE_100NM
    rc_opt = rc_optimum(node.line, node.driver)
    line = node.line_with_inductance(l_nh * units.NH_PER_MM)
    stage = Stage(line=line, driver=node.driver,
                  h=rc_opt.h_opt, k=rc_opt.k_opt)
    tau_pade = threshold_delay(stage).tau
    t = np.linspace(1e-13, 6.0 * tau_pade, 400)
    tau_exact = Waveform(t, step_response_exact(stage, t)).first_crossing(0.5)
    return abs(tau_pade - tau_exact) / tau_exact


def test_pade_delay_error_bounded(once):
    errors = once(lambda: {l: pade_vs_exact_delay_error(l)
                           for l in (0.0, 0.5, 1.0, 2.0, 4.0)})
    for l_nh, error in errors.items():
        assert error < 0.15, (l_nh, error)
    print()
    print("Pade vs exact 50% delay error:",
          {l: f"{e:.1%}" for l, e in errors.items()})


def test_pade_delay_is_fast(benchmark):
    """The two-pole delay solve, the optimizer's inner kernel."""
    node = NODE_100NM
    rc_opt = rc_optimum(node.line, node.driver)
    line = node.line_with_inductance(1.0 * units.NH_PER_MM)
    stage = Stage(line=line, driver=node.driver,
                  h=rc_opt.h_opt, k=rc_opt.k_opt)
    result = benchmark(threshold_delay, stage)
    assert result.tau > 0.0


def test_exact_talbot_delay_cost(once):
    """Reference cost of one exact-delay evaluation via Talbot (why the
    paper's approach does not invert Eq. 1 inside the optimizer)."""
    error = once(pade_vs_exact_delay_error, 1.0)
    assert error == pytest.approx(pade_vs_exact_delay_error(1.0), rel=1e-12)
