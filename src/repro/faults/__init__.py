"""Deterministic fault-injection plane for the engine/serve stack.

Public surface:

* :data:`~repro.faults.plan.FAULT_POINTS` — the registry of named
  injection sites threaded through the cache, executor, optimizer,
  kernels, batcher and HTTP server seams;
* :class:`~repro.faults.plan.FaultPlan` /
  :class:`~repro.faults.plan.FaultRule` — seeded, serializable,
  replayable fault schedules;
* :mod:`repro.faults.hooks` — installation (:func:`hooks.install`,
  :func:`hooks.active`, the ``REPRO_FAULTS`` env var) and the seam-side
  helpers;
* :mod:`repro.faults.harness` — the invariant checks and canned
  campaign scenarios behind the ``repro-faults`` CLI and the stateful
  Hypothesis harness (imported lazily: it pulls in the serve stack).

With no plan installed every hook is a pointer comparison — the plane
is free in production.
"""

from . import hooks
from .plan import FAULT_POINTS, FaultEvent, FaultPlan, FaultPoint, FaultRule

__all__ = ["FAULT_POINTS", "FaultEvent", "FaultPlan", "FaultPoint",
           "FaultRule", "hooks"]
