"""Invariant harness of the fault plane: live workloads, canned scenarios.

This module is the executable answer to "did the recovery paths hold?".
It drives real components — a :class:`~repro.serve.server.ServerThread`
over sockets, a :class:`~repro.engine.executor.BatchExecutor` over jobs
— under an installed :class:`~repro.faults.plan.FaultPlan`, and checks
the stack's cross-cutting invariants:

* **answered-or-rejected** — every submitted request produces either a
  response or an explicit, typed failure; nothing hangs, nothing is
  silently dropped;
* **bitwise** — every successful response equals the request's own solo
  ``job.run()`` ground truth (computed with the plan suspended on the
  harness thread), so injected faults never corrupt a served answer;
* **cache integrity** — every record in the store parses and carries a
  ``result``; orphaned ``.tmp`` files are exactly the injected
  ``cache.put.stale_tmp`` events, never more;
* **isolation** — a plan with no rules produces zero failures (the
  plane itself is inert), and lane-scoped faults fail lanes, not runs;
* **metrics reconcile** — ``requests_total`` equals the sum of recorded
  outcomes (excluding pre-parse ``unknown`` outcomes), so the
  observability plane cannot lose or invent requests under faults.

Ground truths are computed on the calling thread inside
``plan.suspended()`` — the plan stays armed for the server's threads
while the harness computes what *should* have been served, and
suspension never consumes PRNG draws or hit counts, so the measurement
does not perturb the experiment.
"""

from __future__ import annotations

import json
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import hooks
from .plan import FAULT_POINTS, FaultPlan, FaultRule

#: Trace fields describing the lockstep pooling itself — the only part
#: of an optimize payload allowed to differ between a batched lane and a
#: solo run (mirrors ``EXACT_AT_ANY_BATCH_SIZE`` in the service layer).
EXECUTION_COUNTERS = ("lanes_evaluated", "batch_calls", "memo_hits")

#: Sites that may legitimately change an optimize payload beyond the
#: execution counters (a re-seeded retry converges to the same optimum
#: from a different start, so traces and ``retried`` flags differ).
#: The NaN-lane kernel fault belongs here too: the repaired lane is
#: re-solved to solver tolerance, not bitwise, and the optimizer's
#: Newton trajectory amplifies that last-ulp tau difference into a
#: different (still converged) trace.
OPTIMIZE_FAULT_SITES = frozenset({
    "serve.optimize.lane_error", "optimize.warm_start",
    "kernels.threshold_delay.nan_lane"})

#: Sites exercised through the engine's BatchExecutor rather than the
#: serve stack.
ENGINE_SITES = frozenset(
    name for name, point in FAULT_POINTS.items()
    if point.scenario == "engine")

#: Sites of the execution-backend plane, driven through both seams the
#: backend serves (engine ``submit_batch`` and serve ``run_call``).
BACKEND_SITES = frozenset(
    name for name, point in FAULT_POINTS.items()
    if point.scenario == "backend")

#: Sites of the result-store plane (tiered store + single-flight),
#: driven through the dedicated store driver.
STORE_SITES = frozenset(
    name for name, point in FAULT_POINTS.items()
    if point.scenario == "store")


# ----------------------------------------------------------------------
# Reports.
# ----------------------------------------------------------------------
@dataclass
class Violation:
    """One broken invariant, with enough context to chase it."""

    invariant: str
    message: str

    def format(self) -> str:
        return f"[{self.invariant}] {self.message}"


@dataclass
class RunReport:
    """Outcome of driving one plan through the live workloads."""

    plan_string: str
    events: List[str] = field(default_factory=list)
    fired: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    requests_sent: int = 0
    responses_ok: int = 0
    responses_error: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def violation(self, invariant: str, message: str) -> None:
        self.violations.append(Violation(invariant, message))

    def format_summary(self) -> str:
        lines = [f"plan: {self.plan_string}",
                 f"requests: {self.requests_sent} sent, "
                 f"{self.responses_ok} ok, "
                 f"{self.responses_error} failed"]
        if self.events:
            lines.append(f"events ({len(self.events)}):")
            lines.extend(f"  {event}" for event in self.events)
        else:
            lines.append("events: none fired")
        if self.violations:
            lines.append(f"VIOLATIONS ({len(self.violations)}):")
            lines.extend(f"  {violation.format()}"
                         for violation in self.violations)
        else:
            lines.append("invariants: all held")
        return "\n".join(lines)


@dataclass
class CampaignReport:
    """Aggregate of a multi-plan campaign plus site coverage."""

    runs: List[RunReport] = field(default_factory=list)
    coverage: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(run.ok for run in self.runs) and not self.uncovered()

    def uncovered(self) -> List[str]:
        """Registered sites no run of this campaign ever fired."""
        return sorted(name for name in FAULT_POINTS
                      if not self.coverage.get(name))

    def failing_runs(self) -> List[RunReport]:
        return [run for run in self.runs if not run.ok]

    def format_summary(self) -> str:
        lines = [f"campaign: {len(self.runs)} plans, "
                 f"{len(self.failing_runs())} failing",
                 "site coverage:"]
        for name in sorted(FAULT_POINTS):
            lines.append(f"  {self.coverage.get(name, 0):4d}  {name}")
        uncovered = self.uncovered()
        if uncovered:
            lines.append("UNCOVERED sites: " + ", ".join(uncovered))
        for run in self.failing_runs():
            lines.append("")
            lines.append(run.format_summary())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The standard workload.
# ----------------------------------------------------------------------
def _workload_jobs() -> Dict[str, List[Any]]:
    """Small, paper-typical job set touching every request class."""
    from .. import NODE_100NM, units
    from ..core.elmore import rc_optimum
    from ..engine.jobs import CriticalInductanceJob, DelayJob, OptimizeJob

    nh = units.NH_PER_MM
    node = NODE_100NM
    delay = [DelayJob(line=node.line.with_inductance(l * nh),
                      driver=node.driver, h=0.01, k=150.0)
             for l in (0.0, 0.5, 1.0, 1.5, 2.0, 2.5)]
    critical = [CriticalInductanceJob(
        line=node.line.with_inductance(l * nh),
        driver=node.driver, h=0.01, k=150.0)
        for l in (0.5, 1.0, 1.5)]
    optimize = []
    for l in (0.5, 1.0, 1.5):
        line = node.line.with_inductance(l * nh)
        seed = rc_optimum(line, node.driver)
        optimize.append(OptimizeJob(
            line=line, driver=node.driver,
            initial=(seed.h_opt, seed.k_opt)))
    return {"delay": delay, "critical_inductance": critical,
            "optimize": optimize}


def _request_document(job: Any) -> Dict[str, Any]:
    from ..engine.jobs import job_to_dict

    return job_to_dict(job)


def _normalized(kind: str, payload: Dict[str, Any]) -> str:
    """Canonical form for comparison; optimize counters stripped."""
    from ..engine.jobs import canonical_json

    document = dict(payload)
    if kind == "optimize":
        trace = document.get("trace")
        if isinstance(trace, dict):
            document["trace"] = {k: v for k, v in trace.items()
                                 if k not in EXECUTION_COUNTERS}
    return canonical_json(document)


def _ground_truths(plan: FaultPlan, workload: Dict[str, List[Any]]
                   ) -> Dict[str, List[str]]:
    """Solo ``job.run()`` results, computed with the plan suspended."""
    truths: Dict[str, List[str]] = {}
    with plan.suspended():
        for kind, jobs in workload.items():
            truths[kind] = [_normalized(kind, job.run()) for job in jobs]
    return truths


# ----------------------------------------------------------------------
# The serve driver (ServerThread over real sockets).
# ----------------------------------------------------------------------
def _drive_serve(plan: FaultPlan, report: RunReport,
                 cache_root: Path, *, passes: int = 2) -> None:
    """Drive the HTTP stack through the workload under ``plan``.

    Each pass sends every request class as one NDJSON burst (so the
    batcher genuinely coalesces) plus a handful of sequential singles;
    the second pass re-sends the same documents, turning the cache
    seams hot.
    """
    import http.client
    import socket

    from ..engine.cache import ResultCache
    from ..serve.client import ServeClient, ServeClientError
    from ..serve.server import ServerThread
    from ..serve.service import ReproService

    workload = _workload_jobs()
    truths = _ground_truths(plan, workload)
    optimize_faulted = any(rule.site in OPTIMIZE_FAULT_SITES
                           for rule in plan.rules)
    plan_inert = not plan.rules

    cache = ResultCache(cache_root)
    service = ReproService(cache=cache, max_batch_size=8,
                           max_linger=0.05, default_timeout=10.0)

    def check_response(kind: str, index: int,
                       response: Dict[str, Any]) -> None:
        if not isinstance(response, dict):
            report.violation(
                "answered", f"{kind}[{index}] response is not an object: "
                            f"{response!r}")
            return
        if response.get("ok"):
            report.responses_ok += 1
            if kind == "optimize" and optimize_faulted:
                return  # a re-seeded lane legitimately differs bitwise
            served = _normalized(kind, response["result"])
            if served != truths[kind][index]:
                report.violation(
                    "bitwise",
                    f"{kind}[{index}] served result differs from solo "
                    f"job.run(): served {served} != truth "
                    f"{truths[kind][index]}")
        else:
            report.responses_error += 1
            error = response.get("error")
            if not (isinstance(error, dict) and error.get("code")
                    and error.get("message")):
                report.violation(
                    "answered",
                    f"{kind}[{index}] failed without a structured "
                    f"error: {response!r}")
            elif plan_inert:
                report.violation(
                    "isolation",
                    f"{kind}[{index}] failed with no fault armed: "
                    f"{error}")

    with hooks.active(plan):
        with ServerThread(service) as handle:
            client = ServeClient.from_url(handle.url, timeout=15.0)
            try:
                for _ in range(passes):
                    for kind, jobs in workload.items():
                        documents = [_request_document(job)
                                     for job in jobs]
                        report.requests_sent += len(documents)
                        try:
                            responses = client.evaluate_many(documents)
                        except socket.timeout:
                            # The client gave up waiting: some lane was
                            # admitted and never answered — the exact
                            # failure the answered-or-rejected
                            # invariant exists to catch.
                            report.responses_error += len(documents)
                            report.violation(
                                "answered",
                                f"{kind} burst timed out — a lane was "
                                f"admitted but never answered")
                            continue
                        except (ServeClientError, http.client.HTTPException,
                                OSError) as exc:
                            # An explicit transport/protocol failure is
                            # an answer ("rejected"); only a hang or a
                            # lost lane violates the invariant.
                            report.responses_error += len(documents)
                            if plan_inert:
                                report.violation(
                                    "isolation",
                                    f"{kind} burst failed with no fault "
                                    f"armed: {exc}")
                            continue
                        if len(responses) != len(documents):
                            report.violation(
                                "answered",
                                f"{kind} burst: {len(documents)} requests "
                                f"but {len(responses)} responses")
                            continue
                        for index, response in enumerate(responses):
                            check_response(kind, index, response)
                    # A couple of sequential singles per pass keep the
                    # per-connection seams (read drop, write truncate)
                    # hot on a keep-alive socket.
                    for index, job in enumerate(workload["delay"][:3]):
                        report.requests_sent += 1
                        try:
                            response = client.evaluate(
                                _request_document(job))
                            check_response("delay", index, response)
                        except ServeClientError as exc:
                            report.responses_error += 1
                            if plan_inert:
                                report.violation(
                                    "isolation",
                                    f"delay single failed with no fault "
                                    f"armed: {exc}")
                        except socket.timeout:
                            report.responses_error += 1
                            report.violation(
                                "answered",
                                "delay single timed out — admitted but "
                                "never answered")
                        except (http.client.HTTPException, OSError) as exc:
                            report.responses_error += 1
                            if plan_inert:
                                report.violation(
                                    "isolation",
                                    f"delay single transport error with "
                                    f"no fault armed: {exc}")
            finally:
                client.close()

    # -- post-run invariants ------------------------------------------
    _check_cache_integrity(plan, report, cache)
    _check_metrics(report, service)


def _check_cache_integrity(plan: FaultPlan, report: RunReport,
                           cache: Any) -> None:
    for path in cache._record_paths():
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            record["result"]
        except (OSError, ValueError, KeyError) as exc:
            report.violation(
                "cache", f"torn or incomplete record {path.name}: {exc}")
    stale = plan.fired_sites().get("cache.put.stale_tmp", 0)
    tmp_count = len(cache.tmp_files())
    if tmp_count != stale:
        report.violation(
            "cache",
            f"{tmp_count} orphaned .tmp files but "
            f"{stale} injected cache.put.stale_tmp events")


def _check_metrics(report: RunReport, service: Any) -> None:
    metrics = service.metrics
    recorded = sum(count for (kind, _code), count in
                   metrics.outcomes.items() if kind != "unknown")
    if metrics.requests_total != recorded:
        report.violation(
            "metrics",
            f"requests_total={metrics.requests_total} but "
            f"{recorded} outcomes recorded (excluding pre-parse "
            f"'unknown'): {dict(metrics.outcomes)}")


# ----------------------------------------------------------------------
# The engine driver (BatchExecutor over jobs).
# ----------------------------------------------------------------------
def _drive_engine(plan: FaultPlan, report: RunReport,
                  cache_root: Path) -> None:
    """Drive the batch executor through the workload under ``plan``."""
    from ..engine.cache import ResultCache
    from ..engine.executor import BatchExecutor

    workload = _workload_jobs()
    jobs = (workload["delay"] + workload["critical_inductance"]
            + workload["optimize"])
    kinds = (["delay"] * len(workload["delay"])
             + ["critical_inductance"] * len(workload["critical_inductance"])
             + ["optimize"] * len(workload["optimize"]))
    indices = (list(range(len(workload["delay"])))
               + list(range(len(workload["critical_inductance"])))
               + list(range(len(workload["optimize"]))))
    truths = _ground_truths(plan, workload)
    optimize_faulted = any(rule.site in OPTIMIZE_FAULT_SITES
                           for rule in plan.rules)
    plan_inert = not plan.rules

    cache = ResultCache(cache_root)
    executor = BatchExecutor(jobs=1, cache=cache)
    with hooks.active(plan):
        try:
            batch = executor.run(jobs)
        except RuntimeError as exc:
            # A mixed plan can arm backend-plane sites alongside engine
            # sites; the serial backend's dispatch guard then fails the
            # whole run.  That is an explicit, contextual rejection —
            # answered-or-rejected holds — as long as the error names
            # the backend plane or the recovery path.
            message = str(exc)
            report.requests_sent += len(jobs)
            report.responses_error += len(jobs)
            if ("backend." not in message
                    and "re-run with jobs=1" not in message):
                report.violation(
                    "answered",
                    f"engine run failed without backend context: {exc}")
            return
    report.requests_sent += len(jobs)

    if len(batch.outcomes) != len(jobs):
        report.violation(
            "answered", f"executor returned {len(batch.outcomes)} "
                        f"outcomes for {len(jobs)} jobs")
        return
    for outcome, job, kind, index in zip(batch.outcomes, jobs, kinds,
                                         indices):
        if outcome.ok:
            report.responses_ok += 1
            if kind == "optimize" and optimize_faulted:
                continue
            produced = _normalized(kind, outcome.result)
            if produced != truths[kind][index]:
                report.violation(
                    "bitwise",
                    f"executor {kind}[{index}] differs from solo "
                    f"job.run(): {produced} != {truths[kind][index]}")
        else:
            report.responses_error += 1
            if not (outcome.error and outcome.error_type):
                report.violation(
                    "answered",
                    f"executor {kind}[{index}] failed without error "
                    f"context: {outcome!r}")
            elif plan_inert:
                report.violation(
                    "isolation",
                    f"executor {kind}[{index}] failed with no fault "
                    f"armed: {outcome.error}")
            with plan.suspended():
                if cache.get(job) is not None:
                    report.violation(
                        "cache", f"failed {kind}[{index}] job has a "
                                 f"cached result (errors must never be "
                                 f"cached)")

    if any(rule.site == "executor.pool.broken" for rule in plan.rules):
        _drive_broken_pool(plan, report, jobs[:4])
    _check_cache_integrity(plan, report, cache)


def _drive_broken_pool(plan: FaultPlan, report: RunReport,
                       jobs: Sequence[Any]) -> None:
    """The pool-death path must fail loud, with actionable context."""
    from ..engine.executor import BatchExecutor

    rules = [rule for rule in plan.rules
             if rule.site == "executor.pool.broken"]
    # One pool run triggers the site once; nth/first rules need enough
    # runs to reach their count.  Probabilistic rules may legitimately
    # never fire within the budget.
    attempts = min(5, max([rule.n for rule in rules
                           if rule.mode in ("nth", "first")] + [1]))
    deterministic = any(
        rule.mode == "always"
        or (rule.mode in ("nth", "first") and rule.n <= attempts)
        for rule in rules)
    executor = BatchExecutor(jobs=2)
    fired = False
    try:
        for _ in range(attempts):
            try:
                with hooks.active(plan):
                    executor.run(list(jobs))
            except RuntimeError as exc:
                fired = True
                if "re-run with jobs=1" not in str(exc):
                    report.violation(
                        "answered",
                        f"broken-pool error lacks recovery context: {exc}")
                break
    finally:
        executor.close()
    if deterministic and not fired:
        report.violation(
            "answered",
            "executor.pool.broken was armed deterministically but the "
            "pool runs all succeeded")


# ----------------------------------------------------------------------
# The backend driver (both seams of the execution plane).
# ----------------------------------------------------------------------
def _drive_backend(plan: FaultPlan, report: RunReport) -> None:
    """Drive the backend fault plane through both of its seams.

    Engine seam first: a multi-worker :class:`BatchExecutor` runs the
    delay workload repeatedly, consuming the armed site's first hits
    deterministically.  A dispatch that fails must fail *loud and
    contextual* (the ``re-run with jobs=1`` recovery text, or the
    injected site's own name), and — the restart invariant — once a
    failure has been observed, a later run on the *same executor* must
    succeed: a process backend that lost a worker rebuilds its pool
    instead of staying broken.

    Serve seam second: a :class:`ReproService` whose batchers share a
    backend of the same flavor evaluates the delay workload.  Every
    lane is answered-or-rejected — a successful response is bitwise
    equal to solo ``job.run()``, a failed one carries a structured
    :class:`ServeError` — even when a worker died mid-batch.
    """
    import asyncio

    from ..engine.executor import BatchExecutor
    from ..serve.protocol import ServeError, parse_request
    from ..serve.service import ReproService

    workload = _workload_jobs()
    truths = _ground_truths(plan, workload)
    plan_inert = not plan.rules
    crash_armed = any(rule.site == "backend.worker.crash"
                      for rule in plan.rules)
    backend_name = "process" if crash_armed else "thread"

    # -- engine seam ---------------------------------------------------
    executor = BatchExecutor(jobs=2, backend=backend_name)
    saw_failure = False
    saw_recovery = False
    try:
        for _ in range(4):
            report.requests_sent += len(workload["delay"])
            try:
                with hooks.active(plan):
                    batch = executor.run(workload["delay"])
            except RuntimeError as exc:
                report.responses_error += len(workload["delay"])
                message = str(exc)
                saw_failure = True
                if ("backend." not in message
                        and "re-run with jobs=1" not in message):
                    report.violation(
                        "answered",
                        f"backend dispatch failed without recovery "
                        f"context: {exc}")
                continue
            report.responses_ok += len(workload["delay"])
            for index, outcome in enumerate(batch.outcomes):
                if not outcome.ok:
                    report.violation(
                        "isolation",
                        f"backend delay[{index}] failed under a "
                        f"dispatch-plane fault (lane isolation must "
                        f"not be affected): {outcome.error}")
                elif (_normalized("delay", outcome.result)
                        != truths["delay"][index]):
                    report.violation(
                        "bitwise",
                        f"backend delay[{index}] differs from solo "
                        f"job.run()")
            if saw_failure:
                saw_recovery = True
                break
    finally:
        executor.close()
    if saw_failure and not saw_recovery:
        report.violation(
            "answered",
            f"{backend_name} backend never recovered: every run after "
            f"the first failure kept failing (a broken pool must be "
            f"rebuilt)")

    # -- serve seam ----------------------------------------------------
    async def drive_service():
        service = ReproService(backend=backend_name, backend_workers=2,
                               max_batch_size=4, max_linger=0.02,
                               default_timeout=30.0)
        try:
            requests = [parse_request(_request_document(job))
                        for job in workload["delay"]]
            return await asyncio.gather(
                *(service.submit(request) for request in requests),
                return_exceptions=True)
        finally:
            await service.close()

    with hooks.active(plan):
        results = asyncio.run(drive_service())
    report.requests_sent += len(results)
    for index, result in enumerate(results):
        if isinstance(result, ServeError):
            report.responses_error += 1
            if plan_inert:
                report.violation(
                    "isolation",
                    f"serve delay[{index}] rejected with no fault "
                    f"armed: {result}")
        elif isinstance(result, BaseException):
            report.violation(
                "answered",
                f"serve delay[{index}] raised an unstructured "
                f"{type(result).__name__}: {result}")
        elif isinstance(result, dict) and result.get("ok"):
            report.responses_ok += 1
            served = _normalized("delay", result["result"])
            if served != truths["delay"][index]:
                report.violation(
                    "bitwise",
                    f"serve delay[{index}] served result differs from "
                    f"solo job.run()")
        else:
            report.violation(
                "answered",
                f"serve delay[{index}] returned neither a result nor "
                f"a typed rejection: {result!r}")


# ----------------------------------------------------------------------
# The store driver (tiered result store + single-flight coalescing).
# ----------------------------------------------------------------------
def _drive_store(plan: FaultPlan, report: RunReport,
                 cache_root: Path) -> None:
    """Drive the result-store plane under ``plan``.

    Phase A (deterministic, single-threaded): every delay job is
    evaluated through :meth:`SingleFlight.do` and written through a
    :class:`TieredStore` whose memory tier holds ~2.5 records, so the
    put sequence reaches eviction (``store.memory.evict_race``) and
    shard creation (``store.disk.shard_unwritable``); each ``do``
    publishes exactly once, in job order, so nth-mode rules fire at the
    same global hit in every replay.  A re-read pass then proves every
    record that was stored still replays bitwise equal to solo
    ``job.run()``.

    Phase B (concurrent): the harness thread takes leadership of one
    flight, 16 follower threads subscribe (a semaphore counts them in
    before the hand-off), and the leader publishes — the phase's single
    publish, so a ``leader_crash`` preset of ``nth=7`` lands exactly
    here, after Phase A's six.  Every follower must come back answered
    or rejected: a follower that times out, or one that was wrongly
    promoted to leader (a duplicate evaluation), is a violation.
    """
    import threading

    from ..engine.store import DiskStore, MemoryStore, SingleFlight, \
        TieredStore

    workload = _workload_jobs()
    jobs = workload["delay"]
    plan_inert = not plan.rules
    with plan.suspended():
        truths = [_normalized("delay", job.run()) for job in jobs]

    # ~2.5 records of budget: the fourth put must evict, so the
    # eviction seam is reachable from a six-job phase.
    budget = int(2.5 * len(truths[0].encode("utf-8")))
    store = TieredStore(memory=MemoryStore(budget),
                        disk=DiskStore(cache_root))
    flights = SingleFlight()

    with hooks.active(plan):
        # -- phase A: sequential single-flight + write-through ---------
        stored: List[int] = []
        for index, job in enumerate(jobs):
            report.requests_sent += 1
            try:
                result = flights.do(store.key(job), job.run)
            except Exception as exc:
                report.responses_error += 1
                if plan_inert:
                    report.violation(
                        "isolation",
                        f"store delay[{index}] failed with no fault "
                        f"armed: {exc}")
                continue
            report.responses_ok += 1
            if _normalized("delay", result) != truths[index]:
                report.violation(
                    "bitwise",
                    f"store delay[{index}] single-flight result differs "
                    f"from solo job.run()")
                continue
            try:
                store.put(job, result)
                stored.append(index)
            except OSError:
                # Store consumers swallow put failures: the result was
                # still served, only the replay is lost.
                pass
        for index in stored:
            replayed = store.get(jobs[index])
            if replayed is None:
                if plan_inert:
                    report.violation(
                        "cache",
                        f"store delay[{index}] record vanished after a "
                        f"successful put with no fault armed")
                continue
            if _normalized("delay", replayed) != truths[index]:
                report.violation(
                    "bitwise",
                    f"store delay[{index}] replayed record differs from "
                    f"solo job.run()")

        # -- phase B: one leader, 16 counted-in followers --------------
        job_b, truth_b = jobs[0], truths[0]
        key_b = store.key(job_b)
        leader, flight = flights.acquire(key_b)
        if not leader:
            report.violation(
                "answered",
                "store flight table leaked a resolved flight — a new "
                "acquire after publication must lead")
            return
        outcomes: List[Tuple[bool, Any]] = []
        outcomes_lock = threading.Lock()
        subscribed = threading.Semaphore(0)

        def follow() -> None:
            is_leader, joined = flights.acquire(key_b)
            subscribed.release()
            got = None if is_leader else joined.wait(timeout=10.0)
            with outcomes_lock:
                outcomes.append((is_leader, got))

        threads = [threading.Thread(target=follow) for _ in range(16)]
        for thread in threads:
            thread.start()
        for _ in threads:
            subscribed.acquire()
        report.requests_sent += len(threads)
        with plan.suspended():
            value_b = job_b.run()
        try:
            flights.publish(flight, value_b)
        except RuntimeError:
            pass  # the flight already resolved with the injected failure
        for thread in threads:
            thread.join()

        for is_leader, got in outcomes:
            if is_leader:
                report.violation(
                    "answered",
                    "a follower was promoted to leader mid-flight — "
                    "the same spec would evaluate twice")
                continue
            if got is None:
                report.responses_error += 1
                report.violation(
                    "answered",
                    "single-flight follower timed out — never answered "
                    "after the leader published or crashed")
                continue
            status, payload = got
            if status == "ok":
                report.responses_ok += 1
                if _normalized("delay", payload) != truth_b:
                    report.violation(
                        "bitwise",
                        "single-flight follower received a result "
                        "differing from solo job.run()")
            else:
                report.responses_error += 1
                if plan_inert:
                    report.violation(
                        "isolation",
                        f"single-flight follower rejected with no fault "
                        f"armed: {payload}")

    # -- post-run invariants ------------------------------------------
    memory_stats = store.memory.stats()
    if memory_stats.total_bytes > store.memory.max_bytes:
        report.violation(
            "cache",
            f"memory tier holds {memory_stats.total_bytes} bytes over "
            f"its {store.memory.max_bytes}-byte budget")
    _check_cache_integrity(plan, report, store)


# ----------------------------------------------------------------------
# Drivers' front door.
# ----------------------------------------------------------------------
def run_plan(plan: FaultPlan, *,
             cache_root: Optional[Path] = None) -> RunReport:
    """Drive ``plan`` through the live workloads and check invariants.

    Rules naming engine sites route through the
    :class:`~repro.engine.executor.BatchExecutor` driver, rules naming
    backend sites through the dual-seam backend driver, and rules
    naming store sites through the tiered-store/single-flight driver;
    everything else (including an empty plan) routes through the
    socket-level serve driver.  A plan mixing scenarios runs every
    driver it names.
    """
    report = RunReport(plan_string=plan.to_string())
    sites = {rule.site for rule in plan.rules}
    engine = bool(sites & ENGINE_SITES)
    backend = bool(sites & BACKEND_SITES)
    store = bool(sites & STORE_SITES)
    serve = bool(sites - ENGINE_SITES - BACKEND_SITES - STORE_SITES) \
        or not sites

    with tempfile.TemporaryDirectory(prefix="repro-faults-") as tmp:
        root = Path(cache_root) if cache_root is not None else Path(tmp)
        if engine:
            _drive_engine(plan, report, root / "engine")
        if backend:
            _drive_backend(plan, report)
        if store:
            _drive_store(plan, report, root / "store")
        if serve:
            _drive_serve(plan, report, root / "serve")

    report.events = plan.event_log()
    report.fired = plan.fired_sites()
    for rule in plan.rules:
        if rule.mode in ("always", "first", "nth") \
                and not report.fired.get(rule.site):
            report.violation(
                "coverage",
                f"rule for {rule.site} (mode {rule.mode}) never fired — "
                f"the seam is not reachable from the workload")
    return report


def replay(plan_string: str) -> RunReport:
    """Re-run a serialized plan (the ``repro-faults replay`` core)."""
    return run_plan(FaultPlan.from_string(plan_string))


# ----------------------------------------------------------------------
# Canned scenarios and campaigns.
# ----------------------------------------------------------------------
#: Per-site deterministic rule presets: every registered site is
#: reachable from the standard workload with these triggers.
SITE_RULES: Dict[str, Dict[str, Any]] = {
    "cache.get.os_error": {"mode": "nth", "n": 2},
    "cache.get.torn_record": {"mode": "nth", "n": 1},
    "cache.put.os_error": {"mode": "nth", "n": 1},
    "cache.put.stale_tmp": {"mode": "nth", "n": 1},
    "executor.job.error": {"mode": "nth", "n": 2},
    "executor.job.hang": {"mode": "nth", "n": 1, "delay": 0.01},
    "executor.pool.broken": {"mode": "nth", "n": 1},
    "optimize.warm_start": {"mode": "nth", "n": 1},
    "kernels.threshold_delay.nan_lane": {"mode": "nth", "n": 1},
    "serve.optimize.lane_error": {"mode": "nth", "n": 1},
    "batcher.dispatch.delay": {"mode": "nth", "n": 1, "delay": 0.01},
    "batcher.evaluate.error": {"mode": "nth", "n": 1},
    "batcher.envelope.malformed": {"mode": "nth", "n": 1},
    "server.read.drop": {"mode": "nth", "n": 2},
    "server.write.truncate": {"mode": "nth", "n": 1},
    # First three dispatches fail (the backend driver's engine seam
    # consumes them, proving contextual failure + pool rebuild), then
    # the serve seam runs clean over the restarted workers.
    "backend.worker.crash": {"mode": "first", "n": 3},
    "backend.worker.hang": {"mode": "nth", "n": 1, "delay": 0.01},
    "backend.dispatch.queue_full": {"mode": "nth", "n": 1},
    # The store driver's Phase A evicts from its fourth put on and
    # creates the first shard on its first put.
    "store.memory.evict_race": {"mode": "nth", "n": 1},
    "store.disk.shard_unwritable": {"mode": "nth", "n": 1},
    # Phase A publishes exactly six times (one per delay job), so the
    # seventh publish is Phase B's concurrent hand-off: the leader dies
    # in front of 16 live followers, who must all still be answered.
    "store.singleflight.leader_crash": {"mode": "nth", "n": 7},
}


def scenario_plan(scenario: str, *, seed: int = 0) -> FaultPlan:
    """Plan arming every site of one scenario (``cache``/``engine``/
    ``serve``/``backend``/``store``), or ``all``."""
    names = [name for name, point in sorted(FAULT_POINTS.items())
             if scenario in ("all", point.scenario)]
    if not names:
        known = sorted({point.scenario
                        for point in FAULT_POINTS.values()} | {"all"})
        raise ValueError(f"unknown scenario {scenario!r}; known: "
                         f"{', '.join(known)}")
    return FaultPlan(seed=seed, rules=[
        FaultRule(site=name, **SITE_RULES.get(name, {}))
        for name in names])


def site_plan(site: str, *, seed: int = 0) -> FaultPlan:
    """Plan arming exactly one registered site with its preset."""
    if site not in FAULT_POINTS:
        raise ValueError(f"unknown fault site {site!r}")
    return FaultPlan(seed=seed,
                     rules=[FaultRule(site=site,
                                      **SITE_RULES.get(site, {}))])


def run_campaign(*, seed: int = 0, randomized_rounds: int = 0
                 ) -> CampaignReport:
    """Deterministic per-site sweep plus optional randomized rounds.

    The deterministic phase runs :func:`site_plan` for every registered
    site — this is what makes campaign coverage a *gate*: a seam whose
    preset no longer fires turns up in :meth:`CampaignReport.uncovered`.
    Randomized rounds then arm 2–4 random sites with seeded random
    triggers; any failure's plan string is in its
    :class:`RunReport` for replay.
    """
    campaign = CampaignReport()
    for site in sorted(FAULT_POINTS):
        run = run_plan(site_plan(site, seed=seed))
        campaign.runs.append(run)
        for name, count in run.fired.items():
            campaign.coverage[name] = campaign.coverage.get(name, 0) + count

    rng = random.Random(seed)
    for round_index in range(randomized_rounds):
        sites = rng.sample(sorted(FAULT_POINTS), rng.randint(2, 4))
        rules = []
        for site in sites:
            preset = dict(SITE_RULES.get(site, {}))
            mode = rng.choice(["nth", "first", "prob"])
            preset["mode"] = mode
            if mode in ("nth", "first"):
                preset["n"] = rng.randint(1, 3)
                preset.pop("p", None)
            else:
                preset["p"] = rng.uniform(0.2, 0.8)
            rules.append(FaultRule(site=site, **preset))
        run = run_plan(FaultPlan(seed=seed + 1 + round_index, rules=rules))
        # Randomized triggers may legitimately never fire; reachability
        # is the deterministic phase's job, not this one's.
        run.violations = [violation for violation in run.violations
                          if violation.invariant != "coverage"]
        campaign.runs.append(run)
        for name, count in run.fired.items():
            campaign.coverage[name] = campaign.coverage.get(name, 0) + count
    return campaign
