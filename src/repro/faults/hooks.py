"""Seam-side API of the fault plane: one global plan, cheap guards.

Hot seams use exactly one pattern::

    from ..faults import hooks as _faults
    ...
    if _faults.ACTIVE is not None:
        _faults.fire("cache.get.os_error", path=str(path))

With no plan installed the guard is a module-attribute load plus an
``is`` comparison — the fault plane costs nothing on the serve hot path
(asserted by the serve benchmark's unchanged speedup floor).  With a
plan installed, each helper routes through
:meth:`repro.faults.plan.FaultPlan.trigger`, which counts the
invocation, consults the rules, and logs a replayable event when one
fires.

Activation:

* :func:`install` / :func:`uninstall` / the :func:`active` context
  manager, for in-process harnesses;
* the ``REPRO_FAULTS`` environment variable (a plan string), read once
  at import — which is how freshly spawned process-pool workers arm the
  same plan as the parent run.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, List, Optional, Sequence

from .plan import FaultPlan

#: Environment variable carrying a plan string for cross-process runs.
FAULTS_ENV = "REPRO_FAULTS"

#: The installed plan, or ``None`` (the free, default state).
ACTIVE: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active plan."""
    global ACTIVE
    ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (back to the zero-overhead state)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def active(plan: FaultPlan):
    """Install ``plan`` for the duration of the block."""
    global ACTIVE
    previous = ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        ACTIVE = previous


# ----------------------------------------------------------------------
# Site helpers.  Every helper is a no-op returning its input (or doing
# nothing) when no plan is installed or no rule fires.
# ----------------------------------------------------------------------
def fire(site: str, **context: Any) -> None:
    """Raise the configured exception if a rule fires at ``site``."""
    plan = ACTIVE
    if plan is None:
        return
    detail = " ".join(f"{k}={v}" for k, v in sorted(context.items()))
    rule = plan.trigger(site, detail=detail)
    if rule is not None:
        raise plan.build_exception(rule, site)


def should(site: str) -> bool:
    """True when a rule fires at ``site`` (side-effect sites)."""
    plan = ACTIVE
    if plan is None:
        return False
    return plan.trigger(site) is not None


def delay_duration(site: str) -> float:
    """Seconds to stall at ``site`` (0.0 when nothing fires)."""
    plan = ACTIVE
    if plan is None:
        return 0.0
    rule = plan.trigger(site)
    return rule.delay if rule is not None else 0.0


def sleep(site: str) -> None:
    """Blocking stall at ``site`` (synchronous seams only)."""
    duration = delay_duration(site)
    if duration > 0.0:
        time.sleep(duration)


def mutate(site: str, value: Any) -> Any:
    """Corrupt ``value`` if a rule fires; otherwise pass it through.

    * ``truncate`` on ``str``/``bytes``: cut at ``fraction`` of length;
    * ``drop_one`` on sequences: remove a seeded element (returns a
      list) — the malformed-envelope shape.
    """
    plan = ACTIVE
    if plan is None:
        return value
    rule = plan.trigger(site)
    if rule is None:
        return value
    action = rule.resolved_action
    if action == "truncate" and isinstance(value, (str, bytes)):
        return value[:max(1, int(len(value) * rule.fraction))]
    if action == "drop_one" and isinstance(value, Sequence) \
            and not isinstance(value, (str, bytes)):
        items: List[Any] = list(value)
        if items:
            items.pop(plan.pick_index(site, len(items)))
        return items
    return value


def nan_lanes(site: str, tau):
    """Poison one seeded lane of ``tau`` with NaN if a rule fires."""
    plan = ACTIVE
    if plan is None:
        return tau
    rule = plan.trigger(site)
    if rule is None:
        return tau
    import numpy as np

    out = np.array(tau, dtype=float, copy=True)
    if out.size:
        out[plan.pick_index(site, out.size)] = np.nan
    return out


def pick_lane(site: str, n: int) -> Optional[int]:
    """Seeded lane index in ``[0, n)`` if a rule fires, else ``None``."""
    plan = ACTIVE
    if plan is None or n <= 0:
        return None
    rule = plan.trigger(site)
    if rule is None:
        return None
    return plan.pick_index(site, n)


def _install_from_env() -> None:
    text = os.environ.get(FAULTS_ENV)
    if text:
        install(FaultPlan.from_string(text))


_install_from_env()
