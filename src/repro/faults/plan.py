"""Deterministic fault plans: named sites, seeded rules, replayable events.

The fault plane answers one question for the engine/serve stack: *when a
seam misbehaves, do the recovery paths actually hold the system's
invariants?*  Every recovery path the stack grew — corrupt-record
unlinking in the result cache, per-job fault isolation in the executor,
the RC re-seed retry, per-lane envelopes in the batcher, graceful drain
in the server — is reachable from a named :class:`FaultPoint` listed in
:data:`FAULT_POINTS`.

A :class:`FaultPlan` is a seed plus an ordered list of :class:`FaultRule`
objects.  Determinism is the design center:

* every site draws from its **own** PRNG stream, seeded by
  ``(plan seed, site name)`` — interleaving of sites across threads
  cannot perturb any one site's decisions;
* rule matching counts *invocations per site*, so "fire on the 2nd
  cache read" means the same read in every replay of the same traffic;
* every fired fault is appended to the plan's event log with a global
  sequence number, which is the replay artifact the ``repro-faults``
  CLI prints and diffs.

Plans serialize to a compact JSON string (``to_string``/``from_string``)
that can travel through the ``REPRO_FAULTS`` environment variable —
which is how process-pool workers, spawned fresh, arm the same faults
as their parent.

The plane is **zero-overhead when off**: seams guard every call with
``if hooks.ACTIVE is not None`` (one module-attribute load and an ``is``
check), so an idle production server never pays for its adversary.
"""

from __future__ import annotations

import json
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


# ----------------------------------------------------------------------
# The site registry.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPoint:
    """One named injection site threaded through a hot seam.

    ``scenario`` names the canned campaign scenario (see
    :mod:`repro.faults.harness`) that exercises the site; the campaign
    uses it to assert every site fired at least once.
    """

    name: str
    description: str
    scenario: str
    default_action: str


#: Every named injection site, keyed by name.  Sites are part of the
#: correctness surface: the campaign asserts coverage of this registry,
#: so adding a seam without registering it here fails the gate.
FAULT_POINTS: Dict[str, FaultPoint] = {point.name: point for point in [
    FaultPoint("cache.get.os_error",
               "result-cache read raises OSError before the record opens",
               "cache", "raise"),
    FaultPoint("cache.get.torn_record",
               "result-cache record bytes are truncated mid-read "
               "(torn write from a killed process)",
               "cache", "truncate"),
    FaultPoint("cache.put.os_error",
               "result-cache write raises OSError between the temp file "
               "and its atomic rename",
               "cache", "raise"),
    FaultPoint("cache.put.stale_tmp",
               "a writer dies after creating its temp file, leaving a "
               "stale .tmp in the shard",
               "cache", "side_effect"),
    FaultPoint("executor.job.error",
               "a job raises inside the executor's fault-isolation "
               "envelope",
               "engine", "raise"),
    FaultPoint("executor.job.hang",
               "a job stalls inside the executor (sleep past deadlines)",
               "engine", "delay"),
    FaultPoint("executor.pool.broken",
               "the process pool breaks (a worker died mid-chunk)",
               "engine", "raise"),
    FaultPoint("optimize.warm_start",
               "the optimizer's warm start diverges, forcing the RC "
               "re-seed retry",
               "engine", "raise"),
    FaultPoint("kernels.threshold_delay.nan_lane",
               "one lane of a batched threshold-delay solve goes NaN",
               "serve", "nan_lane"),
    FaultPoint("serve.optimize.lane_error",
               "a single lane of a lockstep optimize batch diverges",
               "serve", "pick_lane"),
    FaultPoint("batcher.dispatch.delay",
               "the drain loop stalls before dispatch (linger/deadline "
               "races)",
               "serve", "delay"),
    FaultPoint("batcher.evaluate.error",
               "the batch evaluator raises for a whole dispatched batch",
               "serve", "raise"),
    FaultPoint("batcher.envelope.malformed",
               "the evaluator returns a malformed envelope list (wrong "
               "count)",
               "serve", "drop_one"),
    FaultPoint("server.read.drop",
               "the connection drops while a request is being read "
               "(mid-keep-alive disconnect)",
               "serve", "raise"),
    FaultPoint("server.write.truncate",
               "the response body is truncated and the connection closed",
               "serve", "truncate"),
    FaultPoint("backend.worker.crash",
               "a backend worker dies mid-batch (the pool breaks under "
               "a dispatched batch; process backends rebuild it)",
               "backend", "raise"),
    FaultPoint("backend.worker.hang",
               "a backend dispatch stalls before reaching a worker",
               "backend", "delay"),
    FaultPoint("backend.dispatch.queue_full",
               "the backend refuses a dispatch at submission (its "
               "internal queue is saturated)",
               "backend", "raise"),
    FaultPoint("store.memory.evict_race",
               "a racing evictor removes an extra entry during a "
               "memory-tier byte-budget eviction",
               "store", "side_effect"),
    FaultPoint("store.singleflight.leader_crash",
               "a single-flight leader dies after evaluating but before "
               "publishing; followers must still be answered",
               "store", "raise"),
    FaultPoint("store.disk.shard_unwritable",
               "a disk-store shard directory cannot be created or "
               "written (permissions, read-only mount)",
               "store", "raise"),
]}


#: Exception classes a ``raise`` rule may name.  Library exceptions are
#: resolved lazily to keep this module import-light.
_EXCEPTION_NAMES = ("OSError", "RuntimeError", "ConnectionError",
                    "TimeoutError", "OptimizationError",
                    "DelaySolverError", "BrokenProcessPool")


def _exception_class(name: str):
    if name == "OptimizationError":
        from ..errors import OptimizationError
        return OptimizationError
    if name == "DelaySolverError":
        from ..errors import DelaySolverError
        return DelaySolverError
    if name == "BrokenProcessPool":
        from concurrent.futures.process import BrokenProcessPool
        return BrokenProcessPool
    return {"OSError": OSError, "RuntimeError": RuntimeError,
            "ConnectionError": ConnectionError,
            "TimeoutError": TimeoutError}[name]


#: Default exception a ``raise`` rule uses per site.
_DEFAULT_EXCEPTIONS = {
    "cache.get.os_error": "OSError",
    "cache.put.os_error": "OSError",
    "executor.job.error": "RuntimeError",
    "executor.pool.broken": "BrokenProcessPool",
    "optimize.warm_start": "OptimizationError",
    "batcher.evaluate.error": "RuntimeError",
    "server.read.drop": "ConnectionError",
    "backend.worker.crash": "BrokenProcessPool",
    "backend.dispatch.queue_full": "RuntimeError",
    "store.singleflight.leader_crash": "RuntimeError",
    "store.disk.shard_unwritable": "OSError",
}


# ----------------------------------------------------------------------
# Rules.
# ----------------------------------------------------------------------
@dataclass
class FaultRule:
    """When and how one site misbehaves.

    ``mode`` selects the trigger condition against the site's
    invocation counter (1-based):

    * ``"always"`` — every invocation;
    * ``"first"``  — the first ``n`` invocations;
    * ``"nth"``    — exactly the ``n``-th invocation;
    * ``"prob"``   — each invocation with probability ``p``, drawn from
      the site's seeded PRNG stream (replayable).

    ``action`` defaults to the site's registered default; ``exc`` names
    the exception class for ``raise`` actions, ``delay`` the stall in
    seconds, ``fraction`` where truncating actions cut.
    """

    site: str
    mode: str = "nth"
    n: int = 1
    p: float = 1.0
    action: Optional[str] = None
    exc: Optional[str] = None
    delay: float = 0.05
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.site not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: {known}")
        if self.mode not in ("always", "first", "nth", "prob"):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.n < 1:
            raise ValueError(f"rule count must be >= 1, got {self.n}")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"rule probability must be in [0, 1], "
                             f"got {self.p}")
        if self.exc is not None and self.exc not in _EXCEPTION_NAMES:
            raise ValueError(
                f"unknown exception {self.exc!r}; known: "
                f"{', '.join(_EXCEPTION_NAMES)}")

    @property
    def resolved_action(self) -> str:
        return (self.action if self.action is not None
                else FAULT_POINTS[self.site].default_action)

    def matches(self, hit: int, rng: random.Random) -> bool:
        """Does this rule fire on the site's ``hit``-th invocation?"""
        if self.mode == "always":
            return True
        if self.mode == "first":
            return hit <= self.n
        if self.mode == "nth":
            return hit == self.n
        return rng.random() < self.p

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "mode": self.mode}
        if self.mode in ("first", "nth"):
            out["n"] = self.n
        if self.mode == "prob":
            out["p"] = self.p
        if self.action is not None:
            out["action"] = self.action
        if self.exc is not None:
            out["exc"] = self.exc
        if self.resolved_action == "delay":
            out["delay"] = self.delay
        if self.resolved_action == "truncate":
            out["fraction"] = self.fraction
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultRule":
        return cls(site=str(data["site"]),
                   mode=str(data.get("mode", "nth")),
                   n=int(data.get("n", 1)),
                   p=float(data.get("p", 1.0)),
                   action=data.get("action"),
                   exc=data.get("exc"),
                   delay=float(data.get("delay", 0.05)),
                   fraction=float(data.get("fraction", 0.5)))


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault: the replay artifact, in global firing order."""

    seq: int
    site: str
    action: str
    hit: int          #: which invocation of the site this was (1-based)
    detail: str = ""

    def format(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        return f"#{self.seq} {self.site} hit={self.hit} " \
               f"action={self.action}{extra}"


# ----------------------------------------------------------------------
# The plan.
# ----------------------------------------------------------------------
class FaultPlan:
    """A seed plus rules; thread-safe counters and an event log.

    The same plan string driven through the same traffic produces the
    same event sequence — that is the contract ``repro-faults replay``
    (and every "re-run the failing plan" workflow) rests on.
    """

    def __init__(self, seed: int = 0,
                 rules: Sequence[FaultRule] = ()) -> None:
        self.seed = int(seed)
        self.rules: List[FaultRule] = list(rules)
        self.events: List[FaultEvent] = []
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}
        self._suspended = threading.local()

    # -- construction ----------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse a plan string (the JSON form ``to_string`` emits)."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        rules = [FaultRule.from_dict(entry)
                 for entry in data.get("rules", [])]
        return cls(seed=int(data.get("seed", 0)), rules=rules)

    def to_string(self) -> str:
        """Compact, replayable JSON form (inverse of ``from_string``)."""
        return json.dumps(
            {"seed": self.seed,
             "rules": [rule.to_dict() for rule in self.rules]},
            sort_keys=True, separators=(",", ":"))

    def arm(self, rule: FaultRule) -> None:
        """Append a rule while live (the stateful harness's dial)."""
        with self._lock:
            self.rules.append(rule)

    # -- suspension (ground-truth computation) ---------------------------
    @contextmanager
    def suspended(self):
        """No faults fire on *this thread* inside the block.

        The harness computes solo ground truths while the plan stays
        installed for the server's threads; suspension is therefore
        per-thread, and never consumes PRNG draws or hit counts.
        """
        before = getattr(self._suspended, "active", False)
        self._suspended.active = True
        try:
            yield
        finally:
            self._suspended.active = before

    # -- the trigger core ------------------------------------------------
    def trigger(self, site: str, detail: str = ""
                ) -> Optional[FaultRule]:
        """Count one invocation of ``site``; return the rule that fires.

        Thread-safe; logs a :class:`FaultEvent` when a rule matches.
        Returns ``None`` (and counts nothing) while suspended on the
        calling thread.
        """
        if getattr(self._suspended, "active", False):
            return None
        if site not in FAULT_POINTS:
            raise ValueError(f"unregistered fault site {site!r}")
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            rng = self._rngs.get(site)
            if rng is None:
                rng = random.Random(f"{self.seed}:{site}")
                self._rngs[site] = rng
            for rule in self.rules:
                if rule.site == site and rule.matches(hit, rng):
                    self.events.append(FaultEvent(
                        seq=len(self.events) + 1, site=site,
                        action=rule.resolved_action, hit=hit,
                        detail=detail))
                    return rule
            return None

    # -- introspection ---------------------------------------------------
    def hit_count(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)

    def fired_sites(self) -> Dict[str, int]:
        """Fired-event count per site (the coverage summary's input)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for event in self.events:
                counts[event.site] = counts.get(event.site, 0) + 1
            return counts

    def event_log(self) -> List[str]:
        with self._lock:
            return [event.format() for event in self.events]

    # -- action helpers (called by hooks) --------------------------------
    def build_exception(self, rule: FaultRule, site: str) -> BaseException:
        name = rule.exc or _DEFAULT_EXCEPTIONS.get(site, "RuntimeError")
        cls = _exception_class(name)
        message = (f"injected fault at {site} "
                   f"(plan seed {self.seed}, event "
                   f"#{len(self.events)})")
        return cls(message)

    def pick_index(self, site: str, n: int) -> int:
        """Deterministic index in ``[0, n)`` from the site's stream."""
        with self._lock:
            rng = self._rngs.get(site)
            if rng is None:
                rng = random.Random(f"{self.seed}:{site}")
                self._rngs[site] = rng
            return rng.randrange(n) if n > 0 else 0
