"""``repro-faults`` — author, replay and sweep fault plans.

Usage::

    repro-faults plan --rule cache.get.torn_record:nth:1 --seed 7
    repro-faults plan --scenario serve --seed 7
    repro-faults plan --list-sites
    repro-faults replay '{"rules":[...],"seed":7}'
    repro-faults replay @failing-plan.json
    repro-faults campaign --seed 20260809 --randomized-rounds 3 \\
        --artifact failing-plans.jsonl

``plan`` prints a serialized plan string — the single artifact every
other workflow consumes.  ``replay`` drives a plan through the live
invariant harness (:mod:`repro.faults.harness`) and prints the fired
event log plus any violated invariant; two replays of the same plan
against the same workload print the same event sequence, which is the
determinism contract debugging rests on.  ``campaign`` runs the
deterministic per-site sweep (every registered fault point must fire —
uncovered sites fail the gate) plus optional seeded randomized rounds,
writing any failing plan to the artifact file for replay.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .plan import FAULT_POINTS, FaultPlan, FaultRule


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-faults",
        description="Deterministic fault-injection plans for the "
                    "engine/serve stack: author, replay, campaign.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    plan_parser = subparsers.add_parser(
        "plan", help="build and print a serialized fault plan")
    plan_parser.add_argument(
        "--rule", action="append", default=[], metavar="SITE[:MODE[:N]]",
        help="arm SITE with MODE (always/first/nth/prob; default nth) "
             "and count/probability N; repeatable")
    plan_parser.add_argument(
        "--scenario", default=None,
        help="arm every site of one scenario (cache/engine/serve/backend/store/all) "
             "with its preset trigger")
    plan_parser.add_argument("--seed", type=int, default=0,
                             help="PRNG seed baked into the plan")
    plan_parser.add_argument("--list-sites", action="store_true",
                             help="list the registered fault sites and "
                                  "exit")

    replay_parser = subparsers.add_parser(
        "replay", help="drive one plan through the invariant harness")
    replay_parser.add_argument(
        "plan", metavar="PLAN",
        help="a plan string, @FILE to read one from a file, or - for "
             "stdin")

    campaign_parser = subparsers.add_parser(
        "campaign", help="sweep every fault site and assert coverage")
    campaign_parser.add_argument("--seed", type=int, default=0)
    campaign_parser.add_argument(
        "--randomized-rounds", type=int, default=0, metavar="N",
        help="additional seeded rounds arming random site subsets")
    campaign_parser.add_argument(
        "--artifact", default=None, metavar="PATH",
        help="write failing plans (JSON lines) here for replay")
    return parser


def _parse_rule(text: str) -> FaultRule:
    parts = text.split(":")
    site = parts[0]
    mode = parts[1] if len(parts) > 1 and parts[1] else "nth"
    kwargs = {}
    if len(parts) > 2 and parts[2]:
        if mode == "prob":
            kwargs["p"] = float(parts[2])
        else:
            kwargs["n"] = int(parts[2])
    return FaultRule(site=site, mode=mode, **kwargs)


def _plan(args: argparse.Namespace) -> int:
    if args.list_sites:
        width = max(len(name) for name in FAULT_POINTS)
        for name, point in sorted(FAULT_POINTS.items()):
            print(f"{name:<{width}}  [{point.scenario}] "
                  f"{point.description}")
        return 0
    if args.scenario is not None:
        from .harness import scenario_plan

        try:
            plan = scenario_plan(args.scenario, seed=args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        if not args.rule:
            print("error: give --rule, --scenario or --list-sites",
                  file=sys.stderr)
            return 2
        try:
            rules = [_parse_rule(text) for text in args.rule]
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        plan = FaultPlan(seed=args.seed, rules=rules)
    print(plan.to_string())
    return 0


def _read_plan_argument(text: str) -> str:
    if text == "-":
        return sys.stdin.read()
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return text


def _replay(args: argparse.Namespace) -> int:
    from .harness import replay

    try:
        plan_string = _read_plan_argument(args.plan).strip()
        report = replay(plan_string)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.format_summary())
    return 0 if report.ok else 1


def _campaign(args: argparse.Namespace) -> int:
    from .harness import run_campaign

    campaign = run_campaign(seed=args.seed,
                            randomized_rounds=args.randomized_rounds)
    print(campaign.format_summary())
    if args.artifact and campaign.failing_runs():
        with open(args.artifact, "w", encoding="utf-8") as handle:
            for run in campaign.failing_runs():
                handle.write(json.dumps({
                    "plan": run.plan_string,
                    "violations": [violation.format()
                                   for violation in run.violations],
                    "events": run.events}) + "\n")
        print(f"failing plans written to {args.artifact}")
    return 0 if campaign.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "plan":
        return _plan(args)
    if args.command == "replay":
        return _replay(args)
    return _campaign(args)


if __name__ == "__main__":
    sys.exit(main())
