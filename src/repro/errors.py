"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the numerical solvers from the circuit
simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParameterError(ReproError, ValueError):
    """An input parameter is outside its physically meaningful domain."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Magnitude of the final residual, when meaningful (else ``None``).
    """

    def __init__(self, message: str, *, iterations: int = 0,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class DelaySolverError(ConvergenceError):
    """The threshold-crossing delay of a step response could not be found."""


class OptimizationError(ConvergenceError):
    """The repeater-insertion optimizer failed to converge."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate name, ...)."""


class SimulationError(ReproError, RuntimeError):
    """The circuit simulator failed (singular matrix, Newton divergence)."""


class ExtractionError(ReproError, ValueError):
    """A parasitic-extraction model was asked outside its validity range."""
