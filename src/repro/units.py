"""Unit constants and converters.

All internal computation in :mod:`repro` uses SI base units:

* length in metres (m)
* resistance per unit length in ohm/m
* capacitance per unit length in farad/m
* inductance per unit length in henry/m
* time in seconds, capacitance in farads, resistance in ohms

The 2001 paper quotes interconnect parameters in the units customary for
on-chip wires (ohm/mm, pF/m, nH/mm, mm, ps, fF, kilo-ohm).  The helpers here
convert between those "paper units" and SI so that every conversion is done
in exactly one place.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Physical constants (SI).
# ---------------------------------------------------------------------------

#: Vacuum permittivity in F/m.
EPSILON_0 = 8.8541878128e-12

#: Vacuum permeability in H/m.
MU_0 = 1.25663706212e-6

#: Speed of light in vacuum in m/s.
C_LIGHT = 2.99792458e8

# ---------------------------------------------------------------------------
# Scale factors.  Multiplying a value in the named unit by the factor yields
# the SI value, e.g. ``5 * NH_PER_MM`` is 5 nH/mm expressed in H/m.
# ---------------------------------------------------------------------------

#: One ohm/mm expressed in ohm/m.
OHM_PER_MM = 1.0e3

#: One nH/mm expressed in H/m.
NH_PER_MM = 1.0e-6

#: One pF/m expressed in F/m (pF/m is already the paper's capacitance unit).
PF_PER_M = 1.0e-12

#: One millimetre in metres.
MM = 1.0e-3

#: One micrometre in metres.
UM = 1.0e-6

#: One nanometre in metres.
NM = 1.0e-9

#: One picosecond in seconds.
PS = 1.0e-12

#: One nanosecond in seconds.
NS = 1.0e-9

#: One femtofarad in farads.
FF = 1.0e-15

#: One picofarad in farads.
PF = 1.0e-12

#: One kilo-ohm in ohms.
KOHM = 1.0e3


# ---------------------------------------------------------------------------
# Converters: paper units -> SI.
# ---------------------------------------------------------------------------

def resistance_per_length_from_ohm_per_mm(value: float) -> float:
    """Convert a line resistance from ohm/mm to ohm/m."""
    return value * OHM_PER_MM


def inductance_per_length_from_nh_per_mm(value: float) -> float:
    """Convert a line inductance from nH/mm to H/m."""
    return value * NH_PER_MM


def capacitance_per_length_from_pf_per_m(value: float) -> float:
    """Convert a line capacitance from pF/m to F/m."""
    return value * PF_PER_M


def length_from_mm(value: float) -> float:
    """Convert a length from millimetres to metres."""
    return value * MM


# ---------------------------------------------------------------------------
# Converters: SI -> paper units (for display and report tables).
# ---------------------------------------------------------------------------

def to_ohm_per_mm(value: float) -> float:
    """Convert a line resistance from ohm/m to ohm/mm."""
    return value / OHM_PER_MM


def to_nh_per_mm(value: float) -> float:
    """Convert a line inductance from H/m to nH/mm."""
    return value / NH_PER_MM


def to_pf_per_m(value: float) -> float:
    """Convert a line capacitance from F/m to pF/m."""
    return value / PF_PER_M


def to_mm(value: float) -> float:
    """Convert a length from metres to millimetres."""
    return value / MM


def to_ps(value: float) -> float:
    """Convert a time from seconds to picoseconds."""
    return value / PS


def to_ff(value: float) -> float:
    """Convert a capacitance from farads to femtofarads."""
    return value / FF


def to_kohm(value: float) -> float:
    """Convert a resistance from ohms to kilo-ohms."""
    return value / KOHM
