"""CSV export of experiment results (for external plotting tools)."""

from __future__ import annotations

import csv
import io

from .base import ExperimentResult


def result_to_csv(result: ExperimentResult) -> str:
    """Render an experiment's table as CSV text (headers + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(row)
    return buffer.getvalue()


def write_csv(result: ExperimentResult, path: str) -> None:
    """Write an experiment's table to ``path`` as CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(result_to_csv(result))
