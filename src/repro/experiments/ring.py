"""Shared ring-oscillator machinery for the Fig. 9-12 experiments.

The three simulation figures all run the same testbench: a five-stage
ring oscillator at a node's RC-optimal sizing (h_optRC, k_optRC), swept
over line inductance.  This module owns the calibrated-inverter cache and
the run helper, so waveform, period and current-density experiments stay
consistent with each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from .. import units
from ..analysis.waveform import Waveform
from ..circuits.builders import RingOscillator, build_ring_oscillator
from ..circuits.inverter import InverterCalibration
from ..circuits.transient import TransientOptions, TransientResult, simulate
from ..core.elmore import rc_optimum
from ..errors import ParameterError
from ..tech.characterize import calibrate_inverter
from ..tech.node import TechnologyNode, get_node

#: Default ladder segments for the ring-oscillator lines (speed/accuracy
#: compromise; the segment-convergence ablation bench quantifies it).
DEFAULT_RING_SEGMENTS = 10

#: Default simulation length in units of the *naive* period estimate
#: 2 n_stages tau_optRC.  The real period is 2-3x the naive estimate
#: (inductive slow-down), and the period measurement needs several full
#: cycles after the start-up transient, hence the generous budget.
DEFAULT_PERIOD_BUDGET = 14.0


@lru_cache(maxsize=8)
def calibrated(node_name: str) -> InverterCalibration:
    """Cached refined inverter calibration for a node."""
    return calibrate_inverter(get_node(node_name), refine=True)


def expected_period(node: TechnologyNode, n_stages: int = 5) -> float:
    """Rough ring period estimate 2 * n_stages * tau_optRC for sizing runs."""
    return 2.0 * n_stages * rc_optimum(node.line, node.driver).tau_opt


@dataclass(frozen=True)
class RingRun:
    """One simulated ring-oscillator run with its probe waveforms."""

    node_name: str
    l: float                       #: line inductance (H/m)
    oscillator: RingOscillator
    result: TransientResult
    probe_stage: int

    @property
    def input_waveform(self) -> Waveform:
        """Voltage at the probed inverter's input (line far end)."""
        node = self.oscillator.stage_inputs[self.probe_stage]
        return Waveform(self.result.time, self.result.voltage(node))

    @property
    def output_waveform(self) -> Waveform:
        """Voltage at the probed inverter's output (line near end)."""
        node = self.oscillator.stage_outputs[self.probe_stage]
        return Waveform(self.result.time, self.result.voltage(node))

    def period(self, *, skip: int = 1) -> float:
        """Oscillation period measured at the probed output, VDD/2 level."""
        return self.output_waveform.oscillation_period(
            0.5 * self.oscillator.vdd, skip=skip, min_cycles=2)


def run_ring(node_name: str, l_nh_per_mm: float, *,
             n_stages: int = 5, segments: int = DEFAULT_RING_SEGMENTS,
             style: str = "mosfet", probe_stage: int = 2,
             period_budget: float = DEFAULT_PERIOD_BUDGET,
             steps_per_period: int = 700) -> RingRun:
    """Build and simulate the ring oscillator at one inductance value.

    Parameters
    ----------
    l_nh_per_mm:
        Line inductance in the paper's nH/mm unit.
    period_budget:
        Simulation length in units of the estimated nominal period.
    steps_per_period:
        Time resolution relative to the estimated nominal period.
    """
    if l_nh_per_mm < 0.0:
        raise ParameterError(f"inductance must be >= 0, got {l_nh_per_mm}")
    node = get_node(node_name)
    calibration = calibrated(node_name)
    rc_opt = rc_optimum(node.line, node.driver)
    line = node.line_with_inductance(l_nh_per_mm * units.NH_PER_MM)
    oscillator = build_ring_oscillator(calibration, line, rc_opt.h_opt,
                                       rc_opt.k_opt, n_stages=n_stages,
                                       segments=segments, style=style)
    nominal = expected_period(node, n_stages)
    t_end = period_budget * nominal
    dt = nominal / steps_per_period
    result = simulate(oscillator.circuit, t_end, dt,
                      initial_voltages=oscillator.initial_voltages(),
                      options=TransientOptions(
                          max_update=max(1.0, 2.0 * node.vdd)))
    return RingRun(node_name=node_name, l=line.l, oscillator=oscillator,
                   result=result, probe_stage=probe_stage)
