"""Figures 9 & 10: ring-oscillator waveforms below/above the failure onset.

Simulates the 100 nm five-stage ring oscillator at l = 1.8 nH/mm (Fig. 9:
heavily ringing input, still "clean" output, nominal period) and at
l = 2.2 nH/mm (Fig. 10: undershoot deep enough to falsely switch the
inverter — the period collapses to less than half).  The tabulated metrics
are the ones the paper reads off the waveforms: input overshoot and
undershoot, output cleanliness and the oscillation period.
"""

from __future__ import annotations

from .. import units
from ..tech.node import get_node
from .base import ExperimentResult, experiment
from .ring import DEFAULT_RING_SEGMENTS, run_ring

#: The paper's two illustrated inductance values (nH/mm).
PAPER_L_VALUES = (1.8, 2.2)


@experiment("fig9_10", "Ring-oscillator waveforms below/above failure onset")
def run(node_name: str = "100nm", l_values=PAPER_L_VALUES,
        segments: int = DEFAULT_RING_SEGMENTS,
        style: str = "mosfet", period_budget: float = 14.0,
        steps_per_period: int = 700) -> ExperimentResult:
    """Simulate the ring oscillator at the paper's two l values."""
    node = get_node(node_name)
    vdd = node.vdd
    headers = ["l (nH/mm)", "period (ps)", "input overshoot (V)",
               "input undershoot (V)", "output overshoot (V)",
               "output undershoot (V)"]
    rows = []
    data: dict = {"node": node_name, "vdd": vdd}
    for l_nh in l_values:
        run_data = run_ring(node_name, float(l_nh), segments=segments,
                            style=style, period_budget=period_budget,
                            steps_per_period=steps_per_period)
        vin = run_data.input_waveform
        vout = run_data.output_waveform
        period = run_data.period()
        rows.append([float(l_nh), units.to_ps(period),
                     vin.overshoot(vdd), vin.undershoot(0.0),
                     vout.overshoot(vdd), vout.undershoot(0.0)])
        data[f"l={l_nh}"] = {"input": vin, "output": vout, "period": period}
    notes = [
        "paper: at l = 1.8 nH/mm the input rings hard but the output stays "
        "clean and the period is nominal (Fig. 9)",
        "paper: at l = 2.2 nH/mm undershoot falsely switches the inverter "
        "and the period drops to less than half (Fig. 10)",
    ]
    if len(rows) >= 2:
        ratio = rows[1][1] / rows[0][1]
        notes.append(f"measured period ratio "
                     f"(l={l_values[1]} / l={l_values[0]}): {ratio:.2f}")
    return ExperimentResult(
        experiment_id="fig9_10",
        title="Inverter input/output waveforms in the 5-stage ring "
              "(paper Figs. 9-10)",
        headers=headers, rows=rows, notes=notes, data=data)
