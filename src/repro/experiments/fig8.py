"""Figure 8: delay penalty of RC-optimal sizing under inductance variation.

Because the effective l is input-pattern dependent and hard to target, a
designer may size for the Elmore optimum (h_optRC, k_optRC) regardless of
l.  This experiment measures the resulting delay per unit length at each
actual l and divides by the true RLC optimum at that l.  Paper's numbers:
the worst-case penalty is ~6% at 250 nm and ~12% at 100 nm.
"""

from __future__ import annotations

from .. import units
from .base import ExperimentResult, experiment
from .sweeps import DEFAULT_POINTS, FIGURE_NODES, node_sweep


@experiment("fig8", "Delay penalty of RC sizing vs the RLC optimum")
def run(points: int = DEFAULT_POINTS, f: float = 0.5) -> ExperimentResult:
    """Tabulate the mistuning penalty for both nodes."""
    headers = ["l (nH/mm)"] + [f"penalty {name}" for name in FIGURE_NODES]
    sweeps = [node_sweep(name, f, points) for name in FIGURE_NODES]
    l_nh = units.to_nh_per_mm(sweeps[0].l_values)
    rows = [[float(l_nh[i])]
            + [float(s.mistuning_penalty[i]) for s in sweeps]
            for i in range(len(l_nh))]
    worst = {name: float(s.mistuning_penalty.max())
             for name, s in zip(FIGURE_NODES, sweeps)}
    notes = [
        "paper: worst-case penalty ~1.06x at 250nm, ~1.12x at 100nm",
        "measured worst-case: "
        + ", ".join(f"{k} -> {v:.3f}x" for k, v in worst.items()),
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Delay of (h_optRC, k_optRC) sizing over the RLC optimum "
              "(paper Fig. 8)",
        headers=headers, rows=rows, notes=notes,
        data={"sweeps": {n: s for n, s in zip(FIGURE_NODES, sweeps)},
              "worst_penalty": worst})
