"""Shared, cached inductance sweeps used by the Fig. 4-8 experiments.

All five optimizer figures plot quantities derived from the same sweep of
the RLC repeater optimum over l in [0, 5) nH/mm for the two (plus one
control) technology nodes.  Running the optimizer once per (node, grid)
and caching keeps the experiment suite fast and guarantees every figure is
computed from identical optima.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .. import units
from ..core.sweep import InductanceSweep, sweep_inductance
from ..tech.node import get_node

#: Default sweep resolution (points across 0..5 nH/mm, inclusive start).
DEFAULT_POINTS = 26

#: Default sweep ceiling (paper: worst case < 5 nH/mm).
DEFAULT_MAX_NH_PER_MM = 5.0


def default_l_grid(points: int = DEFAULT_POINTS,
                   max_nh_per_mm: float = DEFAULT_MAX_NH_PER_MM) -> np.ndarray:
    """Inductance grid in H/m starting at l = 0 (the RC reference point)."""
    return np.linspace(0.0, max_nh_per_mm, points) * units.NH_PER_MM


@lru_cache(maxsize=32)
def node_sweep(node_name: str, f: float = 0.5,
               points: int = DEFAULT_POINTS,
               max_nh_per_mm: float = DEFAULT_MAX_NH_PER_MM
               ) -> InductanceSweep:
    """Cached optimizer sweep for a named technology node."""
    node = get_node(node_name)
    grid = default_l_grid(points, max_nh_per_mm)
    return sweep_inductance(node.line, node.driver, grid, f)


#: Node names the optimizer figures cover, in plotting order.
FIGURE_NODES = ("250nm", "100nm")

#: The identical-c control case added in Fig. 7.
CONTROL_NODE = "100nm-eps3.3"
