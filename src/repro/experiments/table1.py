"""Table 1: interconnect technology parameters and RC optima.

Reproduces the derived columns of Table 1 (h_optRC, k_optRC, tau_optRC)
from the stored device parameters via the closed-form RC optimum, checks
the extraction substitutes against the tabulated r and c, and — when
``simulate=True`` — re-measures r_s through the calibrated inverter in our
transient simulator (the paper's SPICE-characterization path).
"""

from __future__ import annotations

from .. import units
from ..core.elmore import rc_optimum
from ..extraction.capacitance import total_capacitance
from ..extraction.geometry import COPPER_RESISTIVITY, wire_from_tech
from ..tech.node import NODE_100NM, NODE_250NM
from .base import ExperimentResult, experiment


@experiment("table1", "Technology parameters and RC-optimal repeater insertion")
def run(simulate: bool = False) -> ExperimentResult:
    """Reproduce Table 1's derived columns for both nodes.

    Parameters
    ----------
    simulate:
        Also calibrate the square-law inverter and re-measure r_s with the
        transient simulator (adds ~1 s).
    """
    headers = ["node", "h_optRC (mm)", "k_optRC", "tau_optRC (ps)",
               "c_extracted (pF/m)", "r_extracted (ohm/mm)"]
    if simulate:
        headers.append("r_s simulated (kohm)")
    rows = []
    notes = [
        "paper values: 250nm -> h 14.4 mm, k 578, tau 305.17 ps;"
        " 100nm -> h 11.1 mm, k 528, tau 105.94 ps",
        "c_extracted uses the Sakurai closed forms (FASTCAP substitute)"
        " with two quiet neighbours and a mirror plane above",
    ]
    data: dict = {}
    for node in (NODE_250NM, NODE_100NM):
        optimum = rc_optimum(node.line, node.driver)
        wire = wire_from_tech(node.geometry)
        c_est = total_capacitance(wire, node.epsilon_r).total
        r_est = wire.resistance_per_length(COPPER_RESISTIVITY)
        row = [node.name,
               units.to_mm(optimum.h_opt),
               optimum.k_opt,
               units.to_ps(optimum.tau_opt),
               units.to_pf_per_m(c_est),
               units.to_ohm_per_mm(r_est)]
        if simulate:
            from ..tech.characterize import (calibrate_inverter,
                                             measured_driver_params)
            calibration = calibrate_inverter(node, refine=True)
            measured = measured_driver_params(calibration)
            row.append(units.to_kohm(measured.r_s))
        rows.append(row)
        data[node.name] = {"rc_optimum": optimum, "c_extracted": c_est,
                           "r_extracted": r_est}
    return ExperimentResult(experiment_id="table1",
                            title="Interconnect technology parameters "
                                  "(paper Table 1)",
                            headers=headers, rows=rows, notes=notes,
                            data=data)
