"""Extension experiment: robust (minimax) sizing under l uncertainty.

Completes the paper's Sec. 3.2: instead of only pricing the RC-blind
sizing, compare the worst-case delay and worst-case *regret* of four
committed sizings over the plausible inductance interval — RC-blind,
nominal at l_min, nominal at the midpoint, and the minimax design (which,
by the monotonicity of delay in l, is the nominal optimum at l_max).
"""

from __future__ import annotations

from .. import units
from ..core.robust import regret_analysis
from ..tech.node import get_node
from .base import ExperimentResult, experiment


@experiment("ext_robust",
            "Minimax repeater sizing under inductance uncertainty "
            "(extension)")
def run(node_name: str = "100nm", l_min_nh: float = 0.2,
        l_max_nh: float = 3.0, grid_points: int = 5) -> ExperimentResult:
    """Regret table of candidate sizings over [l_min, l_max]."""
    node = get_node(node_name)
    rows_data = regret_analysis(node.line, node.driver,
                                l_min=l_min_nh * units.NH_PER_MM,
                                l_max=l_max_nh * units.NH_PER_MM,
                                grid_points=grid_points)
    headers = ["sizing", "h (mm)", "k", "worst delay (ps/mm)",
               "worst regret (%)"]
    rows = [[row.label, units.to_mm(row.h), row.k,
             row.worst_delay_per_length * 1e9, row.worst_regret * 100.0]
            for row in rows_data]
    minimax = next(r for r in rows_data if "minimax" in r.label)
    rc_blind = next(r for r in rows_data if r.label == "rc-blind")
    notes = [
        "delay is monotone in l at fixed sizing, so the minimax design is "
        "the nominal optimum at l_max",
        f"hedging with the minimax design caps the regret at "
        f"{minimax.worst_regret * 100:.1f}% vs "
        f"{rc_blind.worst_regret * 100:.1f}% for the RC-blind sizing "
        f"(paper Fig. 8's penalty, generalized)",
        "minimax minimizes the worst *absolute* delay; the mid-interval "
        "nominal typically minimizes the worst *regret* — pick by design "
        "intent",
    ]
    return ExperimentResult(
        experiment_id="ext_robust",
        title=f"Minimax sizing over l in [{l_min_nh}, {l_max_nh}] nH/mm, "
              f"{node.name} (extension)",
        headers=headers, rows=rows, notes=notes,
        data={"rows": rows_data})
