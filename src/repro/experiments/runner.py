"""Command-line runner for the paper-artifact experiments.

Usage::

    repro-experiments list
    repro-experiments run fig7 fig8
    repro-experiments run all --fast
    repro-experiments run fig11 --out results.txt
    repro-experiments run all --fast --jobs 4 --cache

``--fast`` shrinks sweeps/segment counts so the full suite finishes in a
couple of minutes; the default settings match the paper's resolution.

Every experiment is submitted through the batch engine
(:mod:`repro.engine`) as one ``ExperimentJob``.  The default backend is
the serial in-process executor (identical behaviour to calling the
experiment functions directly); ``--jobs N`` fans the requested
experiments out over N worker processes and ``--cache`` replays
previously computed experiments from the content-addressed result cache.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Iterable

from ..engine.backends import BACKEND_NAMES
from ..engine.executor import BatchExecutor
from ..engine.store import add_store_arguments, store_from_args
from ..engine.jobs import ExperimentJob
from .base import DESCRIPTIONS, ExperimentResult, all_experiment_ids

#: Reduced-cost keyword overrides per experiment for --fast runs.
FAST_OVERRIDES = {
    "table1": {"simulate": False},
    "fig4": {"points": 11},
    "fig5": {"points": 11},
    "fig6": {"points": 11},
    "fig7": {"points": 11},
    "fig8": {"points": 11},
    "fig9_10": {"period_budget": 10.0, "steps_per_period": 500},
    "fig11": {"l_values": (1.0, 1.8, 2.2, 3.0), "period_budget": 10.0,
              "steps_per_period": 500},
    "fig12": {"l_values": (0.5, 1.5, 2.5), "period_budget": 10.0,
              "steps_per_period": 500},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of Banerjee & Mehrotra, "
                    "DAC 2001.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="+",
                            help="experiment ids, or 'all'")
    run_parser.add_argument("--fast", action="store_true",
                            help="reduced sweeps for a quick pass")
    run_parser.add_argument("--out", default=None,
                            help="also write reports to this file")
    run_parser.add_argument("--append", action="store_true",
                            help="append to --out instead of overwriting")
    run_parser.add_argument("--csv-dir", default=None,
                            help="write each experiment's table as "
                                 "<id>.csv into this directory")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes for the batch engine "
                                 "(1 = serial in-process)")
    run_parser.add_argument("--backend", choices=BACKEND_NAMES,
                            default=None,
                            help="execution backend (default: serial "
                                 "when --jobs 1, process otherwise)")
    run_parser.add_argument("--cache", action="store_true",
                            help="replay results from the engine's "
                                 "content-addressed cache when possible")
    run_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="cache directory (with --cache; default: "
                                 "$REPRO_CACHE_DIR or ./.repro-cache)")
    add_store_arguments(run_parser)
    return parser


def resolve_ids(requested: Iterable[str]) -> list[str]:
    """Expand 'all' and validate the requested experiment ids."""
    available = all_experiment_ids()
    ids: list[str] = []
    for item in requested:
        if item == "all":
            ids.extend(available)
        elif item in available:
            ids.append(item)
        else:
            raise SystemExit(
                f"unknown experiment {item!r}; available: "
                f"{', '.join(available)}")
    # De-duplicate, keep order.
    seen = set()
    return [i for i in ids if not (i in seen or seen.add(i))]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in all_experiment_ids():
            print(f"{experiment_id:10s} {DESCRIPTIONS[experiment_id]}")
        return 0

    ids = resolve_ids(args.ids)
    job_specs = []
    for experiment_id in ids:
        kwargs = FAST_OVERRIDES.get(experiment_id, {}) if args.fast else {}
        job_specs.append(ExperimentJob.create(experiment_id, **kwargs))

    cache = None
    if args.cache:
        try:
            cache = store_from_args(args)
        except ValueError as exc:
            raise SystemExit(f"repro-experiments: {exc}")
    start = time.perf_counter()
    with BatchExecutor(jobs=args.jobs, cache=cache,
                       backend=args.backend) as executor:
        batch = executor.run(job_specs)

    reports = []
    failed = []
    for experiment_id, outcome in zip(ids, batch):
        if not outcome.ok:
            failed.append(experiment_id)
            print(f"== {experiment_id}: FAILED ==\n"
                  f"{outcome.error_type}: {outcome.error}")
            print()
            continue
        result = ExperimentResult.from_payload(outcome.result)
        stamp = ("cached" if outcome.from_cache
                 else f"{outcome.wall_time:.1f}s")
        report = result.format_report() + f"\n[{stamp}]"
        print(report)
        print()
        reports.append(report)
        if args.csv_dir:
            from .export import write_csv
            os.makedirs(args.csv_dir, exist_ok=True)
            write_csv(result, os.path.join(args.csv_dir,
                                           f"{experiment_id}.csv"))

    if len(ids) > 1 or failed:
        metrics = batch.metrics
        metrics.wall_time = time.perf_counter() - start
        print(metrics.format_summary())
    if args.out and reports:
        mode = "a" if args.append else "w"
        with open(args.out, mode, encoding="utf-8") as handle:
            handle.write("\n\n".join(reports) + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
