"""Command-line runner for the paper-artifact experiments.

Usage::

    repro-experiments list
    repro-experiments run fig7 fig8
    repro-experiments run all --fast
    repro-experiments run fig11 --out results.txt

``--fast`` shrinks sweeps/segment counts so the full suite finishes in a
couple of minutes; the default settings match the paper's resolution.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable

from .base import DESCRIPTIONS, all_experiment_ids, run_experiment

#: Reduced-cost keyword overrides per experiment for --fast runs.
FAST_OVERRIDES = {
    "table1": {"simulate": False},
    "fig4": {"points": 11},
    "fig5": {"points": 11},
    "fig6": {"points": 11},
    "fig7": {"points": 11},
    "fig8": {"points": 11},
    "fig9_10": {"period_budget": 10.0, "steps_per_period": 500},
    "fig11": {"l_values": (1.0, 1.8, 2.2, 3.0), "period_budget": 10.0,
              "steps_per_period": 500},
    "fig12": {"l_values": (0.5, 1.5, 2.5), "period_budget": 10.0,
              "steps_per_period": 500},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables/figures of Banerjee & Mehrotra, "
                    "DAC 2001.")
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("list", help="list available experiments")
    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument("ids", nargs="+",
                            help="experiment ids, or 'all'")
    run_parser.add_argument("--fast", action="store_true",
                            help="reduced sweeps for a quick pass")
    run_parser.add_argument("--out", default=None,
                            help="also append reports to this file")
    run_parser.add_argument("--csv-dir", default=None,
                            help="write each experiment's table as "
                                 "<id>.csv into this directory")
    return parser


def resolve_ids(requested: Iterable[str]) -> list[str]:
    """Expand 'all' and validate the requested experiment ids."""
    available = all_experiment_ids()
    ids: list[str] = []
    for item in requested:
        if item == "all":
            ids.extend(available)
        elif item in available:
            ids.append(item)
        else:
            raise SystemExit(
                f"unknown experiment {item!r}; available: "
                f"{', '.join(available)}")
    # De-duplicate, keep order.
    seen = set()
    return [i for i in ids if not (i in seen or seen.add(i))]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in all_experiment_ids():
            print(f"{experiment_id:10s} {DESCRIPTIONS[experiment_id]}")
        return 0

    reports = []
    for experiment_id in resolve_ids(args.ids):
        kwargs = FAST_OVERRIDES.get(experiment_id, {}) if args.fast else {}
        start = time.perf_counter()
        result = run_experiment(experiment_id, **kwargs)
        elapsed = time.perf_counter() - start
        report = result.format_report() + f"\n[{elapsed:.1f}s]"
        print(report)
        print()
        reports.append(report)
        if args.csv_dir:
            import os
            from .export import write_csv
            os.makedirs(args.csv_dir, exist_ok=True)
            write_csv(result, os.path.join(args.csv_dir,
                                           f"{experiment_id}.csv"))
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n\n".join(reports) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
