"""Figure 11: ring-oscillator period vs line inductance.

Sweeps l for the five-stage ring oscillator and measures the oscillation
period.  Paper's claims: at 100 nm the period collapses sharply around
l ~ 2 nH/mm (onset of false switching); at 250 nm no collapse occurs
anywhere in 0 <= l < 5 nH/mm.  The measured onset (largest l before the
period drops below half its low-l value) is reported in the notes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import units
from ..errors import ParameterError, SimulationError
from .base import ExperimentResult, experiment
from .ring import DEFAULT_RING_SEGMENTS, run_ring

#: Default sweep (nH/mm) for the 100 nm node — dense around the onset.
DEFAULT_L_VALUES_100NM = (0.5, 1.0, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.8, 3.2)

#: Default sweep (nH/mm) for the 250 nm immunity check.
DEFAULT_L_VALUES_250NM = (0.5, 1.5, 2.5, 3.5, 4.5)


@experiment("fig11", "Ring-oscillator period vs line inductance")
def run(node_name: str = "100nm",
        l_values: Sequence[float] | None = None,
        segments: int = DEFAULT_RING_SEGMENTS,
        style: str = "mosfet", period_budget: float = 14.0,
        steps_per_period: int = 700) -> ExperimentResult:
    """Sweep the ring-oscillator period over line inductance for one node."""
    if l_values is None:
        l_values = (DEFAULT_L_VALUES_100NM if node_name == "100nm"
                    else DEFAULT_L_VALUES_250NM)
    headers = ["l (nH/mm)", "period (ps)", "period / period(l_min)"]
    periods: list[float] = []
    rows = []
    for l_nh in l_values:
        run_data = run_ring(node_name, float(l_nh), segments=segments,
                            style=style, period_budget=period_budget,
                            steps_per_period=steps_per_period)
        try:
            period = run_data.period()
        except (ParameterError, SimulationError):
            period = float("nan")
        periods.append(period)
    reference = next((p for p in periods if np.isfinite(p)), float("nan"))
    for l_nh, period in zip(l_values, periods):
        rows.append([float(l_nh), units.to_ps(period), period / reference])
    onset = _collapse_onset(list(l_values), periods)
    notes = [
        "paper (100nm): sharp period collapse around l ~ 2 nH/mm — onset of "
        "false switching",
        "paper (250nm): no collapse for any l < 5 nH/mm",
        (f"measured collapse onset: l ~ {onset:.2g} nH/mm" if onset is not None
         else "measured: no period collapse in the swept range"),
    ]
    return ExperimentResult(
        experiment_id="fig11",
        title=f"Ring-oscillator period vs l, {node_name} (paper Fig. 11)",
        headers=headers, rows=rows, notes=notes,
        data={"node": node_name, "l_values": list(l_values),
              "periods": periods, "collapse_onset": onset})


def _collapse_onset(l_values: list[float], periods: list[float],
                    threshold: float = 0.6) -> float | None:
    """First l whose period drops below ``threshold`` x the running maximum.

    Below the failure onset the period *grows* gently with l (inductive
    slow-down), so the collapse is detected against the largest period seen
    so far, not against the first point.  A non-oscillating run (NaN) after
    a finite one also counts as a collapse.
    """
    max_so_far: float | None = None
    for l_nh, period in zip(l_values, periods):
        if not np.isfinite(period):
            if max_so_far is not None:
                return l_nh
            continue
        if max_so_far is not None and period < threshold * max_so_far:
            return l_nh
        max_so_far = period if max_so_far is None else max(max_so_far, period)
    return None
