"""Extension experiments beyond the paper's numbered artifacts.

Each follows up a remark the paper makes but does not quantify:

* ``ext_crosstalk`` — "the traditional RC model ... can result in
  substantial errors in predicting both delay and crosstalk" (Sec. 1.1,
  after Deutsch et al. [6]): coupled-pair noise with and without line
  inductance.
* ``ext_miller`` — "effective line capacitance can vary by as much as 4x"
  (Sec. 3): the repeater optimum across the Miller switching range.
* ``ext_skin`` — the frequency dependence of r flagged via [11, 20]: skin
  effect on Table 1 geometries.
* ``ext_power`` — "glitches increase the dynamic power dissipation"
  (Sec. 1.1): the power cost of delay-optimal repeater insertion and the
  delay cost of capping it.
* ``ext_sensitivity`` — Sec. 3.2 generalized: the full elasticity table
  of the stage delay at the RLC optimum.
"""

from __future__ import annotations

from .. import units
from ..analysis.crosstalk import measure_crosstalk
from ..analysis.power import optimize_with_power_cap, power_report
from ..circuits.coupled_line import build_crosstalk_bench
from ..core.optimize import optimize_repeater
from ..core.elmore import rc_optimum
from ..core.sensitivity import delay_sensitivities
from ..core.params import Stage
from ..extraction.capacitance import sakurai_coupling, total_capacitance
from ..extraction.geometry import COPPER_RESISTIVITY, wire_from_tech
from ..extraction.skin import (resistance_ratio_table, skin_depth,
                               skin_onset_frequency)
from ..tech.node import get_node
from .base import ExperimentResult, experiment


@experiment("ext_crosstalk",
            "Coupled noise: RC vs RLC victim response (extension)")
def run_crosstalk(node_name: str = "100nm", segments: int = 10,
                  l_values=(0.0, 0.5, 1.0, 1.5, 2.0),
                  inductive_coupling: float = 0.3) -> ExperimentResult:
    """Victim far-end noise vs line inductance on a coupled pair.

    The geometry-derived lateral coupling capacitance of Table 1's pitch
    is used; the l = 0 row is the RC-only prediction the paper says
    underestimates crosstalk.
    """
    node = get_node(node_name)
    rc_opt = rc_optimum(node.line, node.driver)
    wire = wire_from_tech(node.geometry)
    coupling_c = sakurai_coupling(wire, node.epsilon_r)
    drv = node.driver.sized(rc_opt.k_opt)

    headers = ["l (nH/mm)", "peak noise (V)", "trough noise (V)",
               "noise / VDD"]
    rows = []
    reports = {}
    for l_nh in l_values:
        line = node.line_with_inductance(float(l_nh) * units.NH_PER_MM)
        km = inductive_coupling if l_nh > 0.0 else 0.0
        bench = build_crosstalk_bench(
            line, length=rc_opt.h_opt, segments=segments,
            r_driver=drv.r_series, c_load=drv.c_load,
            coupling_capacitance_per_length=coupling_c,
            inductive_coupling=km, v_step=node.vdd)
        report = measure_crosstalk(bench, t_end=1.5e-9, dt=2e-12)
        rows.append([float(l_nh), report.peak_noise, report.trough_noise,
                     report.worst_noise / node.vdd])
        reports[float(l_nh)] = report
    rc_noise = rows[0][1]
    worst = max(row[1] for row in rows)
    notes = [
        "paper Sec. 1.1 (after [6]): RC-only models substantially "
        "underestimate crosstalk on global wires",
        f"measured: RC-only peak noise {rc_noise:.3f} V vs worst RLC "
        f"{worst:.3f} V ({worst / rc_noise:.1f}x underestimate)",
        f"coupling capacitance from Table 1 geometry: "
        f"{units.to_pf_per_m(coupling_c):.1f} pF/m per neighbour",
    ]
    return ExperimentResult(
        experiment_id="ext_crosstalk",
        title="Victim noise vs line inductance (extension)",
        headers=headers, rows=rows, notes=notes,
        data={"reports": reports, "coupling_c": coupling_c})


@experiment("ext_miller",
            "Repeater optimum across the Miller capacitance range (extension)")
def run_miller(node_name: str = "100nm", l_nh: float = 1.0,
               miller_factors=(0.0, 0.5, 1.0, 1.5, 2.0)) -> ExperimentResult:
    """Optimal (h, k) as the effective c swings with neighbour activity.

    The paper fixes c and varies l "for simplicity"; here the extraction
    model supplies c(miller) for Table 1's geometry and the exact
    optimizer re-runs at each point.
    """
    node = get_node(node_name)
    wire = wire_from_tech(node.geometry)
    headers = ["miller factor", "c (pF/m)", "h_opt (mm)", "k_opt",
               "delay/len (ps/mm)"]
    rows = []
    solver_log = []
    for miller in miller_factors:
        breakdown = total_capacitance(wire, node.epsilon_r,
                                      miller_factor=float(miller))
        line = node.line.with_capacitance(breakdown.total) \
            .with_inductance(l_nh * units.NH_PER_MM)
        optimum = optimize_repeater(line, node.driver)
        rows.append([float(miller), units.to_pf_per_m(breakdown.total),
                     units.to_mm(optimum.h_opt), optimum.k_opt,
                     optimum.delay_per_length * 1e9])
        entry = {"miller": float(miller), "method": optimum.method.value}
        if optimum.trace is not None:
            entry.update(optimum.trace.summary())
        solver_log.append(entry)
    spread = rows[-1][1] / rows[0][1]
    notes = [
        f"effective c swings {spread:.1f}x across the Miller range for "
        "Table 1's pitch (paper Sec. 3: 'as much as 4x' for aspect ratios "
        "> 1 and tighter pitches)",
        "h_opt tracks 1/sqrt(c), k_opt sqrt(c): quiet-neighbour sizing is "
        "mis-sized for worst-case switching",
    ]
    return ExperimentResult(
        experiment_id="ext_miller",
        title="Repeater optimum vs Miller capacitance factor (extension)",
        headers=headers, rows=rows, notes=notes,
        data={"optimizer": solver_log})


@experiment("ext_skin", "Skin-effect resistance of Table 1 wires (extension)")
def run_skin(node_name: str = "250nm",
             frequencies=(1e8, 1e9, 3e9, 1e10, 3e10, 1e11)
             ) -> ExperimentResult:
    """r_ac/r_dc across frequency for the top-metal geometry."""
    node = get_node(node_name)
    wire = wire_from_tech(node.geometry)
    ratios = resistance_ratio_table(wire, COPPER_RESISTIVITY, frequencies)
    onset = skin_onset_frequency(wire, COPPER_RESISTIVITY)
    headers = ["frequency (GHz)", "skin depth (um)", "r_ac / r_dc"]
    rows = [[f / 1e9, skin_depth(COPPER_RESISTIVITY, f) * 1e6, ratio]
            for f, ratio in ratios.items()]
    notes = [
        f"skin onset (delta = min(w,t)/2): {onset / 1e9:.1f} GHz — above "
        "2001-era clock fundamentals, inside the edge-rate harmonics",
        "supports the paper's constant-r treatment while quantifying its "
        "frequency limit",
    ]
    return ExperimentResult(
        experiment_id="ext_skin",
        title=f"Skin effect on {node.name} top metal (extension)",
        headers=headers, rows=rows, notes=notes,
        data={"onset": onset})


@experiment("ext_power",
            "Power cost of repeater insertion and power-capped optima "
            "(extension)")
def run_power(node_name: str = "100nm", l_nh: float = 1.0,
              frequency: float = 2e9, activity: float = 0.15,
              budget_fractions=(1.0, 0.9, 0.8, 0.7)) -> ExperimentResult:
    """Delay penalty of capping the repeater power budget."""
    node = get_node(node_name)
    line = node.line_with_inductance(l_nh * units.NH_PER_MM)
    unconstrained = optimize_repeater(line, node.driver)
    full_power = power_report(line, node.driver, unconstrained.h_opt,
                              unconstrained.k_opt, vdd=node.vdd,
                              frequency=frequency, activity=activity)
    headers = ["power budget (x optimal)", "P (mW/mm)", "h_opt (mm)",
               "k_opt", "delay penalty"]
    rows = []
    for fraction in budget_fractions:
        budget = fraction * full_power.dynamic_power_per_length
        result = optimize_with_power_cap(
            line, node.driver, vdd=node.vdd, frequency=frequency,
            activity=activity, power_budget_per_length=budget)
        rows.append([float(fraction), result.power_per_length * 1e0,
                     units.to_mm(result.h_opt), result.k_opt,
                     result.delay_penalty])
    notes = [
        f"delay-optimal insertion spends "
        f"{full_power.repeater_fraction * 100:.0f}% of its switching "
        "capacitance on repeaters",
        "capping power lengthens segments and shrinks repeaters; the "
        "delay penalty grows steeply below ~70% of the optimal power",
    ]
    solver = {"method": unconstrained.method.value}
    if unconstrained.trace is not None:
        solver.update(unconstrained.trace.summary())
    return ExperimentResult(
        experiment_id="ext_power",
        title="Power-delay trade-off of repeater insertion (extension)",
        headers=headers, rows=rows, notes=notes,
        data={"full_power": full_power, "optimizer": solver})


@experiment("ext_sensitivity",
            "Delay elasticities at the RLC optimum (extension)")
def run_sensitivity(node_name: str = "100nm",
                    l_nh: float = 1.0) -> ExperimentResult:
    """Relative delay sensitivities (p/tau) dtau/dp at the optimum."""
    node = get_node(node_name)
    line = node.line_with_inductance(l_nh * units.NH_PER_MM)
    optimum = optimize_repeater(line, node.driver)
    stage = Stage(line=line, driver=node.driver,
                  h=optimum.h_opt, k=optimum.k_opt)
    sens = delay_sensitivities(stage)
    headers = ["parameter", "relative sensitivity (%/%)"]
    order = sorted(sens.relative, key=lambda p: -abs(sens.relative[p]))
    rows = [[p, sens.relative[p]] for p in order]
    notes = [
        "first-order conditions at the optimum: the k elasticity is zero "
        "and the h elasticity is exactly 1 (dtau/dh = tau/h) — the other "
        "rows isolate the *uncontrollable* parameters",
        f"dominant uncontrollable parameter: "
        f"{next(p for p in order if p not in ('h', 'k'))}",
        "the l elasticity quantifies Sec. 3.2's variation argument at one "
        "operating point",
    ]
    solver = {"method": optimum.method.value}
    if optimum.trace is not None:
        solver.update(optimum.trace.summary())
    return ExperimentResult(
        experiment_id="ext_sensitivity",
        title=f"Delay elasticities at the {node.name} RLC optimum "
              "(extension)",
        headers=headers, rows=rows, notes=notes,
        data={"sensitivities": sens, "optimizer": solver})
