"""Figure 6: k_optRLC / k_optRC as a function of line inductance.

The optimal repeater shrinks with l and asymptotes toward the size whose
output impedance matches the line's lossless characteristic impedance
sqrt(l/c) — the matched-termination limit of transmission-line theory.
The table includes that matching size for comparison.
"""

from __future__ import annotations

import math

from .. import units
from ..tech.node import get_node
from .base import ExperimentResult, experiment
from .sweeps import DEFAULT_POINTS, FIGURE_NODES, node_sweep


@experiment("fig6", "Optimal repeater size ratio k_optRLC/k_optRC vs l")
def run(points: int = DEFAULT_POINTS, f: float = 0.5) -> ExperimentResult:
    """Tabulate k ratios and the impedance-matched size for both nodes."""
    headers = ["l (nH/mm)"]
    sweeps = []
    for name in FIGURE_NODES:
        sweeps.append(node_sweep(name, f, points))
        headers.append(f"k ratio {name}")
        headers.append(f"k matched/k_RC {name}")
    l_nh = units.to_nh_per_mm(sweeps[0].l_values)
    rows = []
    for i in range(len(l_nh)):
        row = [float(l_nh[i])]
        for name, sweep in zip(FIGURE_NODES, sweeps):
            node = get_node(name)
            row.append(float(sweep.k_ratio[i]))
            l = float(sweep.l_values[i])
            if l > 0.0:
                z0 = math.sqrt(l / node.line.c)
                k_matched = node.driver.r_s / z0
                row.append(k_matched / sweep.rc_reference.k_opt)
            else:
                row.append(float("nan"))
        rows.append(row)
    notes = [
        "paper: k ratio decreases with l toward the impedance-matched size",
        "k matched = r_s / sqrt(l/c): driver output impedance equal to Z0",
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="k_optRLC / k_optRC vs line inductance (paper Fig. 6)",
        headers=headers, rows=rows, notes=notes,
        data={"sweeps": {n: s for n, s in zip(FIGURE_NODES, sweeps)}})
