"""Figure 7: optimized RLC delay per unit length, normalized, vs l.

Plots (tau/h)_optRLC(l) / (tau/h)_optRLC(l=0) for 250 nm, 100 nm and the
control case "100 nm with the 250 nm dielectric" (identical c per unit
length).  Paper's claims: the ratio reaches ~2x at 250 nm and ~3.5x at
100 nm across the practical range, and the control case still rises much
faster than 250 nm — proving the increased susceptibility comes from
driver scaling (smaller r_s c_0 budget), not from the wire.
"""

from __future__ import annotations

from .. import units
from .base import ExperimentResult, experiment
from .sweeps import CONTROL_NODE, DEFAULT_POINTS, FIGURE_NODES, node_sweep


@experiment("fig7", "Normalized optimal delay per unit length vs l")
def run(points: int = DEFAULT_POINTS, f: float = 0.5,
        include_control: bool = True) -> ExperimentResult:
    """Tabulate normalized delay-per-length ratios, incl. the control node."""
    node_names = list(FIGURE_NODES)
    if include_control:
        node_names.append(CONTROL_NODE)
    headers = ["l (nH/mm)"] + [f"delay ratio {name}" for name in node_names]
    sweeps = [node_sweep(name, f, points) for name in node_names]
    l_nh = units.to_nh_per_mm(sweeps[0].l_values)
    rows = [[float(l_nh[i])] + [float(s.delay_ratio_vs_rc[i]) for s in sweeps]
            for i in range(len(l_nh))]
    final = {name: float(s.delay_ratio_vs_rc[-1])
             for name, s in zip(node_names, sweeps)}
    notes = [
        "paper: ratio reaches ~2x (250nm) and ~3.5x (100nm) at the top of "
        "the range",
        f"measured at l = {float(l_nh[-1]):.2g} nH/mm: "
        + ", ".join(f"{k} -> {v:.2f}x" for k, v in final.items()),
        "control (100nm devices, 250nm dielectric): still rises much faster "
        "than 250nm, isolating driver scaling as the cause",
    ]
    return ExperimentResult(
        experiment_id="fig7",
        title="(tau/h)_RLC normalized to l=0 vs inductance (paper Fig. 7)",
        headers=headers, rows=rows, notes=notes,
        data={"sweeps": {n: s for n, s in zip(node_names, sweeps)},
              "final_ratios": final})
