"""Experiment framework: results container, registry and formatting.

Every table/figure of the paper is an *experiment*: a named callable
returning an :class:`ExperimentResult` whose rows reproduce the series the
paper plots.  The registry powers the ``repro-experiments`` CLI and the
benchmark suite; EXPERIMENTS.md records paper-vs-measured for each entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """Reproduction output for one paper artifact.

    Attributes
    ----------
    experiment_id:
        Short id matching the paper artifact ('table1', 'fig7', ...).
    title:
        What the artifact shows.
    headers:
        Column names of the tabulated series.
    rows:
        Data rows (one per sweep point / configuration).
    notes:
        Free-form commentary: paper's qualitative claims and whether the
        measured series matches them.
    data:
        Raw arrays for programmatic consumers (benchmarks, plots).
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]]
    notes: List[str] = field(default_factory=list)
    data: Dict[str, Any] = field(default_factory=dict)

    def format_table(self, *, float_format: str = "{:.4g}") -> str:
        """Render the rows as a fixed-width text table."""
        def fmt(cell: Any) -> str:
            if isinstance(cell, float):
                return float_format.format(cell)
            return str(cell)

        str_rows = [[fmt(c) for c in row] for row in self.rows]
        widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
                  else len(h) for i, h in enumerate(self.headers)]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in str_rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def format_report(self) -> str:
        """Full report: header, table and notes."""
        parts = [f"== {self.experiment_id}: {self.title} ==",
                 self.format_table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form for the batch engine's result cache.

        Numpy arrays/scalars in ``rows`` and ``data`` become plain lists
        and floats; ``data`` entries holding rich library objects (e.g. a
        whole :class:`~repro.core.sweep.InductanceSweep`) are omitted and
        listed under ``data_omitted``.  :meth:`from_payload` therefore
        returns an equivalent *report* (identical tables and notes), not
        an identical object.
        """
        from ..engine.jobs import jsonify

        data: Dict[str, Any] = {}
        omitted = []
        for key, value in self.data.items():
            try:
                data[key] = jsonify(value)
            except TypeError:
                omitted.append(key)
        return {"experiment_id": self.experiment_id, "title": self.title,
                "headers": list(self.headers),
                "rows": jsonify(self.rows),
                "notes": list(self.notes),
                "data": data, "data_omitted": omitted}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_payload` output."""
        return cls(experiment_id=payload["experiment_id"],
                   title=payload["title"],
                   headers=list(payload["headers"]),
                   rows=[list(row) for row in payload["rows"]],
                   notes=list(payload.get("notes", [])),
                   data=dict(payload.get("data", {})))


#: Global registry: experiment id -> runner callable.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}

#: One-line description per registered experiment.
DESCRIPTIONS: Dict[str, str] = {}


def experiment(experiment_id: str, description: str):
    """Decorator registering an experiment runner under ``experiment_id``."""

    def register(func: Callable[..., ExperimentResult]):
        if experiment_id in REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        REGISTRY[experiment_id] = func
        DESCRIPTIONS[experiment_id] = description
        return func

    return register


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by id."""
    try:
        runner = REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}") from None
    return runner(**kwargs)


def all_experiment_ids() -> List[str]:
    """All registered ids in registration order."""
    return list(REGISTRY)
