"""Figure 12: peak and rms interconnect current densities vs inductance.

For the 100 nm five-stage ring oscillator, measure the current through the
first segment of a stage's line over the steady oscillation window, reduce
to peak and rms current densities over the Table 1 cross section, and
screen them against representative electromigration / Joule-heating
limits.  Paper's claim: neither density changes appreciably with l, so
wire reliability is not degraded by inductance variations.
"""

from __future__ import annotations

from typing import Sequence

from ..analysis.currents import current_density_report
from ..analysis.reliability import assess_current_density
from ..tech.node import get_node
from .base import ExperimentResult, experiment
from .ring import DEFAULT_RING_SEGMENTS, run_ring

#: Default inductance sweep (nH/mm) — below the false-switching onset the
#: paper's Fig. 12 x-axis spans, plus points above it.
DEFAULT_L_VALUES = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)


@experiment("fig12", "Interconnect current densities vs line inductance")
def run(node_name: str = "100nm",
        l_values: Sequence[float] = DEFAULT_L_VALUES,
        segments: int = DEFAULT_RING_SEGMENTS,
        style: str = "mosfet", period_budget: float = 14.0,
        steps_per_period: int = 700) -> ExperimentResult:
    """Sweep peak/rms current densities of the ring's interconnect over l."""
    node = get_node(node_name)
    area = node.geometry.cross_section_area
    headers = ["l (nH/mm)", "peak J (MA/cm^2)", "rms J (MA/cm^2)",
               "reliability ok"]
    rows = []
    reports = []
    for l_nh in l_values:
        run_data = run_ring(node_name, float(l_nh), segments=segments,
                            style=style, period_budget=period_budget,
                            steps_per_period=steps_per_period)
        ladder = run_data.oscillator.ladders[run_data.probe_stage]
        report = current_density_report(run_data.result, ladder, area)
        verdict = assess_current_density(report)
        rows.append([float(l_nh),
                     report.peak_density_a_per_cm2 / 1e6,
                     report.rms_density_a_per_cm2 / 1e6,
                     verdict.ok])
        reports.append(report)
    peaks = [r.peak_density for r in reports]
    spread = max(peaks) / min(peaks) if min(peaks) > 0 else float("inf")
    notes = [
        "paper: peak and rms densities do not change appreciably with l "
        "-> no reliability degradation from inductance variation",
        f"measured peak-density spread across the sweep: {spread:.2f}x",
    ]
    return ExperimentResult(
        experiment_id="fig12",
        title=f"Interconnect current densities vs l, {node_name} "
              "(paper Fig. 12)",
        headers=headers, rows=rows, notes=notes,
        data={"node": node_name, "l_values": list(l_values),
              "reports": reports})
