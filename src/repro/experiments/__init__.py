"""Paper-artifact experiments: one runner per table/figure.

Importing this package registers every experiment:

========  ===========================================================
id        paper artifact
========  ===========================================================
table1    Table 1 — technology parameters and RC optima
fig2      Fig. 2 — second-order step responses
fig4      Fig. 4 — l_crit vs l at the RLC optimum
fig5      Fig. 5 — h_optRLC / h_optRC vs l
fig6      Fig. 6 — k_optRLC / k_optRC vs l
fig7      Fig. 7 — normalized optimal delay per unit length vs l
fig8      Fig. 8 — penalty of RC sizing vs the RLC optimum
fig9_10   Figs. 9-10 — ring waveforms below/above the failure onset
fig11     Fig. 11 — ring-oscillator period vs l
fig12     Fig. 12 — interconnect current densities vs l
========  ===========================================================

plus extension experiments following up the paper's unquantified remarks:
``ext_crosstalk`` (RC vs RLC coupled noise), ``ext_bus`` (capacitive vs
inductive Miller inversion), ``ext_miller`` (optimum vs neighbour
activity), ``ext_skin`` (r(f)), ``ext_power`` (power-capped insertion),
``ext_sensitivity`` (delay elasticities), ``ext_robust`` (minimax sizing).

Use :func:`repro.experiments.run_experiment` or the ``repro-experiments``
CLI (:mod:`repro.experiments.runner`).
"""

from . import (ext_bus, ext_robust, extensions, fig2, fig4, fig5, fig6, fig7, fig8,
               fig9_10, fig11, fig12, table1)
from .base import (DESCRIPTIONS, REGISTRY, ExperimentResult,
                   all_experiment_ids, experiment, run_experiment)
from .export import result_to_csv, write_csv

__all__ = [
    "DESCRIPTIONS", "REGISTRY", "ExperimentResult", "all_experiment_ids",
    "experiment", "run_experiment", "result_to_csv", "write_csv",
    "table1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9_10",
    "fig11", "fig12", "extensions", "ext_bus", "ext_robust",
]
