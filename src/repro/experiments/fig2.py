"""Figure 2: step response of a second-order (RLC) system.

Regenerates the paper's illustrative overdamped / critically damped /
underdamped step responses from the canonical (zeta, omega_n)
parameterization, and tabulates the signature metrics (overshoot,
undershoot, 50% delay) of each regime.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import response_v, threshold_delay_v
from ..core.response import canonical_response
from .base import ExperimentResult, experiment

#: (label, damping ratio) triples of the illustrated regimes.
REGIMES = (("overdamped", 2.0),
           ("critically damped", 1.0),
           ("underdamped", 0.3))


@experiment("fig2", "Step responses of the three damping regimes")
def run(omega_n: float = 1.0e10, samples: int = 400) -> ExperimentResult:
    """Tabulate the three canonical regimes at natural frequency omega_n."""
    headers = ["regime", "zeta", "overshoot", "undershoot", "50% delay (1/wn)",
               "monotonic"]
    rows = []
    data: dict = {"omega_n": omega_n}
    t_end = 12.0 / omega_n
    t = np.linspace(0.0, t_end, samples)
    # All three regimes solved/sampled as one batch through the kernels.
    responses = [canonical_response(zeta, omega_n) for _, zeta in REGIMES]
    taus = threshold_delay_v(responses, 0.5).tau
    sampled = response_v(responses, t)
    for (label, zeta), response, tau, values in zip(REGIMES, responses,
                                                    taus, sampled):
        tau = float(tau)
        rows.append([label, zeta, response.overshoot(),
                     response.undershoot(), tau * omega_n,
                     bool(np.all(np.diff(values) >= -1e-12))])
        data[label] = {"time": t, "response": values, "tau_50": tau}
    notes = [
        "only the underdamped response overshoots/undershoots (paper Fig. 2)",
        "over- and critically damped responses are monotonic",
    ]
    return ExperimentResult(experiment_id="fig2",
                            title="Second-order step responses (paper Fig. 2)",
                            headers=headers, rows=rows, notes=notes,
                            data=data)
