"""Figure 5: h_optRLC / h_optRC as a function of line inductance.

Paper's claims reproduced here: the ratio is slightly below one at l = 0
(the second-order transfer function shortens the optimum relative to the
Elmore closed form — invisible to curve-fitted approaches), and it grows
with l as the line approaches LC behaviour and delay becomes linear in
length.
"""

from __future__ import annotations

from .. import units
from .base import ExperimentResult, experiment
from .sweeps import DEFAULT_POINTS, FIGURE_NODES, node_sweep


@experiment("fig5", "Optimal segment length ratio h_optRLC/h_optRC vs l")
def run(points: int = DEFAULT_POINTS, f: float = 0.5) -> ExperimentResult:
    """Tabulate h ratios for both nodes."""
    headers = ["l (nH/mm)"]
    sweeps = []
    for name in FIGURE_NODES:
        sweeps.append(node_sweep(name, f, points))
        headers.append(f"h ratio {name}")
    l_nh = units.to_nh_per_mm(sweeps[0].l_values)
    rows = [[float(l_nh[i])] + [float(s.h_ratio[i]) for s in sweeps]
            for i in range(len(l_nh))]
    notes = [
        "paper: ratio < 1 at l = 0 (Pade model vs Elmore), rising with l",
        "paper: the 100nm node's ratio rises faster (greater inductance "
        "susceptibility)",
    ]
    return ExperimentResult(
        experiment_id="fig5",
        title="h_optRLC / h_optRC vs line inductance (paper Fig. 5)",
        headers=headers, rows=rows, notes=notes,
        data={"sweeps": {n: s for n, s in zip(FIGURE_NODES, sweeps)}})
