"""Extension experiment: switching-pattern (Miller) effects on a bus.

A three-line bus at Table 1 geometry, victim in the centre switching up,
neighbours driven quiet / in-phase / anti-phase.  Two regimes:

* **capacitive coupling only** (mutual k = 0): the classic Miller
  ordering — in-phase neighbours hide the lateral capacitance (fast),
  anti-phase neighbours double it (slow);
* **with inductive coupling**: the ordering *inverts*.  Anti-phase
  neighbours carry the victim's return current close by (small effective
  loop inductance, fast); in-phase switching pushes the return far away
  (large effective inductance, slow) — the dynamic, measurable form of
  the paper's Sec. 1.1 argument that the effective l depends on the
  switching pattern through the return-path location.
"""

from __future__ import annotations

from .. import units
from ..analysis.waveform import Waveform
from ..circuits.bus import build_bus_bench, initial_bus_voltages
from ..circuits.transient import simulate
from ..core.elmore import rc_optimum
from ..extraction.capacitance import sakurai_coupling
from ..extraction.geometry import wire_from_tech
from ..tech.node import get_node
from .base import ExperimentResult, experiment

#: Neighbour patterns studied (victim is always the middle line, 'up').
NEIGHBOUR_CASES = (("quiet", ("low", "up", "low")),
                   ("in-phase", ("up", "up", "up")),
                   ("anti-phase", ("down", "up", "down")))


@experiment("ext_bus",
            "Bus switching patterns: capacitive vs inductive Miller effect "
            "(extension)")
def run(node_name: str = "100nm", l_nh: float = 1.0,
        inductive_couplings=(0.0, 0.3, 0.5), segments: int = 10
        ) -> ExperimentResult:
    """Victim 50% delay per neighbour pattern and coupling regime."""
    node = get_node(node_name)
    rc_opt = rc_optimum(node.line, node.driver)
    wire = wire_from_tech(node.geometry)
    coupling_c = sakurai_coupling(wire, node.epsilon_r)
    drv = node.driver.sized(rc_opt.k_opt)
    line = node.line_with_inductance(l_nh * units.NH_PER_MM)

    headers = ["mutual k"] + [f"{label} (ps)" for label, _ in NEIGHBOUR_CASES]
    rows = []
    delays: dict = {}
    for km in inductive_couplings:
        row = [float(km)]
        for label, patterns in NEIGHBOUR_CASES:
            bench = build_bus_bench(
                line, n_lines=3, length=rc_opt.h_opt, segments=segments,
                r_driver=drv.r_series, c_load=drv.c_load,
                coupling_capacitance_per_length=coupling_c,
                patterns=patterns, vdd=node.vdd,
                inductive_coupling=float(km))
            result = simulate(bench.circuit, 2e-9, 2e-12,
                              initial_voltages=initial_bus_voltages(bench))
            waveform = Waveform(result.time,
                                result.voltage(bench.far_node(1)))
            tau = waveform.first_crossing(0.5 * node.vdd)
            row.append(units.to_ps(tau))
            delays[(float(km), label)] = tau
        rows.append(row)
    notes = [
        "capacitive-only (k = 0): classic Miller — in-phase fastest, "
        "anti-phase slowest",
        "with inductive coupling the ordering inverts: in-phase switching "
        "pushes the return current away (larger effective l, slower); "
        "anti-phase neighbours are nearby returns (smaller l, faster)",
        "this is the dynamic counterpart of the paper's claim that the "
        "effective inductance depends on neighbours' switching activity",
    ]
    return ExperimentResult(
        experiment_id="ext_bus",
        title="Victim delay vs neighbour switching pattern (extension)",
        headers=headers, rows=rows, notes=notes,
        data={"delays": delays, "coupling_c": coupling_c})
