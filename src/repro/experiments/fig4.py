"""Figure 4: critical inductance l_crit vs line inductance l.

At the RLC-optimal (h, k) for each l, evaluate Eq. 4's l_crit and compare
with l itself.  The paper's observations: l and l_crit are of the same
order of magnitude over the practical range (so the Kahng-Muddu
asymptotic delay forms do not apply), and the 100 nm node's l_crit is
smaller than the 250 nm node's (so scaled designs go underdamped sooner).
"""

from __future__ import annotations

from .. import units
from .base import ExperimentResult, experiment
from .sweeps import DEFAULT_POINTS, FIGURE_NODES, node_sweep


@experiment("fig4", "Critical inductance at the RLC optimum vs l")
def run(points: int = DEFAULT_POINTS, f: float = 0.5) -> ExperimentResult:
    """Tabulate l_crit(l) for both nodes."""
    headers = ["l (nH/mm)"]
    columns = []
    for name in FIGURE_NODES:
        sweep = node_sweep(name, f, points)
        headers.append(f"l_crit {name} (nH/mm)")
        columns.append(sweep)
    l_nh = units.to_nh_per_mm(columns[0].l_values)
    rows = []
    for i in range(len(l_nh)):
        row = [float(l_nh[i])]
        row.extend(float(units.to_nh_per_mm(s.l_crit[i])) for s in columns)
        rows.append(row)
    sweeps = {name: sweep for name, sweep in zip(FIGURE_NODES, columns)}
    notes = [
        "paper: l and l_crit are of the same order over practical l",
        "paper: l_crit(100nm) < l_crit(250nm) at every l (earlier onset of "
        "underdamping with scaling)",
    ]
    return ExperimentResult(experiment_id="fig4",
                            title="l_crit at the RLC optimum (paper Fig. 4)",
                            headers=headers, rows=rows, notes=notes,
                            data={"sweeps": sweeps})
