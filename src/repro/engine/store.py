"""One result plane: tiered pluggable result stores + single-flight dedup.

Every layer that replays results — the engine's
:class:`~repro.engine.executor.BatchExecutor`, the serve layer's
``ReproService``, ``repro-verify`` and ``repro-experiments`` — funnels
through one :class:`ResultStore` seam:

* :class:`DiskStore` — the content-addressed on-disk store (formerly
  ``repro.engine.cache.ResultCache``): records sharded by the first two
  key hex digits, written atomically, with transparent read-through of
  the legacy *flat* layout (``root/<key>.json``) that migrates each
  legacy record into its shard on first hit;
* :class:`MemoryStore` — a byte-budgeted LRU of decoded payloads; hits
  never touch the filesystem;
* :class:`TieredStore` — memory over disk: write-through puts,
  promote-on-hit, memory hits never open a file.

Stores are selected by name through :func:`make_store`, mirroring
:func:`repro.engine.backends.make_backend`, so every CLI shares one
``--store {disk,memory,tiered}`` vocabulary.

On top of the store sits :class:`SingleFlight`, a coalescer keyed on the
spec hash: concurrent identical evaluations — duplicate specs in one
batch, racing executors sharing a flight table — collapse to one
evaluation whose outcome fans out to every waiter.  A leader that dies
before publishing resolves its flight with the failure, so followers
are always *answered or rejected*, never hung (the invariant the fault
harness drives through ``store.singleflight.leader_crash``).

The cache key of a job is ``SHA-256(canonical-JSON(spec) + "\\0" + salt)``
where the salt carries the code version: results computed by one version
of the numerical code are never replayed against another.  Only
*successful* results are stored — a failed job is always retried by the
next batch that contains it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__
from ..faults import hooks as _faults
from .jobs import canonical_json, job_to_dict

#: Bump when the job canonical form or the result payloads change shape.
ENGINE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Selectable store names, in the order CLIs advertise them.
STORE_NAMES = ("disk", "memory", "tiered")

#: Default byte budget for the memory tier (64 MiB).
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def code_version_salt() -> str:
    """Salt tying cache keys to the library version and engine schema."""
    return f"repro-{__version__}+engine-schema-{ENGINE_SCHEMA_VERSION}"


def flight_key(job: Any) -> str:
    """Version-independent spec hash used to coalesce identical work.

    Unlike the store key this carries no version salt: two in-process
    evaluations of the same spec are the same work regardless of which
    store (if any) the results land in.
    """
    text = canonical_json(job_to_dict(job))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Store occupancy plus this session's hit/miss accounting."""

    entries: int = 0
    total_bytes: int = 0
    hits: int = 0
    misses: int = 0
    salt: str = field(default_factory=code_version_salt)
    medium: str = "on disk"

    @property
    def hit_rate(self) -> float:
        """Session hit rate in [0, 1]; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def format_summary(self) -> str:
        return (f"cache: {self.entries} entries, {self.total_bytes} bytes "
                f"{self.medium}; session {self.hits} hits / {self.misses} "
                f"misses ({100.0 * self.hit_rate:.1f}% hit rate); salt "
                f"{self.salt!r}")


# ----------------------------------------------------------------------
# The store protocol.
# ----------------------------------------------------------------------
class ResultStore:
    """Base result store: content-addressed keys, get/put/stats/close.

    Subclasses implement :meth:`get`, :meth:`put`, :meth:`stats` and
    :meth:`clear`; :meth:`close` is idempotent and a closed store may
    still be read (closing releases resources, it does not invalidate
    records).  ``hits``/``misses`` are per-instance session counters.
    """

    name = "store"

    #: Bound on the per-store key memo (entries are ~100 bytes each).
    _KEY_CACHE_LIMIT = 4096

    def __init__(self, *, salt: Optional[str] = None) -> None:
        self.salt = salt if salt is not None else code_version_salt()
        self.hits = 0
        self.misses = 0
        self._key_cache: Dict[Any, str] = {}

    def key(self, job: Any) -> str:
        """SHA-256 hex digest of the job's canonical spec + version salt.

        Hashable jobs (the frozen spec dataclasses) are memoized: on a
        hot-repeat workload the canonical-JSON + SHA-256 work would
        otherwise dominate a memory-tier hit.
        """
        try:
            cached = self._key_cache.get(job)
        except TypeError:               # unhashable job: compute directly
            return self._compute_key(job)
        if cached is not None:
            return cached
        key = self._compute_key(job)
        if len(self._key_cache) >= self._KEY_CACHE_LIMIT:
            self._key_cache.clear()
        self._key_cache[job] = key
        return key

    def _compute_key(self, job: Any) -> str:
        text = canonical_json(job_to_dict(job)) + "\0" + self.salt
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def get(self, job: Any) -> Optional[Dict[str, Any]]:
        """Return the stored result dict for ``job``, or ``None``."""
        raise NotImplementedError

    def put(self, job: Any, result: Dict[str, Any]) -> str:
        """Store a successful result; returns the record key."""
        raise NotImplementedError

    def stats(self) -> CacheStats:
        """Occupancy and this instance's session hit/miss counts."""
        raise NotImplementedError

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (idempotent; records stay readable)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class DiskStore(ResultStore):
    """Content-addressed on-disk store mapping job specs to records.

    Records are small JSON files sharded by the first two key hex
    digits (``root/ab/<key>.json``), written atomically (temp file +
    ``os.replace``) so concurrent workers and interrupted runs cannot
    leave a torn record.  Records written by the legacy *flat* layout
    (``root/<key>.json``) are read through transparently and migrated
    into their shard on first hit, so an old cache directory keeps
    serving without a conversion pass.
    """

    name = "disk"

    def __init__(self, root: "os.PathLike[str] | str | None" = None, *,
                 salt: Optional[str] = None) -> None:
        super().__init__(salt=salt)
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------
    # Paths.
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk path of the record with the given key."""
        return self.root / key[:2] / f"{key}.json"

    def _legacy_path_for(self, key: str) -> Path:
        """Where the pre-shard flat layout kept the same record."""
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, job: Any) -> Optional[Dict[str, Any]]:
        """Return the cached result dict for ``job``, or ``None`` on miss.

        A record that exists but cannot be parsed — torn JSON from a
        killed writer or a full disk, or a record missing its ``result``
        field — counts as a miss *and is unlinked*, so a corrupt file
        never shadows the healthy record a later ``put`` writes.  A
        plain I/O error (``OSError``) is a miss *without* the unlink:
        the record content was never seen, so a transient failure — a
        file-descriptor limit, an injected ``cache.get.os_error`` —
        must not evict a healthy record.
        """
        key = self.key(job)
        path = self.path_for(key)
        legacy = False
        try:
            if _faults.ACTIVE is not None:
                # The record name is content-addressed (stable across
                # runs); the cache root is not — keep event details
                # replay-comparable.
                _faults.fire("cache.get.os_error", record=path.name)
            try:
                handle = open(path, "r", encoding="utf-8")
            except FileNotFoundError:
                path = self._legacy_path_for(key)
                legacy = True
                handle = open(path, "r", encoding="utf-8")
            with handle:
                text = handle.read()
            if _faults.ACTIVE is not None:
                text = _faults.mutate("cache.get.torn_record", text)
            record = json.loads(text)
            result = record["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError):
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        if legacy:
            self._migrate_legacy(key, path)
        self.hits += 1
        return result

    def _migrate_legacy(self, key: str, legacy_path: Path) -> None:
        """Move a flat-layout record into its shard (best-effort).

        ``os.replace`` keeps the move atomic; a migration that fails
        (read-only cache, permissions) leaves the legacy record in
        place and read-through keeps serving it.
        """
        target = self.path_for(key)
        try:
            self._make_shard(target.parent, key)
            os.replace(legacy_path, target)
        except OSError:
            pass

    def _make_shard(self, shard: Path, key: str) -> None:
        if _faults.ACTIVE is not None:
            _faults.fire("store.disk.shard_unwritable", shard=key[:2])
        shard.mkdir(parents=True, exist_ok=True)

    def put(self, job: Any, result: Dict[str, Any]) -> str:
        """Store a successful result; returns the record key."""
        key = self.key(job)
        path = self.path_for(key)
        self._make_shard(path.parent, key)
        record = {"key": key, "salt": self.salt,
                  "job": job_to_dict(job), "result": result}
        # The temp name must be unique per *writer*, not just per
        # process: concurrent threads sharing one name would interleave
        # writes into one inode and os.replace could promote a torn
        # record.  mkstemp gives every writer its own file.
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            if _faults.ACTIVE is not None \
                    and _faults.should("cache.put.stale_tmp"):
                # Simulate a concurrent writer killed between mkstemp
                # and os.replace: its orphaned temp file stays behind.
                stale_fd, _stale = tempfile.mkstemp(
                    dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp")
                os.close(stale_fd)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True, allow_nan=False)
            if _faults.ACTIVE is not None:
                _faults.fire("cache.put.os_error", record=path.name)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def _record_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                for path in sorted(shard.glob("*.json")):
                    yield path
        # Legacy flat-layout records not yet migrated into a shard.
        for path in sorted(self.root.glob("*.json")):
            yield path

    def tmp_files(self) -> list:
        """Orphaned writer temp files (``*.tmp``) across every shard.

        A healthy store has none: writers either promote their temp
        file with ``os.replace`` or unlink it on failure.  Anything
        listed here came from a writer that died between the two — the
        invariant the fault harness counts against injected
        ``cache.put.stale_tmp`` events.
        """
        if not self.root.is_dir():
            return []
        return sorted([path for shard in self.root.iterdir()
                       if shard.is_dir() for path in shard.glob("*.tmp")]
                      + list(self.root.glob("*.tmp")))

    def stats(self) -> CacheStats:
        """Disk occupancy and this instance's session hit/miss counts."""
        entries = 0
        total_bytes = 0
        for path in self._record_paths():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return CacheStats(entries=entries, total_bytes=total_bytes,
                          hits=self.hits, misses=self.misses,
                          salt=self.salt)

    def clear(self) -> int:
        """Delete every record (and orphaned writer temp files);
        returns the number of records removed."""
        removed = 0
        for path in list(self._record_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.tmp_files():
            try:
                path.unlink()
            except OSError:
                pass
        if self.root.is_dir():
            for shard in list(self.root.iterdir()):
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        return removed


class MemoryStore(ResultStore):
    """Byte-budgeted LRU of decoded result payloads.

    Hits never touch the filesystem: the payload object decoded at
    ``put`` time is returned directly (callers treat results as
    immutable throughout the stack).  An entry's cost is the byte
    length of its canonical JSON, so the budget tracks what the same
    records would occupy on disk; the store evicts least-recently-used
    entries until the total fits, and a single payload larger than the
    whole budget is simply not retained.

    Thread-safe: every operation holds one lock, so a store shared by
    backend workers and the executor keeps its budget invariant under
    concurrent puts (the ``store.memory.evict_race`` fault site models
    a racing evictor removing an extra entry — a lost entry is only a
    future miss, never a wrong answer).
    """

    name = "memory"

    def __init__(self, max_bytes: int = DEFAULT_MEMORY_BUDGET, *,
                 salt: Optional[str] = None) -> None:
        super().__init__(salt=salt)
        if max_bytes < 0:
            raise ValueError(f"memory budget must be >= 0, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[Dict[str, Any], int]]" = \
            OrderedDict()
        self._total_bytes = 0

    def get(self, job: Any) -> Optional[Dict[str, Any]]:
        key = self.key(job)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, job: Any, result: Dict[str, Any]) -> str:
        key = self.key(job)
        size = len(canonical_json(result).encode("utf-8"))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total_bytes -= old[1]
            if size <= self.max_bytes:
                self._entries[key] = (result, size)
                self._total_bytes += size
                self._evict_locked()
        return key

    def _evict_locked(self) -> None:
        while self._total_bytes > self.max_bytes and self._entries:
            _, (_, size) = self._entries.popitem(last=False)
            self._total_bytes -= size
            if _faults.ACTIVE is not None \
                    and _faults.should("store.memory.evict_race"):
                # A racing evictor got the same LRU head: one extra
                # entry disappears.  The budget invariant still holds
                # and a lost entry is only a future miss.
                if self._entries:
                    _, (_, extra) = self._entries.popitem(last=False)
                    self._total_bytes -= extra

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(entries=len(self._entries),
                              total_bytes=self._total_bytes,
                              hits=self.hits, misses=self.misses,
                              salt=self.salt, medium="in memory")

    def clear(self) -> int:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._total_bytes = 0
        return removed

    def close(self) -> None:
        self.clear()


class TieredStore(ResultStore):
    """Memory over disk: write-through puts, promote-on-hit.

    ``get`` consults the memory tier first — a memory hit never touches
    the filesystem — and promotes disk hits into memory, so a hot
    working set converges to memory speed while the disk tier stays the
    durable system of record.  ``put`` writes through to disk first
    (the disk record is the one other processes share) and then
    populates memory; a disk write failure propagates to the caller
    exactly as :class:`DiskStore`'s would, without poisoning the memory
    tier with a record the disk never accepted.

    Maintenance (``root``/``_record_paths``/``tmp_files``) delegates to
    the disk tier so the fault harness's cache-integrity checks and the
    CLIs see the durable records; ``clear`` empties both tiers.
    """

    name = "tiered"

    def __init__(self, memory: Optional[MemoryStore] = None,
                 disk: Optional[DiskStore] = None, *,
                 root: "os.PathLike[str] | str | None" = None,
                 max_bytes: int = DEFAULT_MEMORY_BUDGET,
                 salt: Optional[str] = None) -> None:
        super().__init__(salt=salt)
        self.memory = (memory if memory is not None
                       else MemoryStore(max_bytes, salt=self.salt))
        self.disk = (disk if disk is not None
                     else DiskStore(root, salt=self.salt))

    @property
    def root(self) -> Path:
        return self.disk.root

    def path_for(self, key: str) -> Path:
        return self.disk.path_for(key)

    def key(self, job: Any) -> str:
        return self.disk.key(job)

    def get(self, job: Any) -> Optional[Dict[str, Any]]:
        result = self.memory.get(job)
        if result is not None:
            self.hits += 1
            return result
        result = self.disk.get(job)
        if result is None:
            self.misses += 1
            return None
        # Promote-on-hit: idempotent (re-promoting replaces the entry
        # with an identical payload at identical cost).
        self.memory.put(job, result)
        self.hits += 1
        return result

    def put(self, job: Any, result: Dict[str, Any]) -> str:
        key = self.disk.put(job, result)
        self.memory.put(job, result)
        return key

    def _record_paths(self):
        return self.disk._record_paths()

    def tmp_files(self) -> list:
        return self.disk.tmp_files()

    def stats(self) -> CacheStats:
        disk = self.disk.stats()
        return CacheStats(entries=disk.entries,
                          total_bytes=disk.total_bytes,
                          hits=self.hits, misses=self.misses,
                          salt=self.salt)

    def tier_stats(self) -> Dict[str, CacheStats]:
        """Per-tier accounting (``repro-batch cache stats``)."""
        return {"memory": self.memory.stats(), "disk": self.disk.stats()}

    def clear(self) -> int:
        self.memory.clear()
        return self.disk.clear()

    def close(self) -> None:
        self.memory.close()
        self.disk.close()


# ----------------------------------------------------------------------
# The factory every consumer layer constructs through.
# ----------------------------------------------------------------------
def make_store(store: Any = None, *,
               root: "os.PathLike[str] | str | None" = None,
               max_bytes: int = DEFAULT_MEMORY_BUDGET,
               salt: Optional[str] = None) -> ResultStore:
    """Resolve a store selection to a live :class:`ResultStore`.

    ``store`` may be a name from :data:`STORE_NAMES`, ``None`` (disk —
    today's behaviour), or an existing :class:`ResultStore` instance
    (returned as-is, so a shared instance can be threaded through
    layers).  ``root`` selects the disk directory; ``max_bytes`` bounds
    the memory tier.
    """
    if isinstance(store, ResultStore):
        return store
    name = "disk" if store is None else str(store).lower()
    if name == "disk":
        return DiskStore(root, salt=salt)
    if name == "memory":
        return MemoryStore(max_bytes, salt=salt)
    if name == "tiered":
        return TieredStore(root=root, max_bytes=max_bytes, salt=salt)
    raise ValueError(f"unknown store {store!r}; choose from "
                     f"{', '.join(STORE_NAMES)}")


def add_store_arguments(parser: Any) -> None:
    """Attach the shared ``--store``/``--store-mem-mb`` CLI options.

    Every CLI that constructs a store (``repro-batch``, ``repro-serve``,
    ``repro-verify``, ``repro-experiments``) advertises the same
    vocabulary and resolves it through :func:`store_from_args`.
    """
    parser.add_argument("--store", choices=STORE_NAMES, default=None,
                        help="result store flavor: disk (default), "
                             "memory (byte-budgeted LRU), or tiered "
                             "(memory over disk)")
    parser.add_argument("--store-mem-mb", type=int, default=64,
                        metavar="MB",
                        help="memory-tier budget in MiB for --store "
                             "memory/tiered (default: 64)")


def store_from_args(args: Any, *,
                    root: "os.PathLike[str] | str | None" = None
                    ) -> ResultStore:
    """Build the selected store from options parsed by
    :func:`add_store_arguments` (plus the CLI's own ``--cache-dir``)."""
    if root is None:
        root = getattr(args, "cache_dir", None)
    mem_mb = getattr(args, "store_mem_mb", None)
    if mem_mb is None:
        return make_store(getattr(args, "store", None), root=root)
    if mem_mb < 0:
        raise ValueError(f"--store-mem-mb must be >= 0, got {mem_mb}")
    return make_store(getattr(args, "store", None), root=root,
                      max_bytes=int(mem_mb) * 1024 * 1024)


def describe_store(store: Optional[ResultStore]) -> str:
    """One-line human description for CLI startup banners."""
    if store is None:
        return "off"
    if isinstance(store, TieredStore):
        return (f"tiered ({store.root}, memory<= "
                f"{store.memory.max_bytes} bytes)")
    if isinstance(store, MemoryStore):
        return f"memory (<= {store.max_bytes} bytes)"
    root = getattr(store, "root", None)
    return f"{store.name} ({root})" if root is not None else store.name


# ----------------------------------------------------------------------
# Single-flight coalescing.
# ----------------------------------------------------------------------
class Flight:
    """One in-progress evaluation other waiters can subscribe to."""

    __slots__ = ("key", "_event", "_outcome")

    def __init__(self, key: str) -> None:
        self.key = key
        self._event = threading.Event()
        self._outcome: Optional[Tuple[str, Any]] = None

    def resolve(self, outcome: Tuple[str, Any]) -> None:
        self._outcome = outcome
        self._event.set()

    def wait(self, timeout: Optional[float] = None
             ) -> Optional[Tuple[str, Any]]:
        """Block for the outcome: ``("ok", value)``, ``("error", exc)``,
        or ``None`` if ``timeout`` elapsed first."""
        if not self._event.wait(timeout):
            return None
        return self._outcome


class SingleFlight:
    """Coalesce concurrent identical evaluations onto one leader.

    ``acquire(key)`` is non-blocking: the first caller for a key
    becomes the *leader* (and must eventually :meth:`publish` or
    :meth:`publish_error` — the answered-or-rejected contract) and
    everyone else a *follower* holding the same :class:`Flight` to
    :meth:`Flight.wait` on.  :meth:`do` packages the whole protocol for
    callers that evaluate one spec at a time; the batch executor uses
    the primitives directly so leaders still dispatch as one batch.

    A published flight is removed from the table *before* its waiters
    wake, so a request arriving after publication starts a fresh
    evaluation — single-flight dedupes concurrency, it is not a cache.

    The ``store.singleflight.leader_crash`` fault site fires inside
    :meth:`publish`: the flight resolves with the injected failure (all
    followers answered) and the leader sees the raise — modelling a
    leader that died after evaluating but before handing over.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: Dict[str, Flight] = {}
        self.leads = 0
        self.followers = 0

    def acquire(self, key: str) -> Tuple[bool, Flight]:
        """Join the flight for ``key``; returns ``(is_leader, flight)``."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = Flight(key)
                self._flights[key] = flight
                self.leads += 1
                return True, flight
            self.followers += 1
            return False, flight

    def _resolve(self, flight: Flight, outcome: Tuple[str, Any]) -> None:
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
        flight.resolve(outcome)

    def publish(self, flight: Flight, value: Any) -> None:
        """Leader hand-off: fan ``value`` out to every follower.

        If the leader-crash fault fires here the flight resolves with
        the injected failure instead (followers are answered with the
        error) and the exception propagates to the leader.
        """
        if _faults.ACTIVE is not None:
            try:
                _faults.fire("store.singleflight.leader_crash",
                             key=flight.key[:12])
            except BaseException as exc:
                self._resolve(flight, ("error", exc))
                raise
        self._resolve(flight, ("ok", value))

    def publish_error(self, flight: Flight, exc: BaseException) -> None:
        """Leader hand-off for a failed evaluation."""
        self._resolve(flight, ("error", exc))

    def do(self, key: str, fn: Any) -> Any:
        """Evaluate ``fn()`` once per concurrent ``key``; all callers
        get the leader's value (or raise the leader's exception)."""
        leader, flight = self.acquire(key)
        if not leader:
            outcome = flight.wait()
            assert outcome is not None  # no timeout: leaders always publish
            status, value = outcome
            if status == "error":
                raise value
            return value
        try:
            value = fn()
        except BaseException as exc:
            self.publish_error(flight, exc)
            raise
        self.publish(flight, value)
        return value

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"leads": self.leads, "followers": self.followers,
                    "in_flight": len(self._flights)}
