"""``repro-batch`` — the batch-evaluation command line.

Usage::

    repro-batch run manifest.json --jobs 4
    repro-batch run manifest.csv --out results.json
    repro-batch run manifest.json --no-cache
    repro-batch cache stats
    repro-batch cache clear

``run`` reads a JSON/CSV manifest of configurations (see
:mod:`repro.engine.manifest`), evaluates every job through the engine and
prints a results table followed by a metrics summary.  The table and the
``--out`` JSON file are deterministic: identical for any ``--jobs`` value
and for cached replays.  Wall times and cache accounting appear only in
the metrics footer.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .backends import BACKEND_NAMES
from .executor import BatchExecutor, BatchReport
from .manifest import ManifestError, load_manifest
from .store import add_store_arguments, store_from_args


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="Parallel batch evaluation of delay/optimizer/"
                    "transient jobs with content-addressed caching.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="evaluate a JSON/CSV manifest of jobs")
    run_parser.add_argument("manifest", help="path to the job manifest")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="worker processes (1 = serial in-process)")
    run_parser.add_argument("--chunksize", type=int, default=None,
                            metavar="N",
                            help="jobs per worker dispatch (pool backend)")
    run_parser.add_argument("--backend", choices=BACKEND_NAMES,
                            default=None,
                            help="execution backend (default: serial "
                                 "when --jobs 1, process otherwise)")
    run_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="result cache directory (default: "
                                 "$REPRO_CACHE_DIR or ./.repro-cache)")
    run_parser.add_argument("--no-cache", action="store_true",
                            help="evaluate everything, ignore the cache")
    add_store_arguments(run_parser)
    run_parser.add_argument("--out", default=None, metavar="FILE",
                            help="write deterministic JSON results here")

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the result cache")
    cache_parser.add_argument("action", choices=("stats", "clear"))
    cache_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="result cache directory")
    add_store_arguments(cache_parser)
    return parser


def _format_results_table(report: BatchReport) -> str:
    """Fixed-width, deterministic results table (one row per job)."""
    headers = ("#", "kind", "status", "result")
    rows: List[tuple] = []
    for index, outcome in enumerate(report.outcomes):
        if outcome.ok:
            assert outcome.result is not None
            detail = outcome.job.summary(outcome.result)
            status = "ok"
        else:
            detail = f"{outcome.error_type}: {outcome.error}"
            status = "FAILED"
        rows.append((str(index), outcome.job.kind, status, detail))
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
                 for row in rows)
    return "\n".join(lines)


def _run(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        print(f"repro-batch: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.chunksize is not None and args.chunksize < 1:
        print(f"repro-batch: --chunksize must be >= 1, got "
              f"{args.chunksize}", file=sys.stderr)
        return 2
    try:
        job_specs = load_manifest(args.manifest)
    except ManifestError as exc:
        print(f"repro-batch: {exc}", file=sys.stderr)
        return 2

    cache = None
    if not args.no_cache:
        try:
            cache = store_from_args(args)
        except ValueError as exc:
            print(f"repro-batch: {exc}", file=sys.stderr)
            return 2
    with BatchExecutor(jobs=args.jobs, cache=cache,
                       chunksize=args.chunksize,
                       backend=args.backend) as executor:
        report = executor.run(job_specs)

    print(_format_results_table(report))
    print()
    print(report.metrics.format_summary())
    if cache is not None:
        root = getattr(cache, "root", None)
        if root is not None:
            print(f"cache dir: {root}")
        else:
            print(f"cache: {cache.name} store (in-process)")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, sort_keys=True,
                      indent=2, allow_nan=False)
            handle.write("\n")
        print(f"results written to {args.out}")
    return 0 if report.all_ok else 1


def _cache(args: argparse.Namespace) -> int:
    try:
        cache = store_from_args(args)
    except ValueError as exc:
        print(f"repro-batch: {exc}", file=sys.stderr)
        return 2
    root = getattr(cache, "root", None)
    if args.action == "stats":
        print(cache.stats().format_summary())
        tier_stats = getattr(cache, "tier_stats", None)
        if tier_stats is not None:
            for tier, stats in tier_stats().items():
                print(f"  {tier}: {stats.format_summary()}")
        if root is not None:
            print(f"cache dir: {root}")
        return 0
    removed = cache.clear()
    where = f" from {root}" if root is not None else ""
    print(f"removed {removed} cached results{where}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run(args)
        return _cache(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early — exit quietly.
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
