"""Manifest parsing: JSON/CSV configuration lists → job specs.

A manifest describes a batch as data.  JSON manifests are either a bare
list of entries or ``{"defaults": {...}, "jobs": [...]}``; CSV manifests
are one entry per row with a header line.  Each entry names a job
``kind`` plus its parameters, with two ways to specify the electrical
configuration:

* ``"node": "100nm"`` — a Table 1 technology node by name, optionally
  with ``"l_nh_per_mm"`` overriding the line inductance (paper units);
* explicit ``"line": {"r", "l", "c"}`` / ``"driver": {"r_s", "c_p",
  "c_0"}`` dictionaries in SI units.

Example JSON entry::

    {"kind": "optimize", "node": "100nm", "l_nh_per_mm": 1.5, "f": 0.5}

Example CSV (same batch)::

    kind,node,l_nh_per_mm,f
    optimize,100nm,1.5,0.5
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .. import units
from ..core.optimize import OptimizerMethod
from ..core.params import DriverParams, LineParams
from ..tech.node import get_node
from .jobs import (DelayJob, ExperimentJob, OptimizeJob, SweepJob,
                   TransientJob, driver_from_dict, line_from_dict)


class ManifestError(ValueError):
    """A manifest file or entry could not be interpreted."""


def _resolve_line_driver(entry: Dict[str, Any]
                         ) -> "tuple[LineParams, DriverParams]":
    """Electrical configuration of an entry: named node or explicit dicts."""
    node_name = entry.get("node")
    if node_name is not None:
        try:
            node = get_node(str(node_name))
        except KeyError as exc:
            raise ManifestError(f"unknown technology node {node_name!r}") \
                from exc
        line, driver = node.line, node.driver
    else:
        try:
            line = line_from_dict(entry["line"])
            driver = driver_from_dict(entry["driver"])
        except KeyError as exc:
            raise ManifestError(
                "entry needs either 'node' or explicit 'line' and "
                f"'driver' parameters: {entry!r}") from exc
    if "l_nh_per_mm" in entry:
        line = line.with_inductance(
            float(entry["l_nh_per_mm"]) * units.NH_PER_MM)
    elif "l" in entry and node_name is not None:
        line = line.with_inductance(float(entry["l"]))
    return line, driver


def _method_of(entry: Dict[str, Any]) -> OptimizerMethod:
    try:
        return OptimizerMethod(str(entry.get("method", "auto")).lower())
    except ValueError as exc:
        raise ManifestError(f"unknown optimizer method "
                            f"{entry.get('method')!r}") from exc


def job_from_entry(entry: Dict[str, Any]) -> Any:
    """Build one job spec from a manifest entry dictionary."""
    kind = str(entry.get("kind", entry.get("type", ""))).lower()
    if kind == "optimize":
        line, driver = _resolve_line_driver(entry)
        initial = entry.get("initial")
        return OptimizeJob(line=line, driver=driver,
                           f=float(entry.get("f", 0.5)),
                           method=_method_of(entry),
                           initial=(tuple(float(x) for x in initial)
                                    if initial else None),
                           tol=float(entry.get("tol", 1e-9)),
                           max_iterations=int(
                               entry.get("max_iterations", 200)),
                           retry_reseed=bool(
                               entry.get("retry_reseed", True)))
    if kind == "delay":
        line, driver = _resolve_line_driver(entry)
        try:
            h = (float(entry["h_mm"]) * units.MM if "h_mm" in entry
                 else float(entry["h"]))
            k = float(entry["k"])
        except KeyError as exc:
            raise ManifestError(
                f"delay entry needs 'h' (or 'h_mm') and 'k': {entry!r}") \
                from exc
        return DelayJob(line=line, driver=driver, h=h, k=k,
                        f=float(entry.get("f", 0.5)),
                        polish_with_newton=bool(
                            entry.get("polish_with_newton", False)))
    if kind == "sweep":
        line, driver = _resolve_line_driver(entry)
        if "l_values_nh_per_mm" in entry:
            l_values = tuple(float(x) * units.NH_PER_MM
                             for x in entry["l_values_nh_per_mm"])
        elif "l_values" in entry:
            l_values = tuple(float(x) for x in entry["l_values"])
        else:
            raise ManifestError(
                f"sweep entry needs 'l_values' (H/m) or "
                f"'l_values_nh_per_mm': {entry!r}")
        return SweepJob(line_zero_l=line.with_inductance(0.0),
                        driver=driver, l_values=l_values,
                        f=float(entry.get("f", 0.5)),
                        method=_method_of(entry))
    if kind == "transient":
        if "node" not in entry:
            raise ManifestError(
                f"transient entry needs a technology 'node': {entry!r}")
        return TransientJob(
            node_name=str(entry["node"]),
            l_nh_per_mm=float(entry.get("l_nh_per_mm", 0.0)),
            n_stages=int(entry.get("n_stages", 5)),
            segments=int(entry.get("segments", 10)),
            style=str(entry.get("style", "mosfet")),
            probe_stage=int(entry.get("probe_stage", 2)),
            period_budget=float(entry.get("period_budget", 14.0)),
            steps_per_period=int(entry.get("steps_per_period", 700)))
    if kind == "experiment":
        experiment_id = entry.get("experiment_id", entry.get("id"))
        if not experiment_id:
            raise ManifestError(
                f"experiment entry needs 'experiment_id': {entry!r}")
        options = entry.get("options", {})
        if not isinstance(options, dict):
            raise ManifestError(
                f"experiment 'options' must be a mapping: {entry!r}")
        return ExperimentJob.create(str(experiment_id), **options)
    raise ManifestError(
        f"entry needs a valid 'kind' (delay, optimize, sweep, transient, "
        f"experiment), got {entry!r}")


def jobs_from_entries(entries: List[Dict[str, Any]],
                      defaults: Optional[Dict[str, Any]] = None
                      ) -> List[Any]:
    """Build jobs from entry dictionaries, applying manifest defaults."""
    jobs = []
    for position, entry in enumerate(entries):
        merged = {**(defaults or {}), **entry}
        try:
            jobs.append(job_from_entry(merged))
        except ManifestError:
            raise
        except Exception as exc:
            raise ManifestError(
                f"invalid manifest entry #{position}: {exc}") from exc
    return jobs


def _parse_csv_cell(key: str, text: str) -> Any:
    """Interpret one CSV cell: JSON scalar, ';'-separated list, or string."""
    if ";" in text:
        return [_parse_csv_cell(key, part) for part in text.split(";")]
    try:
        return json.loads(text)
    except ValueError:
        return text


def load_manifest(path: "str | Path") -> List[Any]:
    """Read a JSON (``.json``) or CSV (anything else) manifest into jobs."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ManifestError(f"cannot read manifest {path}: {exc}") from exc

    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ManifestError(f"manifest {path} is not valid JSON: "
                                f"{exc}") from exc
        if isinstance(data, dict):
            entries = data.get("jobs")
            defaults = data.get("defaults")
            if not isinstance(entries, list):
                raise ManifestError(
                    f"manifest {path} must contain a 'jobs' list")
        elif isinstance(data, list):
            entries, defaults = data, None
        else:
            raise ManifestError(
                f"manifest {path} must be a list or an object with 'jobs'")
        return jobs_from_entries(entries, defaults)

    rows = list(csv.DictReader(text.splitlines()))
    if not rows:
        raise ManifestError(f"manifest {path} has no data rows")
    entries = [{key: _parse_csv_cell(key, value)
                for key, value in row.items()
                if key is not None and value not in (None, "")}
               for row in rows]
    return jobs_from_entries(entries)
