"""One execution plane: pluggable serial/thread/process backends.

Before this module existed the repo ran paper workloads through two
unrelated execution paths: the engine's :class:`BatchExecutor` owned a
bespoke per-run ``ProcessPoolExecutor`` loop, while the serve layer's
``DynamicBatcher`` dispatched every micro-batch onto the event loop's
*default* thread pool — unbounded, anonymous, shared with any other
``run_in_executor(None, ...)`` caller, and GIL-bound to roughly one
core.  A :class:`Backend` is the shared seam both now plug into:

* :meth:`Backend.submit_batch` — the engine path: N job specs in, N
  ordered outcome envelopes out, one :func:`_execute_job` per job;
* :meth:`Backend.run_call` / :meth:`Backend.run_call_async` — the serve
  path: one blocking batch-evaluator call placed on one worker (the
  evaluator itself vectorizes across its lanes).

Everything *above* the seam — cache lookups, the RC re-seed retry, the
``_nonfinite_path`` screen, metrics, submission-order collection — is
backend-agnostic, and nothing below the seam touches result payloads,
so every backend is bitwise identical to ``SerialBackend``
(``tests/test_backends.py`` asserts this for successes *and* captured
failures).

Choosing a backend:

* :class:`SerialBackend` — in-process, zero indirection.  Monkeypatched
  evaluators, shared ``lru_cache`` state and warm-start chaining behave
  exactly as direct calls; the engine default for ``jobs=1``.
* :class:`ThreadBackend` — a bounded, named ``ThreadPoolExecutor``.
  Keeps the event loop responsive and overlaps I/O, but numerical work
  stays GIL-bound; the serve default.
* :class:`ProcessBackend` — persistent warm workers that survive across
  batches (the engine's old pool was rebuilt per ``run()``).  Spawned
  workers re-read ``REPRO_FAULTS`` at import, so a fault plan armed via
  the environment reaches them exactly as it reached the per-run pool.
  The pool is rebuilt (and counted in ``worker_restarts``) when a
  worker dies mid-batch.

Fault sites (scenario ``backend``): ``backend.worker.hang`` stalls a
dispatch, ``backend.dispatch.queue_full`` rejects one at submission,
and ``backend.worker.crash`` kills the batch the way a dead worker
does — the translated error keeps the engine's actionable
"re-run with jobs=1" context and the pool restarts underneath it.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
import traceback
import weakref
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..faults import hooks as _faults
from .metrics import latency_percentiles

#: Selectable backend names, in the order CLIs advertise them.
BACKEND_NAMES = ("serial", "thread", "process")

#: Dispatch-wait samples retained for the percentile window.
DISPATCH_WAIT_WINDOW = 4096


# ----------------------------------------------------------------------
# The unit of execution (shared by every backend).
# ----------------------------------------------------------------------
def _nonfinite_path(value: Any, path: str = "result") -> Optional[str]:
    """Dotted path of the first non-finite number in a result payload.

    ``trace`` subtrees are exempt: an optimizer trace legitimately
    records non-finite residuals from rejected probe steps.  Everywhere
    else a NaN/inf is a solver escape, never a valid answer.
    """
    if isinstance(value, float):
        return path if not math.isfinite(value) else None
    if isinstance(value, dict):
        for key, item in value.items():
            if key == "trace":
                continue
            found = _nonfinite_path(item, f"{path}.{key}")
            if found is not None:
                return found
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            found = _nonfinite_path(item, f"{path}[{index}]")
            if found is not None:
                return found
    return None


def _execute_job(job: Any) -> Dict[str, Any]:
    """Evaluate one job, never raising — the unit of fault isolation.

    Module-level so it pickles for the process backend.  Returns an
    envelope ``{"ok", "result" | ("error", "error_type", "traceback"),
    "wall_time"}``.

    A result containing a non-finite number outside its ``trace`` is
    reported as that job's *failure*, not a success: a NaN that slipped
    out of a solver must never be cached or summarized as an answer
    (the serve layer applies the same screen per lane).
    """
    start = time.perf_counter()
    try:
        if _faults.ACTIVE is not None:
            _faults.sleep("executor.job.hang")
            _faults.fire("executor.job.error", kind=job.kind)
        result = job.run()
    except Exception as exc:  # noqa: BLE001 — isolate *any* job failure
        return {"ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
                "wall_time": time.perf_counter() - start}
    bad = _nonfinite_path(result)
    if bad is not None:
        return {"ok": False,
                "error": f"job produced a non-finite value at {bad} "
                         f"(solver escape; result not cached)",
                "error_type": "DelaySolverError",
                "traceback": "",
                "wall_time": time.perf_counter() - start}
    return {"ok": True, "result": result,
            "wall_time": time.perf_counter() - start}


def _warm_worker() -> None:
    """Process-pool initializer: pre-import the job layer.

    Every worker pays the numpy/repro import exactly once, at pool
    start, in parallel — instead of serially on its first dispatched
    chunk.  Spawned workers also re-run the fault plane's
    ``REPRO_FAULTS`` environment activation at that import, which is
    how they inherit the parent's env-armed plan.
    """
    import repro.engine.jobs  # noqa: F401


def _timed_call(fn: Callable[[Sequence[Any]], List[Dict[str, Any]]],
                batch: Sequence[Any], submitted_wall: float) -> tuple:
    """Run one evaluator call in a worker, reporting its dispatch wait.

    ``perf_counter`` is not comparable across processes, so the wait is
    measured against wall-clock time captured at submission — coarse,
    but honest about cross-process queueing.
    """
    wait = max(0.0, time.time() - submitted_wall)
    return wait, fn(list(batch))


# ----------------------------------------------------------------------
# Stats.
# ----------------------------------------------------------------------
class BackendStats:
    """Thread-safe dispatch accounting one backend instance carries.

    ``dispatches``/``lanes`` count submitted work, ``in_flight`` the
    batches currently between submission and completion, and
    ``worker_restarts`` the times a broken process pool was rebuilt.
    Dispatch-wait samples (seconds between submitting a batch and a
    worker starting it) feed the p50/p95 the ``/metrics`` endpoint and
    ``BatchMetrics.format_summary`` report; the chunked process map
    path records its dispatches without a wait sample rather than
    perturb every chunk with a timing wrapper.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._dispatches = 0
        self._lanes = 0
        self._in_flight = 0
        self._worker_restarts = 0
        self._io_calls = 0
        self._waits: deque = deque(maxlen=DISPATCH_WAIT_WINDOW)

    def dispatch_started(self, lanes: int) -> None:
        with self._lock:
            self._dispatches += 1
            self._lanes += int(lanes)
            self._in_flight += 1

    def dispatch_finished(self, wait: Optional[float] = None) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            if wait is not None:
                self._waits.append(float(wait))

    def worker_restarted(self) -> None:
        with self._lock:
            self._worker_restarts += 1

    def record_io(self) -> None:
        """One store/auxiliary I/O call routed off the event loop."""
        with self._lock:
            self._io_calls += 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time copy of every counter plus wait percentiles."""
        with self._lock:
            return {
                "dispatches": self._dispatches,
                "lanes": self._lanes,
                "in_flight": self._in_flight,
                "worker_restarts": self._worker_restarts,
                "io_calls": self._io_calls,
                "dispatch_wait": latency_percentiles(self._waits),
                "dispatch_wait_samples": len(self._waits),
            }


# ----------------------------------------------------------------------
# The backend protocol.
# ----------------------------------------------------------------------
class Backend:
    """Base execution backend: lifecycle, stats, and the two seams.

    Subclasses implement :meth:`submit_batch` (engine: one envelope per
    job) and :meth:`run_call` (serve: one evaluator call on one
    worker).  ``start``/``close`` are idempotent; an unclosed backend's
    pool is reclaimed by a ``weakref`` finalizer.
    """

    name = "backend"

    def __init__(self) -> None:
        self.stats = BackendStats()
        self._io_pool: Optional[ThreadPoolExecutor] = None
        self._io_lock = threading.Lock()
        self._io_finalizer: Optional[weakref.finalize] = None

    # -- lifecycle -------------------------------------------------------
    @property
    def workers(self) -> int:
        return 1

    def start(self) -> None:
        """Bring workers up eagerly (dispatch also starts lazily)."""

    def close(self) -> None:
        """Shut workers down; in-flight dispatches complete first."""
        self._close_io_pool()

    def _close_io_pool(self) -> None:
        with self._io_lock:
            pool, self._io_pool = self._io_pool, None
            if self._io_finalizer is not None:
                self._io_finalizer.detach()
                self._io_finalizer = None
        if pool is not None:
            try:
                pool.shutdown(wait=True)
            # repro: ignore[RPR007] -- best-effort close of the aux I/O
            # pool: shutdown failure modes depend on interpreter state
            # and there is no caller that could act on them.
            except Exception:  # noqa: BLE001 — closing is best-effort
                pass

    def __enter__(self) -> "Backend":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the seams -------------------------------------------------------
    def submit_batch(self, jobs: Sequence[Any], *,
                     chunksize: Optional[int] = None
                     ) -> List[Dict[str, Any]]:
        """Evaluate N job specs; N ordered ``_execute_job`` envelopes."""
        raise NotImplementedError

    def run_call(self, fn: Callable[[Sequence[Any]], List[Dict[str, Any]]],
                 batch: Sequence[Any]) -> List[Dict[str, Any]]:
        """Run one blocking evaluator call on one worker."""
        raise NotImplementedError

    async def run_call_async(self, fn: Callable[[Sequence[Any]],
                                                List[Dict[str, Any]]],
                             batch: Sequence[Any]) -> List[Dict[str, Any]]:
        """Awaitable :meth:`run_call` that never blocks the event loop
        (except on :class:`SerialBackend`, which is inline by design)."""
        raise NotImplementedError

    # -- auxiliary I/O ----------------------------------------------------
    def _io_submit(self, fn: Callable[[], Any]) -> Any:
        """Place one small blocking call on the auxiliary I/O thread.

        The I/O lane is deliberately *not* the dispatch pool: store
        reads must not queue behind long evaluator calls (and the
        process backend could not ship a closure to a worker anyway).
        One thread is enough — the calls are sub-millisecond file
        reads/writes — and it is created lazily so backends that never
        serve async callers pay nothing.
        """
        with self._io_lock:
            if self._io_pool is None:
                self._io_pool = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-io")
                self._io_finalizer = weakref.finalize(
                    self, _shutdown_pool_quietly, self._io_pool)
            pool = self._io_pool
        self.stats.record_io()
        return pool.submit(fn)

    async def run_io_async(self, fn: Callable[[], Any]) -> Any:
        """Run one blocking store/file call off the event loop.

        The serve layer routes every result-store ``get``/``put``
        through this seam so a cache hit never does file I/O or JSON
        decoding on the loop thread.  :class:`SerialBackend` overrides
        it inline (by design: serial means zero indirection).
        """
        return await asyncio.wrap_future(self._io_submit(fn))

    # -- observability ---------------------------------------------------
    def stats_payload(self) -> Dict[str, Any]:
        """JSON form of this backend's stats for ``/metrics``.

        ``queued`` is the dispatches that cannot be running yet
        (in-flight beyond the worker count) — the backend-level queue
        depth, as distinct from the batchers' per-kind lane queues.
        """
        snapshot = self.stats.snapshot()
        snapshot["backend"] = self.name
        snapshot["workers"] = self.workers
        snapshot["queued"] = max(0, snapshot["in_flight"] - self.workers)
        return snapshot

    # -- fault-site guards (shared by every backend) ---------------------
    def _guard(self) -> None:
        """Blocking dispatch guard: hang stall + queue-full rejection."""
        if _faults.ACTIVE is None:
            return
        _faults.sleep("backend.worker.hang")
        _faults.fire("backend.dispatch.queue_full", backend=self.name)

    async def _guard_async(self) -> None:
        """Event-loop dispatch guard (the stall must not block the loop)."""
        if _faults.ACTIVE is None:
            return
        pause = _faults.delay_duration("backend.worker.hang")
        if pause > 0.0:
            await asyncio.sleep(pause)
        _faults.fire("backend.dispatch.queue_full", backend=self.name)

    def _fire_crash(self) -> None:
        if _faults.ACTIVE is not None:
            _faults.fire("backend.worker.crash", backend=self.name)

    def _crash_error(self, n_jobs: int,
                     exc: BaseException) -> RuntimeError:
        """Actionable whole-batch error for a worker that died hard.

        Per-job fault isolation cannot name the culprit of a killed
        worker, so the batch fails loud with recovery context instead
        of a bare pool traceback.
        """
        return RuntimeError(
            f"{self.name} backend lost a worker while evaluating "
            f"{n_jobs} jobs with {self.workers} workers (a worker died "
            f"mid-batch); re-run with jobs=1 to isolate the failing "
            f"job: {exc}")


class SerialBackend(Backend):
    """Inline in-process execution — the monkeypatch-friendly default.

    ``submit_batch`` is a plain loop and ``run_call`` a direct call, so
    patched evaluators, shared memo state and warm-start chaining all
    behave exactly as direct function calls.  Dispatch wait is a true
    0.0: the caller's thread *is* the worker.
    """

    name = "serial"

    async def run_io_async(self, fn: Callable[[], Any]) -> Any:
        self.stats.record_io()
        return fn()

    def submit_batch(self, jobs: Sequence[Any], *,
                     chunksize: Optional[int] = None
                     ) -> List[Dict[str, Any]]:
        self._guard()
        self.stats.dispatch_started(len(jobs))
        try:
            self._fire_crash()
            return [_execute_job(job) for job in jobs]
        except BrokenProcessPool as exc:
            raise self._crash_error(len(jobs), exc) from exc
        finally:
            self.stats.dispatch_finished(wait=0.0)

    def run_call(self, fn: Callable[[Sequence[Any]], List[Dict[str, Any]]],
                 batch: Sequence[Any]) -> List[Dict[str, Any]]:
        self._guard()
        self.stats.dispatch_started(len(batch))
        try:
            self._fire_crash()
            return fn(list(batch))
        except BrokenProcessPool as exc:
            raise self._crash_error(len(batch), exc) from exc
        finally:
            self.stats.dispatch_finished(wait=0.0)

    async def run_call_async(self, fn: Callable[[Sequence[Any]],
                                                List[Dict[str, Any]]],
                             batch: Sequence[Any]) -> List[Dict[str, Any]]:
        await self._guard_async()
        self.stats.dispatch_started(len(batch))
        try:
            self._fire_crash()
            return fn(list(batch))
        except BrokenProcessPool as exc:
            raise self._crash_error(len(batch), exc) from exc
        finally:
            self.stats.dispatch_finished(wait=0.0)


class _PoolBackend(Backend):
    """Shared pool lifecycle for the thread and process backends."""

    def __init__(self, workers: int) -> None:
        super().__init__()
        if workers < 1:
            raise ValueError(f"worker count must be >= 1, got {workers}")
        self._workers = workers
        self._pool: Optional[Any] = None
        self._finalizer: Optional[weakref.finalize] = None
        self._pool_lock = threading.Lock()

    @property
    def workers(self) -> int:
        return self._workers

    def _build_pool(self) -> Any:
        raise NotImplementedError

    def start(self) -> None:
        with self._pool_lock:
            if self._pool is None:
                self._pool = self._build_pool()
                self._finalizer = weakref.finalize(
                    self, _shutdown_pool_quietly, self._pool)

    def _ensure_pool(self) -> Any:
        self.start()
        assert self._pool is not None
        return self._pool

    def _discard_pool(self, *, wait: bool) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if self._finalizer is not None:
                self._finalizer.detach()
                self._finalizer = None
        if pool is not None:
            try:
                pool.shutdown(wait=wait, cancel_futures=not wait)
            # repro: ignore[RPR007] -- best-effort discard of a (possibly
            # already broken) pool; a shutdown failure must not mask the
            # batch error that triggered the discard.
            except Exception:  # noqa: BLE001 — closing is best-effort
                pass

    def close(self) -> None:
        self._discard_pool(wait=True)
        self._close_io_pool()


def _shutdown_pool_quietly(pool: Any) -> None:
    """Finalizer target: reclaim a pool the owner never closed."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    # repro: ignore[RPR007] -- finalizer runs during GC/interpreter
    # teardown where arbitrary modules may already be gone; any raise
    # here would be swallowed (or crash teardown) anyway.
    except Exception:  # noqa: BLE001 — interpreter may be tearing down
        pass


class ThreadBackend(_PoolBackend):
    """Bounded, named thread pool.

    The serve default: dispatches overlap and the event loop stays
    responsive, at the cost of the GIL serializing pure-Python
    numerical work.  Unlike the loop's default executor, the pool is
    bounded, carries a grep-able thread name, and is *owned* — closed
    by whoever created it, not leaked process-wide.
    """

    name = "thread"

    def __init__(self, workers: int, *,
                 thread_name_prefix: str = "repro-backend") -> None:
        super().__init__(workers)
        self._thread_name_prefix = thread_name_prefix

    def _build_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            max_workers=self._workers,
            thread_name_prefix=self._thread_name_prefix)

    def submit_batch(self, jobs: Sequence[Any], *,
                     chunksize: Optional[int] = None
                     ) -> List[Dict[str, Any]]:
        self._guard()
        pool = self._ensure_pool()
        self.stats.dispatch_started(len(jobs))
        submitted = time.perf_counter()
        first_start: List[float] = []

        def run_one(index: int, job: Any) -> Dict[str, Any]:
            if index == 0:
                first_start.append(time.perf_counter())
            return _execute_job(job)

        try:
            self._fire_crash()
            envelopes = list(pool.map(run_one, range(len(jobs)), jobs))
        except BrokenProcessPool as exc:
            self.stats.dispatch_finished()
            raise self._crash_error(len(jobs), exc) from exc
        except BaseException:
            self.stats.dispatch_finished()
            raise
        wait = (first_start[0] - submitted) if first_start else 0.0
        self.stats.dispatch_finished(wait=max(0.0, wait))
        return envelopes

    def run_call(self, fn: Callable[[Sequence[Any]], List[Dict[str, Any]]],
                 batch: Sequence[Any]) -> List[Dict[str, Any]]:
        self._guard()
        future, submitted = self._submit_call(fn, batch)
        try:
            self._fire_crash()
            started, envelopes = future.result()
        except BrokenProcessPool as exc:
            self.stats.dispatch_finished()
            raise self._crash_error(len(batch), exc) from exc
        except BaseException:
            self.stats.dispatch_finished()
            raise
        self.stats.dispatch_finished(wait=max(0.0, started - submitted))
        return envelopes

    async def run_call_async(self, fn: Callable[[Sequence[Any]],
                                                List[Dict[str, Any]]],
                             batch: Sequence[Any]) -> List[Dict[str, Any]]:
        await self._guard_async()
        future, submitted = self._submit_call(fn, batch)
        try:
            self._fire_crash()
            started, envelopes = await asyncio.wrap_future(future)
        except BrokenProcessPool as exc:
            self.stats.dispatch_finished()
            raise self._crash_error(len(batch), exc) from exc
        except BaseException:
            self.stats.dispatch_finished()
            raise
        self.stats.dispatch_finished(wait=max(0.0, started - submitted))
        return envelopes

    def _submit_call(self, fn: Callable[[Sequence[Any]],
                                        List[Dict[str, Any]]],
                     batch: Sequence[Any]) -> tuple:
        pool = self._ensure_pool()
        jobs = list(batch)
        self.stats.dispatch_started(len(jobs))
        submitted = time.perf_counter()

        def run() -> tuple:
            return time.perf_counter(), fn(jobs)

        return pool.submit(run), submitted


class ProcessBackend(_PoolBackend):
    """Persistent warm process workers that survive across batches.

    The engine's old pool was rebuilt for every ``run()``; here spawn
    and import costs are paid once and amortized over every later
    batch — the property the optimize-heavy serve benchmark measures.
    Workers are spawned with the parent's environment, so an env-armed
    ``REPRO_FAULTS`` plan activates inside them at import exactly as it
    did in the per-run pool.  When a worker dies mid-batch the batch
    fails loud (``re-run with jobs=1`` context) and the pool is rebuilt
    for the next dispatch, counted in ``worker_restarts``.
    """

    name = "process"

    def _build_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self._workers,
                                   initializer=_warm_worker)

    def _handle_broken(self, n_jobs: int,
                       exc: BaseException) -> RuntimeError:
        self.stats.worker_restarted()
        self._discard_pool(wait=False)
        return self._crash_error(n_jobs, exc)

    def submit_batch(self, jobs: Sequence[Any], *,
                     chunksize: Optional[int] = None
                     ) -> List[Dict[str, Any]]:
        self._guard()
        pool = self._ensure_pool()
        chunk = chunksize or max(1, len(jobs) // (4 * self._workers))
        self.stats.dispatch_started(len(jobs))
        try:
            if _faults.ACTIVE is not None:
                _faults.fire("executor.pool.broken")
            self._fire_crash()
            return list(pool.map(_execute_job, jobs, chunksize=chunk))
        except BrokenProcessPool as exc:
            raise self._handle_broken(len(jobs), exc) from exc
        finally:
            # No per-chunk wait sample: timing every pickled chunk
            # would perturb the map path it is meant to observe.
            self.stats.dispatch_finished()

    def run_call(self, fn: Callable[[Sequence[Any]], List[Dict[str, Any]]],
                 batch: Sequence[Any]) -> List[Dict[str, Any]]:
        self._guard()
        future = self._submit_call(fn, batch)
        try:
            self._fire_crash()
            wait, envelopes = future.result()
        except BrokenProcessPool as exc:
            self.stats.dispatch_finished()
            raise self._handle_broken(len(batch), exc) from exc
        except BaseException:
            self.stats.dispatch_finished()
            raise
        self.stats.dispatch_finished(wait=wait)
        return envelopes

    async def run_call_async(self, fn: Callable[[Sequence[Any]],
                                                List[Dict[str, Any]]],
                             batch: Sequence[Any]) -> List[Dict[str, Any]]:
        await self._guard_async()
        future = self._submit_call(fn, batch)
        try:
            self._fire_crash()
            wait, envelopes = await asyncio.wrap_future(future)
        except BrokenProcessPool as exc:
            self.stats.dispatch_finished()
            raise self._handle_broken(len(batch), exc) from exc
        except BaseException:
            self.stats.dispatch_finished()
            raise
        self.stats.dispatch_finished(wait=wait)
        return envelopes

    def _submit_call(self, fn: Callable[[Sequence[Any]],
                                        List[Dict[str, Any]]],
                     batch: Sequence[Any]) -> Any:
        pool = self._ensure_pool()
        jobs = list(batch)
        self.stats.dispatch_started(len(jobs))
        return pool.submit(_timed_call, fn, jobs, time.time())


# ----------------------------------------------------------------------
# The factory every consumer layer constructs through.
# ----------------------------------------------------------------------
def make_backend(backend: Any, *, workers: int = 1,
                 thread_name_prefix: str = "repro-backend") -> Backend:
    """Resolve a backend selection to a live :class:`Backend`.

    ``backend`` may be a name from :data:`BACKEND_NAMES`, ``None``
    (serial), or an existing :class:`Backend` instance (returned
    as-is, so a shared instance can be threaded through layers).
    ``workers`` is ignored by the serial backend.
    """
    if isinstance(backend, Backend):
        return backend
    name = "serial" if backend is None else str(backend).lower()
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(workers,
                             thread_name_prefix=thread_name_prefix)
    if name == "process":
        return ProcessBackend(workers)
    raise ValueError(f"unknown backend {backend!r}; choose from "
                     f"{', '.join(BACKEND_NAMES)}")
