"""Content-addressed on-disk result store for the batch engine.

The cache key of a job is ``SHA-256(canonical-JSON(spec) + "\\0" + salt)``
where the salt carries the code version: results computed by one version
of the numerical code are never replayed against another.  Records are
small JSON files sharded by the first two key hex digits, written
atomically (temp file + ``os.replace``) so concurrent workers and
interrupted runs cannot leave a torn record.

Only *successful* results are cached — a failed job is always retried by
the next batch that contains it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from .. import __version__
from ..faults import hooks as _faults
from .jobs import canonical_json, job_to_dict

#: Bump when the job canonical form or the result payloads change shape.
ENGINE_SCHEMA_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def code_version_salt() -> str:
    """Salt tying cache keys to the library version and engine schema."""
    return f"repro-{__version__}+engine-schema-{ENGINE_SCHEMA_VERSION}"


@dataclass
class CacheStats:
    """Disk occupancy plus this session's hit/miss accounting."""

    entries: int = 0
    total_bytes: int = 0
    hits: int = 0
    misses: int = 0
    salt: str = field(default_factory=code_version_salt)

    @property
    def hit_rate(self) -> float:
        """Session hit rate in [0, 1]; 0.0 before any lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def format_summary(self) -> str:
        return (f"cache: {self.entries} entries, {self.total_bytes} bytes "
                f"on disk; session {self.hits} hits / {self.misses} misses "
                f"({100.0 * self.hit_rate:.1f}% hit rate); salt "
                f"{self.salt!r}")


class ResultCache:
    """Content-addressed store mapping job specs to result records."""

    def __init__(self, root: "os.PathLike[str] | str | None" = None, *,
                 salt: Optional[str] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt if salt is not None else code_version_salt()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Keys and paths.
    # ------------------------------------------------------------------
    def key(self, job: Any) -> str:
        """SHA-256 hex digest of the job's canonical spec + version salt."""
        text = canonical_json(job_to_dict(job)) + "\0" + self.salt
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        """On-disk path of the record with the given key."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store.
    # ------------------------------------------------------------------
    def get(self, job: Any) -> Optional[Dict[str, Any]]:
        """Return the cached result dict for ``job``, or ``None`` on miss.

        A record that exists but cannot be parsed — torn JSON from a
        killed writer or a full disk, or a record missing its ``result``
        field — counts as a miss *and is unlinked*, so a corrupt file
        never shadows the healthy record a later ``put`` writes.  A
        plain I/O error (``OSError``) is a miss *without* the unlink:
        the record content was never seen, so a transient failure — a
        file-descriptor limit, an injected ``cache.get.os_error`` —
        must not evict a healthy record.
        """
        path = self.path_for(self.key(job))
        try:
            if _faults.ACTIVE is not None:
                # The record name is content-addressed (stable across
                # runs); the cache root is not — keep event details
                # replay-comparable.
                _faults.fire("cache.get.os_error", record=path.name)
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            if _faults.ACTIVE is not None:
                text = _faults.mutate("cache.get.torn_record", text)
            record = json.loads(text)
            result = record["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError):
            self.misses += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, job: Any, result: Dict[str, Any]) -> str:
        """Store a successful result; returns the record key."""
        key = self.key(job)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"key": key, "salt": self.salt,
                  "job": job_to_dict(job), "result": result}
        # The temp name must be unique per *writer*, not just per
        # process: concurrent threads sharing one name would interleave
        # writes into one inode and os.replace could promote a torn
        # record.  mkstemp gives every writer its own file.
        fd, tmp = tempfile.mkstemp(dir=path.parent,
                                   prefix=f".{key[:8]}.", suffix=".tmp")
        try:
            if _faults.ACTIVE is not None \
                    and _faults.should("cache.put.stale_tmp"):
                # Simulate a concurrent writer killed between mkstemp
                # and os.replace: its orphaned temp file stays behind.
                stale_fd, _stale = tempfile.mkstemp(
                    dir=path.parent, prefix=f".{key[:8]}.", suffix=".tmp")
                os.close(stale_fd)
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            if _faults.ACTIVE is not None:
                _faults.fire("cache.put.os_error", record=path.name)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return key

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def _record_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                for path in sorted(shard.glob("*.json")):
                    yield path

    def tmp_files(self) -> list:
        """Orphaned writer temp files (``*.tmp``) across every shard.

        A healthy cache has none: writers either promote their temp
        file with ``os.replace`` or unlink it on failure.  Anything
        listed here came from a writer that died between the two — the
        invariant the fault harness counts against injected
        ``cache.put.stale_tmp`` events.
        """
        if not self.root.is_dir():
            return []
        return sorted(path for shard in self.root.iterdir() if shard.is_dir()
                      for path in shard.glob("*.tmp"))

    def stats(self) -> CacheStats:
        """Disk occupancy and this instance's session hit/miss counts."""
        entries = 0
        total_bytes = 0
        for path in self._record_paths():
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return CacheStats(entries=entries, total_bytes=total_bytes,
                          hits=self.hits, misses=self.misses,
                          salt=self.salt)

    def clear(self) -> int:
        """Delete every record (and orphaned writer temp files);
        returns the number of records removed."""
        removed = 0
        for path in list(self._record_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.tmp_files():
            try:
                path.unlink()
            except OSError:
                pass
        if self.root.is_dir():
            for shard in list(self.root.iterdir()):
                if shard.is_dir():
                    try:
                        shard.rmdir()
                    except OSError:
                        pass
        return removed
