"""Compatibility shim: the result cache moved to :mod:`repro.engine.store`.

``ResultCache`` is now :class:`repro.engine.store.DiskStore` — the same
content-addressed, sharded, atomically-written on-disk store — kept
importable under its historical name so existing callers and manifests
keep working.  New code should construct stores through
:func:`repro.engine.store.make_store`, which also offers the bounded
in-memory and tiered variants.
"""

from __future__ import annotations

from .store import (CACHE_DIR_ENV, DEFAULT_CACHE_DIR,  # noqa: F401
                    ENGINE_SCHEMA_VERSION, CacheStats, DiskStore,
                    code_version_salt, default_cache_dir)

#: Historical name of the on-disk store.
ResultCache = DiskStore

__all__ = [
    "CACHE_DIR_ENV", "DEFAULT_CACHE_DIR", "ENGINE_SCHEMA_VERSION",
    "CacheStats", "DiskStore", "ResultCache", "code_version_salt",
    "default_cache_dir",
]
