"""Declarative, hashable job specifications for the batch engine.

A *job* is a frozen dataclass that fully describes one evaluation of the
library — a threshold-delay solve, a repeater optimization, an inductance
sweep, a ring-oscillator transient, or a whole registered experiment.
Jobs serialize to a canonical, JSON-stable dictionary (``canonical()``)
which is the unit of content addressing: two jobs with the same canonical
form are the same computation and may share a cached result.

Every job knows how to execute itself (``run()``) and returns a plain,
JSON-serializable result dictionary with no timestamps or other
nondeterministic fields, so a batch run with ``--jobs 4`` is bitwise
identical to a serial one and a cached replay is bitwise identical to a
fresh evaluation.

Job kinds are *pluggable*: any module may define a frozen dataclass with a
``kind`` tag, ``canonical()``, ``run()``, ``summary()`` and a ``from_dict``
classmethod, and register it with :func:`register_job_type`.  The registry
is what ``job_from_dict`` (and therefore manifests and the result cache)
dispatches on; :mod:`repro.verify.jobs` uses it to route verification
oracles through the same executor and cache as every other evaluation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

import numpy as np

from ..core.critical import critical_inductance
from ..core.delay import threshold_delay
from ..core.elmore import rc_optimum
from ..core.optimize import OptimizerMethod, optimize_repeater
from ..core.params import DriverParams, LineParams, Stage
from ..errors import OptimizationError, ParameterError
from ..faults import hooks as _faults


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to the canonical JSON form used for hashing.

    Keys are sorted and separators minimized so the text depends only on
    the content.  ``float`` round-trips exactly through ``repr``, so equal
    specs hash equally and unequal ones (almost surely) do not.
    """
    # repro: ignore[RPR004] -- digest preimage, not a payload path: this
    # text feeds sha256 for cache/flight keys and is never parsed by a
    # strict peer.  Strict encoding here would crash key computation on
    # a non-finite spec *before* the engine/serve layers can answer it
    # with their structured evaluation error.
    return json.dumps(jsonify(obj), sort_keys=True, separators=(",", ":"))


def jsonify(obj: Any) -> Any:
    """Recursively convert ``obj`` to plain JSON types.

    Handles numpy scalars/arrays, tuples and enums so result payloads and
    job specs built from library objects serialize deterministically.
    """
    import enum

    import numpy as np

    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        return [jsonify(x) for x in obj.tolist()]
    if isinstance(obj, dict):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(x) for x in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


#: All registered job classes by their ``kind`` tag, for manifest/cache
#: round-trips.  Populated by :func:`register_job_type`.
JOB_TYPES: Dict[str, Type[Any]] = {}


def register_job_type(cls: Type[Any]) -> Type[Any]:
    """Class decorator registering a job kind for ``job_from_dict``.

    The class must carry a ``kind`` class variable and a ``from_dict``
    classmethod inverting its ``canonical()`` dictionary.  Registering a
    kind twice replaces the earlier class (latest wins), which keeps
    reloads idempotent.
    """
    kind = getattr(cls, "kind", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(f"{cls.__name__} must define a string 'kind' tag")
    if not callable(getattr(cls, "from_dict", None)):
        raise TypeError(f"{cls.__name__} must define a from_dict classmethod")
    JOB_TYPES[kind] = cls
    return cls


def line_to_dict(line: LineParams) -> Dict[str, float]:
    """Canonical dictionary form of per-unit-length line parameters."""
    return {"r": line.r, "l": line.l, "c": line.c}


def line_from_dict(data: Dict[str, float]) -> LineParams:
    """Rebuild :class:`LineParams` from its canonical dictionary."""
    return LineParams(r=float(data["r"]), l=float(data["l"]),
                      c=float(data["c"]))


def driver_to_dict(driver: DriverParams) -> Dict[str, float]:
    """Canonical dictionary form of minimum-repeater parameters."""
    return {"r_s": driver.r_s, "c_p": driver.c_p, "c_0": driver.c_0}


def driver_from_dict(data: Dict[str, float]) -> DriverParams:
    """Rebuild :class:`DriverParams` from its canonical dictionary."""
    return DriverParams(r_s=float(data["r_s"]), c_p=float(data["c_p"]),
                        c_0=float(data["c_0"]))


@register_job_type
@dataclass(frozen=True)
class DelayJob:
    """Threshold-delay solve of one fully specified stage (paper Eq. 3)."""

    kind: ClassVar[str] = "delay"

    line: LineParams
    driver: DriverParams
    h: float
    k: float
    f: float = 0.5
    polish_with_newton: bool = False

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "line": line_to_dict(self.line),
                "driver": driver_to_dict(self.driver),
                "h": self.h, "k": self.k, "f": self.f,
                "polish_with_newton": self.polish_with_newton}

    def run(self) -> Dict[str, Any]:
        stage = Stage(line=self.line, driver=self.driver, h=self.h, k=self.k)
        delay = threshold_delay(stage, self.f,
                                polish_with_newton=self.polish_with_newton)
        return {"tau": delay.tau,
                "delay_per_length": delay.tau / self.h,
                "threshold": delay.threshold,
                "damping": delay.damping.value,
                "newton_iterations": delay.newton_iterations}

    def summary(self, result: Dict[str, Any]) -> str:
        return (f"tau={result['tau']:.6g}s "
                f"damping={result['damping']}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DelayJob":
        return cls(line=line_from_dict(data["line"]),
                   driver=driver_from_dict(data["driver"]),
                   h=float(data["h"]), k=float(data["k"]),
                   f=float(data.get("f", 0.5)),
                   polish_with_newton=bool(
                       data.get("polish_with_newton", False)))


@register_job_type
@dataclass(frozen=True)
class BatchDelayJob:
    """Vectorized threshold-delay solve of N stages as *one* cached unit.

    The batch is evaluated with
    :func:`repro.core.kernels.threshold_delay_v`, so an inductance sweep's
    whole RC-sized delay column is a single job — one cache entry, one
    process-pool dispatch — instead of N per-point :class:`DelayJob`\\ s.
    With ``polish_with_newton`` false (the default of both specs), lane
    values are bitwise identical to the corresponding scalar
    :class:`DelayJob` results.

    When ``polish_with_newton`` is true the result's
    ``newton_iterations`` reports the masked hybrid's accepted Newton
    steps per lane (the batched analogue of the paper's iteration count);
    otherwise it is all zeros, mirroring the scalar job's "0 unless
    polished" contract.
    """

    kind: ClassVar[str] = "batch_delay"

    driver: DriverParams
    lines: Tuple[LineParams, ...]
    h: Tuple[float, ...]
    k: Tuple[float, ...]
    f: float = 0.5
    polish_with_newton: bool = False

    def __post_init__(self) -> None:
        n = len(self.lines)
        if n == 0:
            raise ParameterError("BatchDelayJob needs at least one stage")
        if len(self.h) != n or len(self.k) != n:
            raise ParameterError(
                f"BatchDelayJob field lengths disagree: "
                f"{n} lines, {len(self.h)} h, {len(self.k)} k")

    @classmethod
    def from_stages(cls, stages, f: float = 0.5, *,
                    polish_with_newton: bool = False) -> "BatchDelayJob":
        """Pack stages sharing one driver into a batch job."""
        stages = list(stages)
        drivers = {stage.driver for stage in stages}
        if len(drivers) != 1:
            raise ParameterError(
                f"BatchDelayJob stages must share one driver, got "
                f"{len(drivers)}")
        return cls(driver=stages[0].driver,
                   lines=tuple(stage.line for stage in stages),
                   h=tuple(stage.h for stage in stages),
                   k=tuple(stage.k for stage in stages),
                   f=f, polish_with_newton=polish_with_newton)

    @classmethod
    def from_inductance_sweep(cls, line_zero_l: LineParams,
                              driver: DriverParams, l_values, *,
                              h: float, k: float,
                              f: float = 0.5) -> "BatchDelayJob":
        """One fixed (h, k) sizing swept across an inductance grid."""
        lines = tuple(line_zero_l.with_inductance(float(l))
                      for l in l_values)
        return cls(driver=driver, lines=lines,
                   h=(float(h),) * len(lines), k=(float(k),) * len(lines),
                   f=f)

    def __len__(self) -> int:
        return len(self.lines)

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "driver": driver_to_dict(self.driver),
                "lines": [line_to_dict(line) for line in self.lines],
                "h": list(self.h), "k": list(self.k), "f": self.f,
                "polish_with_newton": self.polish_with_newton}

    def run(self) -> Dict[str, Any]:
        from ..core.kernels import StageBatch, threshold_delay_v
        from ..errors import DelaySolverError

        batch = StageBatch.from_arrays(
            r=[line.r for line in self.lines],
            l=[line.l for line in self.lines],
            c=[line.c for line in self.lines],
            r_s=self.driver.r_s, c_p=self.driver.c_p,
            c_0=self.driver.c_0, h=self.h, k=self.k)
        try:
            solved = threshold_delay_v(batch, self.f)
        except DelaySolverError as exc:
            # Name the failing sweep points, not just the kernel lanes.
            lanes = getattr(exc, "lanes", [])
            where = "; ".join(
                f"point {i} (l = {self.lines[i].l:.4g} H/m, "
                f"h = {self.h[i]:.4g} m, k = {self.k[i]:.4g})"
                for i in lanes[:3])
            suffix = f" and {len(lanes) - 3} more" if len(lanes) > 3 else ""
            raise DelaySolverError(
                f"batch delay solve of {len(self)} points failed at "
                f"{where or 'unknown point'}{suffix}: {exc}",
                iterations=exc.iterations,
                residual=exc.residual) from exc
        tau = solved.tau
        h_arr = np.asarray(self.h, dtype=float)
        iterations = (solved.newton_iterations if self.polish_with_newton
                      else np.zeros(len(self), dtype=np.int64))
        return {"n": len(self),
                "tau": jsonify(tau),
                "delay_per_length": jsonify(tau / h_arr),
                "threshold": self.f,
                "damping": [d.value for d in solved.damping_values()],
                "newton_iterations": jsonify(iterations)}

    def summary(self, result: Dict[str, Any]) -> str:
        tau = result["tau"]
        return (f"{result['n']} lanes tau=[{min(tau):.6g}.."
                f"{max(tau):.6g}]s")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatchDelayJob":
        return cls(driver=driver_from_dict(data["driver"]),
                   lines=tuple(line_from_dict(d) for d in data["lines"]),
                   h=tuple(float(x) for x in data["h"]),
                   k=tuple(float(x) for x in data["k"]),
                   f=float(data.get("f", 0.5)),
                   polish_with_newton=bool(
                       data.get("polish_with_newton", False)))


@register_job_type
@dataclass(frozen=True)
class CriticalInductanceJob:
    """Eq. 4 critical-inductance query of one (h, k) configuration.

    Returns the line inductance per unit length that would make the
    stage critically damped, plus the damping margin ``l / l_crit`` of
    the stage's *actual* inductance (``None`` when ``l_crit <= 0``,
    i.e. the configuration is underdamped even at l = 0).  The scalar
    :func:`repro.core.critical.critical_inductance` and the batched
    :func:`repro.core.kernels.critical_inductance_v` share one
    expression graph, so the serve layer may answer this job from a
    vectorized batch bitwise identically to ``run()``.
    """

    kind: ClassVar[str] = "critical_inductance"

    line: LineParams
    driver: DriverParams
    h: float
    k: float

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "line": line_to_dict(self.line),
                "driver": driver_to_dict(self.driver),
                "h": self.h, "k": self.k}

    def run(self) -> Dict[str, Any]:
        stage = Stage(line=self.line, driver=self.driver, h=self.h, k=self.k)
        l_crit = critical_inductance(stage)
        margin = (self.line.l / l_crit) if l_crit > 0.0 else None
        return {"l_crit": l_crit, "l": self.line.l,
                "damping_margin": margin}

    def summary(self, result: Dict[str, Any]) -> str:
        margin = result["damping_margin"]
        margin_text = f"{margin:.4g}" if margin is not None else "inf"
        return (f"l_crit={result['l_crit']:.6g}H/m "
                f"margin={margin_text}")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CriticalInductanceJob":
        return cls(line=line_from_dict(data["line"]),
                   driver=driver_from_dict(data["driver"]),
                   h=float(data["h"]), k=float(data["k"]))


def _optimum_payload(optimum, retried: bool) -> Dict[str, Any]:
    """Shared result-dict form of a RepeaterOptimum (plus its trace).

    ``h_opt``/``k_opt`` are passed through *uncoerced*: the serial
    in-process executor hands this dict straight to callers such as
    :func:`repro.core.sweep.sweep_inductance`, whose warm-start chain
    depends on receiving the optimizer's raw (possibly ``np.float64``)
    iterates — coercing here would perturb downstream optima by ulps.
    JSON boundaries (cache, manifests) canonicalize via ``jsonify``.
    """
    return {"h_opt": optimum.h_opt, "k_opt": optimum.k_opt,
            "tau": optimum.tau,
            "delay_per_length": optimum.delay_per_length,
            "damping": optimum.damping.value,
            "method": optimum.method.value,
            "iterations": optimum.iterations,
            "retried": retried,
            "trace": (optimum.trace.to_payload()
                      if optimum.trace is not None else None)}


@register_job_type
@dataclass(frozen=True)
class OptimizeJob:
    """Repeater-insertion optimization of one (line, driver, f) config.

    ``initial`` is the warm start; when it fails with
    :class:`OptimizationError` and ``retry_reseed`` is true, the job
    retries exactly once from the closed-form RC optimum — the same
    recovery :func:`repro.core.sweep.sweep_inductance` has always applied
    inline.  The retry is part of the spec, so it is deterministic and
    cache-safe.
    """

    kind: ClassVar[str] = "optimize"

    line: LineParams
    driver: DriverParams
    f: float = 0.5
    method: OptimizerMethod = OptimizerMethod.AUTO
    initial: Optional[Tuple[float, float]] = None
    tol: float = 1e-9
    max_iterations: int = 200
    retry_reseed: bool = True

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "line": line_to_dict(self.line),
                "driver": driver_to_dict(self.driver),
                "f": self.f, "method": self.method.value,
                "initial": list(self.initial) if self.initial else None,
                "tol": self.tol, "max_iterations": self.max_iterations,
                "retry_reseed": self.retry_reseed}

    def run(self) -> Dict[str, Any]:
        kwargs = dict(method=self.method, tol=self.tol,
                      max_iterations=self.max_iterations)
        retried = False
        try:
            if _faults.ACTIVE is not None:
                _faults.fire("optimize.warm_start")
            optimum = optimize_repeater(self.line, self.driver, self.f,
                                        initial=self.initial, **kwargs)
        except OptimizationError as warm_exc:
            if not (self.retry_reseed and self.initial is not None):
                raise
            # Re-seed from the RC optimum once before giving up (the
            # Elmore optimum ignores l, so this is the l = 0 seed).
            rc_ref = rc_optimum(self.line, self.driver)
            try:
                optimum = optimize_repeater(
                    self.line, self.driver, self.f,
                    initial=(rc_ref.h_opt, rc_ref.k_opt), **kwargs)
            except OptimizationError as exc:
                # Retry exhausted: name both failures so the batch
                # report points at the job, not just the last attempt.
                raise OptimizationError(
                    f"optimize retry exhausted: warm start "
                    f"{self.initial} failed ({warm_exc}); RC re-seed "
                    f"({rc_ref.h_opt:.6g}, {rc_ref.k_opt:.6g}) also "
                    f"failed: {exc}",
                    iterations=exc.iterations,
                    residual=exc.residual) from exc
            retried = True
        return _optimum_payload(optimum, retried)

    def summary(self, result: Dict[str, Any]) -> str:
        return (f"h={result['h_opt']:.6g}m k={result['k_opt']:.6g} "
                f"tau/h={result['delay_per_length']:.6g}s/m "
                f"[{result['method']}:{result['iterations']}"
                f"{' reseed' if result['retried'] else ''}]")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OptimizeJob":
        initial = data.get("initial")
        return cls(line=line_from_dict(data["line"]),
                   driver=driver_from_dict(data["driver"]),
                   f=float(data.get("f", 0.5)),
                   method=OptimizerMethod(data.get("method", "auto")),
                   initial=(tuple(float(x) for x in initial)
                            if initial else None),
                   tol=float(data.get("tol", 1e-9)),
                   max_iterations=int(data.get("max_iterations", 200)),
                   retry_reseed=bool(data.get("retry_reseed", True)))


@register_job_type
@dataclass(frozen=True)
class BatchOptimizeJob:
    """N independent repeater optimizations as one cached batch unit.

    Multi-start (one configuration, many seeds) and multi-config (one
    sizing problem per line, e.g. an inductance grid) both reduce to N
    independent ``optimize_repeater`` runs; this job executes them with
    two batching advantages over N :class:`OptimizeJob`\\ s:

    * the N seed evaluations run as *one* kernel batch (grouped by
      scalar semantics, see
      :func:`repro.core.evaluate.prime_evaluators`), pre-warming each
      lane's :class:`~repro.core.evaluate.StageEvaluator` memo,
    * the N Newton inner loops advance in *lockstep*
      (:func:`repro.core.optimize.optimize_repeater_many`): every
      iteration pools all lanes' finite-difference probes — and every
      backtracking wave's trial points — into single pooled kernel
      batches, and
    * the whole batch is a single cache entry / pool dispatch.

    Per-lane results — including the convergence path, the attached
    trace, and any per-lane failure — are bitwise identical to running
    each lane as its own :class:`OptimizeJob` (lane evaluation is
    batch-size invariant).  Failed lanes are isolated into ``errors``;
    ``best_index`` points at the lowest surviving delay per unit length.
    """

    kind: ClassVar[str] = "batch_optimize"

    driver: DriverParams
    lines: Tuple[LineParams, ...]
    f: float = 0.5
    method: OptimizerMethod = OptimizerMethod.AUTO
    initials: Optional[Tuple[Optional[Tuple[float, float]], ...]] = None
    tol: float = 1e-9
    max_iterations: int = 200
    retry_reseed: bool = True

    def __post_init__(self) -> None:
        if not self.lines:
            raise ParameterError("BatchOptimizeJob needs at least one lane")
        if self.initials is not None and len(self.initials) != len(self.lines):
            raise ParameterError(
                f"BatchOptimizeJob field lengths disagree: "
                f"{len(self.lines)} lines, {len(self.initials)} initials")

    @classmethod
    def from_multistart(cls, line: LineParams, driver: DriverParams,
                        seeds, f: float = 0.5, **kwargs
                        ) -> "BatchOptimizeJob":
        """One configuration optimized from several (h, k) seeds."""
        seeds = tuple(tuple(float(x) for x in seed) for seed in seeds)
        return cls(driver=driver, lines=(line,) * len(seeds), f=f,
                   initials=seeds, **kwargs)

    @classmethod
    def from_inductance_grid(cls, line_zero_l: LineParams,
                             driver: DriverParams, l_values,
                             f: float = 0.5, **kwargs
                             ) -> "BatchOptimizeJob":
        """One optimization per inductance, each seeded independently
        (unlike the warm-start chain of ``sweep_inductance``)."""
        lines = tuple(line_zero_l.with_inductance(float(l))
                      for l in l_values)
        return cls(driver=driver, lines=lines, f=f, **kwargs)

    def __len__(self) -> int:
        return len(self.lines)

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "driver": driver_to_dict(self.driver),
                "lines": [line_to_dict(line) for line in self.lines],
                "f": self.f, "method": self.method.value,
                "initials": ([list(i) if i else None for i in self.initials]
                             if self.initials is not None else None),
                "tol": self.tol, "max_iterations": self.max_iterations,
                "retry_reseed": self.retry_reseed}

    def run(self) -> Dict[str, Any]:
        from ..core.evaluate import StageEvaluator, prime_evaluators
        from ..core.optimize import optimize_repeater_many

        evaluators = [StageEvaluator(line, self.driver, self.f)
                      for line in self.lines]
        seeds = []
        for i, line in enumerate(self.lines):
            init = self.initials[i] if self.initials is not None else None
            if init is None:
                rc_ref = rc_optimum(line, self.driver)
                seeds.append((rc_ref.h_opt, rc_ref.k_opt))
            else:
                seeds.append((init[0], init[1]))
        primed = prime_evaluators(evaluators, seeds)

        kwargs = dict(method=self.method, tol=self.tol,
                      max_iterations=self.max_iterations)
        outcomes = optimize_repeater_many(
            self.lines, self.driver, self.f, initials=seeds,
            evaluators=evaluators, **kwargs)
        results: list = []
        errors: list = []
        for i, outcome in enumerate(outcomes):
            user_init = (self.initials[i] if self.initials is not None
                         else None)
            retried = False
            if (isinstance(outcome, OptimizationError)
                    and self.retry_reseed and user_init is not None):
                # Re-seed from the RC optimum once before giving up, on
                # the same (already warm) evaluator — the per-lane twin
                # of OptimizeJob's retry.
                rc_ref = rc_optimum(self.lines[i], self.driver)
                try:
                    outcome = optimize_repeater(
                        self.lines[i], self.driver, self.f,
                        initial=(rc_ref.h_opt, rc_ref.k_opt),
                        evaluator=evaluators[i], **kwargs)
                    retried = True
                except Exception as exc:  # noqa: BLE001 — lane isolation
                    outcome = exc
            if isinstance(outcome, Exception):
                results.append(None)
                errors.append({"lane": i,
                               "error_type": type(outcome).__name__,
                               "error": str(outcome)})
                continue
            results.append(_optimum_payload(outcome, retried))
        ok = [i for i, res in enumerate(results) if res is not None]
        best_index = (min(ok, key=lambda i: results[i]["delay_per_length"])
                      if ok else None)
        return {"n": len(self),
                "results": results,
                "errors": errors,
                "best_index": best_index,
                "seeds_primed": primed}

    def summary(self, result: Dict[str, Any]) -> str:
        failed = len(result["errors"])
        best = result["best_index"]
        if best is None:
            return f"{result['n']} lanes, all failed"
        dpl = result["results"][best]["delay_per_length"]
        return (f"{result['n']} lanes ({failed} failed) "
                f"best[{best}] tau/h={dpl:.6g}s/m")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatchOptimizeJob":
        initials = data.get("initials")
        return cls(driver=driver_from_dict(data["driver"]),
                   lines=tuple(line_from_dict(d) for d in data["lines"]),
                   f=float(data.get("f", 0.5)),
                   method=OptimizerMethod(data.get("method", "auto")),
                   initials=(tuple(
                       tuple(float(x) for x in i) if i else None
                       for i in initials) if initials is not None else None),
                   tol=float(data.get("tol", 1e-9)),
                   max_iterations=int(data.get("max_iterations", 200)),
                   retry_reseed=bool(data.get("retry_reseed", True)))


@register_job_type
@dataclass(frozen=True)
class SweepJob:
    """Warm-started inductance sweep of the repeater optimum (Figs. 4-8)."""

    kind: ClassVar[str] = "sweep"

    line_zero_l: LineParams
    driver: DriverParams
    l_values: Tuple[float, ...]
    f: float = 0.5
    method: OptimizerMethod = OptimizerMethod.AUTO

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind,
                "line": line_to_dict(self.line_zero_l),
                "driver": driver_to_dict(self.driver),
                "l_values": list(self.l_values),
                "f": self.f, "method": self.method.value}

    def run(self) -> Dict[str, Any]:
        from ..core.sweep import sweep_inductance

        sweep = sweep_inductance(self.line_zero_l, self.driver,
                                 self.l_values, self.f, method=self.method)
        return {"l_values": jsonify(sweep.l_values),
                "h_opt": jsonify(sweep.h_opt),
                "k_opt": jsonify(sweep.k_opt),
                "tau": jsonify(sweep.tau),
                "delay_per_length": jsonify(sweep.delay_per_length),
                "l_crit": jsonify(sweep.l_crit),
                "rc_sized_delay_per_length":
                    jsonify(sweep.rc_sized_delay_per_length),
                "rc_reference": {"h_opt": sweep.rc_reference.h_opt,
                                 "k_opt": sweep.rc_reference.k_opt,
                                 "tau_opt": sweep.rc_reference.tau_opt},
                "threshold": sweep.threshold,
                "methods": list(sweep.methods or ()),
                "fallback_points": jsonify(sweep.fallback_points),
                "backtrack_steps": sweep.backtrack_steps}

    def summary(self, result: Dict[str, Any]) -> str:
        dpl = result["delay_per_length"]
        return (f"{len(result['l_values'])} points "
                f"degradation={dpl[-1] / dpl[0]:.4g}x")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepJob":
        return cls(line_zero_l=line_from_dict(data["line"]),
                   driver=driver_from_dict(data["driver"]),
                   l_values=tuple(float(x) for x in data["l_values"]),
                   f=float(data.get("f", 0.5)),
                   method=OptimizerMethod(data.get("method", "auto")))


@register_job_type
@dataclass(frozen=True)
class TransientJob:
    """Ring-oscillator transient at one inductance (Figs. 9-12 testbench)."""

    kind: ClassVar[str] = "transient"

    node_name: str
    l_nh_per_mm: float
    n_stages: int = 5
    segments: int = 10
    style: str = "mosfet"
    probe_stage: int = 2
    period_budget: float = 14.0
    steps_per_period: int = 700

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind, "node_name": self.node_name,
                "l_nh_per_mm": self.l_nh_per_mm,
                "n_stages": self.n_stages, "segments": self.segments,
                "style": self.style, "probe_stage": self.probe_stage,
                "period_budget": self.period_budget,
                "steps_per_period": self.steps_per_period}

    def run(self) -> Dict[str, Any]:
        from ..errors import SimulationError
        from ..experiments.ring import run_ring

        ring = run_ring(self.node_name, self.l_nh_per_mm,
                        n_stages=self.n_stages, segments=self.segments,
                        style=self.style, probe_stage=self.probe_stage,
                        period_budget=self.period_budget,
                        steps_per_period=self.steps_per_period)
        try:
            period = ring.period()
        except (ParameterError, SimulationError):
            period = None  # non-oscillating run (false switching)
        wave = ring.input_waveform
        return {"node_name": self.node_name,
                "l_nh_per_mm": self.l_nh_per_mm,
                "period": period,
                "oscillates": period is not None,
                "input_min": float(wave.values.min()),
                "input_max": float(wave.values.max())}

    def summary(self, result: Dict[str, Any]) -> str:
        if result["period"] is None:
            return "no oscillation (false switching)"
        return f"period={result['period']:.6g}s"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TransientJob":
        return cls(
            node_name=str(data["node_name"]),
            l_nh_per_mm=float(data["l_nh_per_mm"]),
            n_stages=int(data.get("n_stages", 5)),
            segments=int(data.get("segments", 10)),
            style=str(data.get("style", "mosfet")),
            probe_stage=int(data.get("probe_stage", 2)),
            period_budget=float(data.get("period_budget", 14.0)),
            steps_per_period=int(data.get("steps_per_period", 700)))


@register_job_type
@dataclass(frozen=True)
class ExperimentJob:
    """One registered paper/extension experiment, run as a batch job.

    ``options_json`` holds the experiment keyword overrides as canonical
    JSON text so the spec stays hashable; build instances through
    :meth:`create` rather than passing the string by hand.
    """

    kind: ClassVar[str] = "experiment"

    experiment_id: str
    options_json: str = "{}"

    @classmethod
    def create(cls, experiment_id: str, **options: Any) -> "ExperimentJob":
        return cls(experiment_id=experiment_id,
                   options_json=canonical_json(options))

    @property
    def options(self) -> Dict[str, Any]:
        return json.loads(self.options_json)

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind, "experiment_id": self.experiment_id,
                "options": self.options}

    def run(self) -> Dict[str, Any]:
        from ..experiments.base import run_experiment

        result = run_experiment(self.experiment_id, **self.options)
        return result.to_payload()

    def summary(self, result: Dict[str, Any]) -> str:
        return f"{result['title']} ({len(result['rows'])} rows)"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentJob":
        return cls(experiment_id=str(data["experiment_id"]),
                   options_json=canonical_json(data.get("options", {})))


def job_to_dict(job: Any) -> Dict[str, Any]:
    """Serialize any job to its canonical dictionary (includes ``kind``)."""
    return job.canonical()


def job_from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild a job from a canonical dictionary produced by ``canonical()``."""
    kind = data.get("kind")
    if kind not in JOB_TYPES:
        if kind == "verify":
            # The verify job kind registers on package import; pull it in
            # so manifests containing verification jobs load standalone.
            from .. import verify  # noqa: F401
        if kind not in JOB_TYPES:
            known = ", ".join(sorted(JOB_TYPES))
            raise ValueError(f"unknown job kind {kind!r}; known: {known}")
    return JOB_TYPES[kind].from_dict(data)
