"""Batch scheduler: a thin orchestrator over a pluggable backend.

The executor turns a sequence of job specs into an ordered sequence of
:class:`JobOutcome` records.  Everything that decides *what* runs and
what the results mean — cache lookups, the RC-reseed retry (in the job
specs), the non-finite screen, submission-order collection, metrics —
lives here, *above* the backend seam; the
:class:`repro.engine.backends.Backend` below it only moves envelopes.
Guarantees:

* **Determinism** — results are collected in submission order and the
  result payloads contain no wall-clock data, so ``jobs=4`` is bitwise
  identical to ``jobs=1`` on every backend.  The ``wall_time`` the
  ``_execute_job`` envelope carries is *metrics-only*: it feeds
  ``JobMetrics`` and never enters the cached payload,
  ``JobOutcome.to_payload()`` or result equality (asserted by
  ``tests/test_engine_executor.py`` and the parity suite in
  ``tests/test_backends.py``).
* **Fault isolation** — a job that raises (``OptimizationError``,
  convergence failure, bad parameters, ...) is reported failed with its
  captured traceback; the rest of the batch completes.  The bounded
  RC-optimum re-seed retry for optimizer jobs lives in the job spec
  itself (:class:`repro.engine.jobs.OptimizeJob`), so every backend
  applies the same recovery.
* **Caching** — with a :class:`repro.engine.store.ResultStore` attached
  (disk, memory, or tiered — see :func:`repro.engine.store.make_store`),
  hits are served in-process without dispatching work and fresh
  successes are written back.  Failures are never cached.
* **Deduplication** — duplicate specs inside one batch collapse to a
  single evaluation through a
  :class:`~repro.engine.store.SingleFlight` table (shareable across
  racing executors): the leader's envelope fans out to every duplicate
  lane, so N identical manifest rows cost one solver run and still
  emit N identical payloads.

The serial backend (``jobs=1``, the default) runs everything in-process:
monkeypatching, shared ``lru_cache`` state and warm-start chaining all
behave exactly as direct function calls — which is why it is the default
evaluation path for :func:`repro.core.sweep.sweep_inductance`.
``jobs=N`` selects the persistent process backend, whose warm workers
survive across ``run()`` calls; an executor that built its own backend
owns it — ``close()`` (or the context-manager form) shuts the workers
down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

# Re-exported for compatibility: these moved to repro.engine.backends
# (tests and the serve layer import them from here).
from .backends import (Backend, _execute_job, _nonfinite_path,  # noqa: F401
                       make_backend)
from .jobs import job_to_dict
from .metrics import BatchMetrics, JobMetrics, iterations_of, trace_counts_of
from .store import Flight, ResultStore, SingleFlight, flight_key


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate within a batch, in submission order."""

    job: Any
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    from_cache: bool = False
    wall_time: float = 0.0
    deduped: bool = False     #: fanned out from another lane's evaluation

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Dict[str, Any]:
        """Return the result dict, raising ``RuntimeError`` on failure."""
        if not self.ok:
            raise RuntimeError(
                f"{self.job.kind} job failed: "
                f"{self.error_type}: {self.error}")
        assert self.result is not None
        return self.result

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic JSON form (no wall time) for batch result files."""
        payload: Dict[str, Any] = {
            "kind": self.job.kind,
            "job": job_to_dict(self.job),
            "status": "ok" if self.ok else "failed",
        }
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
            payload["error_type"] = self.error_type
        return payload


@dataclass
class BatchReport:
    """Ordered outcomes plus the batch's instrumentation."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    metrics: BatchMetrics = field(default_factory=BatchMetrics)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failures

    def to_payload(self) -> List[Dict[str, Any]]:
        """Deterministic JSON form of the whole batch, in order."""
        return [outcome.to_payload() for outcome in self.outcomes]


class BatchExecutor:
    """Schedules job batches over a pluggable execution backend.

    Parameters
    ----------
    jobs:
        Worker count.  With ``backend`` unset, 1 (default) evaluates
        serially in-process and > 1 selects the persistent process
        backend with that many warm workers.
    cache:
        Optional result cache consulted before evaluating and updated
        with fresh successes.
    chunksize:
        Jobs handed to a process worker per pickle round-trip.  Defaults
        to ``max(1, pending // (4 * jobs))`` which keeps all workers
        busy while amortizing IPC for large batches.  Ignored by the
        serial and thread backends.
    backend:
        A name from :data:`repro.engine.backends.BACKEND_NAMES`
        (``serial``/``thread``/``process``) or a live
        :class:`~repro.engine.backends.Backend` instance to share.  The
        executor owns (and ``close()``\\ s) a backend it built from a
        name; a shared instance stays the caller's to close.
    flights:
        Optional shared :class:`~repro.engine.store.SingleFlight` table.
        Duplicate specs within one batch always collapse to a single
        evaluation (the leader's envelope fans out to every duplicate
        lane); passing a shared table additionally collapses identical
        specs across *racing* executors in the same process.
    """

    def __init__(self, jobs: int = 1, *, cache: Optional[ResultStore] = None,
                 chunksize: Optional[int] = None,
                 backend: Optional[Union[str, Backend]] = None,
                 flights: Optional[SingleFlight] = None) -> None:
        if jobs < 1:
            raise ValueError(f"worker count must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.cache = cache
        self.chunksize = chunksize
        self.flights = flights if flights is not None else SingleFlight()
        self._owns_backend = not isinstance(backend, Backend)
        if backend is None:
            backend = "serial" if jobs == 1 else "process"
        self.backend = make_backend(backend, workers=jobs,
                                    thread_name_prefix="repro-batch")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down an owned backend's workers (idempotent).

        A shared backend instance passed in by the caller is left
        running — whoever created it closes it.
        """
        if self._owns_backend:
            self.backend.close()

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def run(self, job_specs: Sequence[Any]) -> BatchReport:
        """Evaluate every job; outcomes are returned in submission order."""
        job_list = list(job_specs)
        report = BatchReport()
        report.metrics.workers = self.backend.workers
        report.metrics.backend = self.backend.name
        before = self.backend.stats.snapshot()
        start = time.perf_counter()

        # Serve cache hits in-process; only misses are evaluated.
        outcomes: List[Optional[JobOutcome]] = [None] * len(job_list)
        pending: List[int] = []
        for index, job in enumerate(job_list):
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                outcomes[index] = JobOutcome(job=job, result=cached,
                                             from_cache=True)
            else:
                pending.append(index)

        # Single-flight above the backend seam: one leader per unique
        # spec hash.  Duplicate specs in this batch — and identical
        # specs a racing executor sharing this flight table already
        # has in the air — follow the leader's envelope instead of
        # dispatching their own evaluation.  Leaders are dispatched as
        # one batch (collection order unchanged), so jobs=N stays
        # bitwise identical to jobs=1.
        leaders: List[int] = []
        leader_flights: Dict[int, Flight] = {}
        followers: List[tuple] = []
        for index in pending:
            is_leader, flight = self.flights.acquire(
                flight_key(job_list[index]))
            if is_leader:
                leaders.append(index)
                leader_flights[index] = flight
            else:
                followers.append((index, flight))

        try:
            envelopes = self._evaluate([job_list[i] for i in leaders])
        except BaseException as exc:
            # A whole-batch dispatch failure must still resolve every
            # leader's flight, or followers (here or in racing runs)
            # would wait forever on an evaluation nobody is running.
            for index in leaders:
                self.flights.publish_error(leader_flights[index], exc)
            raise

        for index, envelope in zip(leaders, envelopes):
            try:
                self.flights.publish(leader_flights[index], envelope)
            except Exception as exc:
                # Injected leader crash: the flight already resolved
                # with the failure (followers are answered); the
                # leader's own lane reports the same failure.
                envelope = {"ok": False, "error": str(exc),
                            "error_type": type(exc).__name__,
                            "traceback": "",
                            "wall_time": envelope.get("wall_time", 0.0)}
            outcomes[index] = self._outcome_from_envelope(
                job_list[index], envelope)

        for index, flight in followers:
            outcome = flight.wait()
            assert outcome is not None  # leaders always publish
            status, value = outcome
            if status == "error":
                outcomes[index] = JobOutcome(
                    job=job_list[index], error=str(value),
                    error_type=type(value).__name__, traceback="",
                    deduped=True)
            else:
                outcomes[index] = self._outcome_from_envelope(
                    job_list[index], value, deduped=True)

        for outcome in outcomes:
            assert outcome is not None
            report.outcomes.append(outcome)
            fallbacks, backtracks = trace_counts_of(outcome.result or {})
            report.metrics.record(JobMetrics(
                kind=outcome.job.kind,
                wall_time=outcome.wall_time,
                from_cache=outcome.from_cache,
                failed=not outcome.ok,
                newton_iterations=iterations_of(outcome.result or {}),
                retried=bool((outcome.result or {}).get("retried", False)),
                fallbacks=fallbacks,
                backtracks=backtracks,
                deduped=outcome.deduped))
        report.metrics.wall_time = time.perf_counter() - start
        after = self.backend.stats.snapshot()
        report.metrics.dispatches = (after["dispatches"]
                                     - before["dispatches"])
        report.metrics.worker_restarts = (after["worker_restarts"]
                                          - before["worker_restarts"])
        report.metrics.dispatch_wait = dict(after["dispatch_wait"])
        return report

    def run_one(self, job: Any) -> JobOutcome:
        """Evaluate a single job through the same cache/isolation path."""
        return self.run([job]).outcomes[0]

    # ------------------------------------------------------------------
    # The backend seam.
    # ------------------------------------------------------------------
    def _evaluate(self, job_list: List[Any]) -> List[Dict[str, Any]]:
        if not job_list:
            return []
        return self.backend.submit_batch(job_list, chunksize=self.chunksize)

    def _outcome_from_envelope(self, job: Any, envelope: Dict[str, Any],
                               *, deduped: bool = False) -> JobOutcome:
        if envelope["ok"]:
            if self.cache is not None and not deduped:
                # Followers skip the write-back: the leader already
                # stored the identical record.
                try:
                    self.cache.put(job, envelope["result"])
                except OSError:
                    # A cache write failure (full disk, permissions)
                    # must never fail a job whose result is in hand;
                    # the next run simply recomputes.
                    pass
            return JobOutcome(job=job, result=envelope["result"],
                              wall_time=0.0 if deduped
                              else envelope["wall_time"],
                              deduped=deduped)
        return JobOutcome(job=job, error=envelope["error"],
                          error_type=envelope["error_type"],
                          traceback=envelope["traceback"],
                          wall_time=0.0 if deduped
                          else envelope["wall_time"],
                          deduped=deduped)
