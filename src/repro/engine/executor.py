"""Batch scheduler: serial in-process or ``ProcessPoolExecutor`` backed.

The executor turns a sequence of job specs into an ordered sequence of
:class:`JobOutcome` records.  Guarantees:

* **Determinism** — results are collected in submission order and the
  result payloads contain no wall-clock data, so ``jobs=4`` is bitwise
  identical to ``jobs=1``.  The ``wall_time`` the ``_execute_job``
  envelope carries is *metrics-only*: it feeds ``JobMetrics`` and never
  enters the cached payload, ``JobOutcome.to_payload()`` or result
  equality (asserted by ``tests/test_engine_executor.py``).
* **Fault isolation** — a job that raises (``OptimizationError``,
  convergence failure, bad parameters, ...) is reported failed with its
  captured traceback; the rest of the batch completes.  The bounded
  RC-optimum re-seed retry for optimizer jobs lives in the job spec
  itself (:class:`repro.engine.jobs.OptimizeJob`), so every backend
  applies the same recovery.
* **Caching** — with a :class:`repro.engine.cache.ResultCache` attached,
  hits are served in-process without spawning work and fresh successes
  are written back.  Failures are never cached.

The serial backend (``jobs=1``, the default) runs everything in-process:
monkeypatching, shared ``lru_cache`` state and warm-start chaining all
behave exactly as direct function calls — which is why it is the default
evaluation path for :func:`repro.core.sweep.sweep_inductance`.
"""

from __future__ import annotations

import math
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..faults import hooks as _faults
from .cache import ResultCache
from .jobs import job_to_dict
from .metrics import BatchMetrics, JobMetrics, iterations_of, trace_counts_of


def _nonfinite_path(value: Any, path: str = "result") -> Optional[str]:
    """Dotted path of the first non-finite number in a result payload.

    ``trace`` subtrees are exempt: an optimizer trace legitimately
    records non-finite residuals from rejected probe steps.  Everywhere
    else a NaN/inf is a solver escape, never a valid answer.
    """
    if isinstance(value, float):
        return path if not math.isfinite(value) else None
    if isinstance(value, dict):
        for key, item in value.items():
            if key == "trace":
                continue
            found = _nonfinite_path(item, f"{path}.{key}")
            if found is not None:
                return found
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            found = _nonfinite_path(item, f"{path}[{index}]")
            if found is not None:
                return found
    return None


def _execute_job(job: Any) -> Dict[str, Any]:
    """Evaluate one job, never raising — the unit of fault isolation.

    Module-level so it pickles for the process-pool backend.  Returns an
    envelope ``{"ok", "result" | ("error", "error_type", "traceback"),
    "wall_time"}``.

    A result containing a non-finite number outside its ``trace`` is
    reported as that job's *failure*, not a success: a NaN that slipped
    out of a solver must never be cached or summarized as an answer
    (the serve layer applies the same screen per lane).
    """
    start = time.perf_counter()
    try:
        if _faults.ACTIVE is not None:
            _faults.sleep("executor.job.hang")
            _faults.fire("executor.job.error", kind=job.kind)
        result = job.run()
    except Exception as exc:  # noqa: BLE001 — isolate *any* job failure
        return {"ok": False,
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(),
                "wall_time": time.perf_counter() - start}
    bad = _nonfinite_path(result)
    if bad is not None:
        return {"ok": False,
                "error": f"job produced a non-finite value at {bad} "
                         f"(solver escape; result not cached)",
                "error_type": "DelaySolverError",
                "traceback": "",
                "wall_time": time.perf_counter() - start}
    return {"ok": True, "result": result,
            "wall_time": time.perf_counter() - start}


@dataclass(frozen=True)
class JobOutcome:
    """One job's fate within a batch, in submission order."""

    job: Any
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    traceback: Optional[str] = None
    from_cache: bool = False
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Dict[str, Any]:
        """Return the result dict, raising ``RuntimeError`` on failure."""
        if not self.ok:
            raise RuntimeError(
                f"{self.job.kind} job failed: "
                f"{self.error_type}: {self.error}")
        assert self.result is not None
        return self.result

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic JSON form (no wall time) for batch result files."""
        payload: Dict[str, Any] = {
            "kind": self.job.kind,
            "job": job_to_dict(self.job),
            "status": "ok" if self.ok else "failed",
        }
        if self.ok:
            payload["result"] = self.result
        else:
            payload["error"] = self.error
            payload["error_type"] = self.error_type
        return payload


@dataclass
class BatchReport:
    """Ordered outcomes plus the batch's instrumentation."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    metrics: BatchMetrics = field(default_factory=BatchMetrics)

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def all_ok(self) -> bool:
        return not self.failures

    def to_payload(self) -> List[Dict[str, Any]]:
        """Deterministic JSON form of the whole batch, in order."""
        return [outcome.to_payload() for outcome in self.outcomes]


class BatchExecutor:
    """Schedules job batches over a serial or process-pool backend.

    Parameters
    ----------
    jobs:
        Worker count.  1 (default) evaluates serially in-process; > 1
        uses a ``ProcessPoolExecutor`` with that many workers.
    cache:
        Optional result cache consulted before evaluating and updated
        with fresh successes.
    chunksize:
        Jobs handed to a pool worker per pickle round-trip.  Defaults to
        ``max(1, pending // (4 * jobs))`` which keeps all workers busy
        while amortizing IPC for large batches.
    """

    def __init__(self, jobs: int = 1, *, cache: Optional[ResultCache] = None,
                 chunksize: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"worker count must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.cache = cache
        self.chunksize = chunksize

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def run(self, job_specs: Sequence[Any]) -> BatchReport:
        """Evaluate every job; outcomes are returned in submission order."""
        job_list = list(job_specs)
        report = BatchReport()
        report.metrics.workers = self.jobs
        start = time.perf_counter()

        # Serve cache hits in-process; only misses are evaluated.
        outcomes: List[Optional[JobOutcome]] = [None] * len(job_list)
        pending: List[int] = []
        for index, job in enumerate(job_list):
            cached = self.cache.get(job) if self.cache is not None else None
            if cached is not None:
                outcomes[index] = JobOutcome(job=job, result=cached,
                                             from_cache=True)
            else:
                pending.append(index)

        for index, envelope in zip(pending, self._evaluate(
                [job_list[i] for i in pending])):
            outcomes[index] = self._outcome_from_envelope(
                job_list[index], envelope)

        for outcome in outcomes:
            assert outcome is not None
            report.outcomes.append(outcome)
            fallbacks, backtracks = trace_counts_of(outcome.result or {})
            report.metrics.record(JobMetrics(
                kind=outcome.job.kind,
                wall_time=outcome.wall_time,
                from_cache=outcome.from_cache,
                failed=not outcome.ok,
                newton_iterations=iterations_of(outcome.result or {}),
                retried=bool((outcome.result or {}).get("retried", False)),
                fallbacks=fallbacks,
                backtracks=backtracks))
        report.metrics.wall_time = time.perf_counter() - start
        return report

    def run_one(self, job: Any) -> JobOutcome:
        """Evaluate a single job through the same cache/isolation path."""
        return self.run([job]).outcomes[0]

    # ------------------------------------------------------------------
    # Backends.
    # ------------------------------------------------------------------
    def _evaluate(self, job_list: List[Any]) -> List[Dict[str, Any]]:
        if not job_list:
            return []
        if self.jobs == 1:
            return [_execute_job(job) for job in job_list]
        chunksize = self.chunksize or max(
            1, len(job_list) // (4 * self.jobs))
        try:
            if _faults.ACTIVE is not None:
                _faults.fire("executor.pool.broken")
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(_execute_job, job_list,
                                     chunksize=chunksize))
        except BrokenProcessPool as exc:
            # A worker died hard (SIGKILL, os._exit, OOM): per-job fault
            # isolation cannot name the culprit, so fail the batch with
            # actionable context instead of a bare pool traceback.
            raise RuntimeError(
                f"process pool broke while evaluating {len(job_list)} "
                f"jobs with {self.jobs} workers (a worker died "
                f"mid-chunk); re-run with jobs=1 to isolate the failing "
                f"job: {exc}") from exc

    def _outcome_from_envelope(self, job: Any,
                               envelope: Dict[str, Any]) -> JobOutcome:
        if envelope["ok"]:
            if self.cache is not None:
                try:
                    self.cache.put(job, envelope["result"])
                except OSError:
                    # A cache write failure (full disk, permissions)
                    # must never fail a job whose result is in hand;
                    # the next run simply recomputes.
                    pass
            return JobOutcome(job=job, result=envelope["result"],
                              wall_time=envelope["wall_time"])
        return JobOutcome(job=job, error=envelope["error"],
                          error_type=envelope["error_type"],
                          traceback=envelope["traceback"],
                          wall_time=envelope["wall_time"])
