"""Lightweight instrumentation attached to every batch report.

The metrics are observability data, deliberately kept *out* of the job
results themselves: result payloads stay deterministic (cacheable,
bitwise-reproducible across worker counts) while wall times, cache
accounting and failure counts live here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

#: Percentiles reported by :func:`latency_percentiles`, in order.
LATENCY_PERCENTILES = (0.50, 0.95, 0.99)


def latency_percentiles(samples: Sequence[float]) -> Dict[str, float]:
    """Nearest-rank p50/p95/p99 of a latency sample set (``{}`` if empty).

    The one shared definition of "latency percentile" in the codebase:
    :meth:`BatchMetrics.format_summary` feeds it per-job wall times and
    the serve layer's ``ServerMetrics`` feeds it per-request latencies,
    so a ``repro-batch`` footer and a ``/metrics`` response are directly
    comparable.  Nearest-rank (ceil(p*n)) on the sorted samples: exact,
    monotone in p, and never interpolates a latency nobody observed.
    """
    values = sorted(float(sample) for sample in samples)
    if not values:
        return {}
    picks: Dict[str, float] = {}
    for p in LATENCY_PERCENTILES:
        rank = min(len(values) - 1, max(0, math.ceil(p * len(values)) - 1))
        picks[f"p{int(round(100 * p))}"] = values[rank]
    return picks


@dataclass(frozen=True)
class JobMetrics:
    """Per-job observability record (parallel to one ``JobOutcome``)."""

    kind: str
    wall_time: float          #: seconds spent evaluating (0.0 on cache hit)
    from_cache: bool
    failed: bool
    newton_iterations: int    #: solver iterations reported by the result
    retried: bool             #: recovered via the RC-optimum re-seed
    fallbacks: int = 0        #: Newton -> direct fallbacks in the traces
    backtracks: int = 0       #: Newton backtracking halvings in the traces
    deduped: bool = False     #: fanned out from another lane's evaluation


def iterations_of(result: Dict[str, Any]) -> int:
    """Extract the solver iteration count a result payload reports, if any."""
    for key in ("iterations", "newton_iterations"):
        value = result.get(key)
        if isinstance(value, int):
            return value
    return 0


def trace_counts_of(result: Dict[str, Any]) -> tuple:
    """(fallbacks, backtracks) summed over the optimization traces a
    result payload carries — its own ``trace`` (OptimizeJob), per-lane
    ``results[i]["trace"]`` entries (BatchOptimizeJob), or a sweep's
    pre-aggregated ``fallback_points``/``backtrack_steps`` columns."""
    traces = []
    if isinstance(result.get("trace"), dict):
        traces.append(result["trace"])
    for lane in result.get("results") or []:
        if isinstance(lane, dict) and isinstance(lane.get("trace"), dict):
            traces.append(lane["trace"])
    fallbacks = sum(
        1 for trace in traces
        if any(event.get("kind") == "fallback"
               for event in trace.get("events", [])))
    backtracks = sum(int(step.get("backtracks", 0)) for trace in traces
                     for step in trace.get("steps", []))
    if not traces:
        fallbacks = len(result.get("fallback_points") or [])
        value = result.get("backtrack_steps")
        backtracks = value if isinstance(value, int) else 0
    return fallbacks, backtracks


@dataclass
class BatchMetrics:
    """Aggregated instrumentation for one executor batch."""

    jobs_total: int = 0
    jobs_failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    deduplicated: int = 0            #: lanes answered by another lane's run
    wall_time: float = 0.0           #: whole-batch wall time in seconds
    evaluation_time: float = 0.0     #: sum of per-job evaluation times
    newton_iterations: int = 0
    retries: int = 0
    newton_fallbacks: int = 0        #: Newton -> direct fallback events
    backtrack_steps: int = 0         #: Newton backtracking halvings
    workers: int = 1
    backend: str = "serial"          #: execution backend name
    dispatches: int = 0              #: backend dispatches this batch made
    worker_restarts: int = 0         #: broken pools rebuilt during the batch
    dispatch_wait: Dict[str, float] = field(default_factory=dict)
    per_job: List[JobMetrics] = field(default_factory=list)

    def record(self, job_metrics: JobMetrics) -> None:
        self.per_job.append(job_metrics)
        self.jobs_total += 1
        if job_metrics.failed:
            self.jobs_failed += 1
        elif job_metrics.from_cache:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if job_metrics.deduped:
            self.deduplicated += 1
        self.evaluation_time += job_metrics.wall_time
        self.newton_iterations += job_metrics.newton_iterations
        if job_metrics.retried:
            self.retries += 1
        self.newton_fallbacks += job_metrics.fallbacks
        self.backtrack_steps += job_metrics.backtracks

    @property
    def jobs_succeeded(self) -> int:
        return self.jobs_total - self.jobs_failed

    @property
    def cache_hit_rate(self) -> float:
        """Hits over all *successful* evaluations; 0.0 for an empty batch."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def format_summary(self) -> str:
        """Human-readable one-paragraph summary for batch reports."""
        lines = [
            f"jobs: {self.jobs_total} total, {self.jobs_succeeded} ok, "
            f"{self.jobs_failed} failed ({self.workers} worker"
            f"{'s' if self.workers != 1 else ''})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.cache_hit_rate:.1f}% hit rate)"
            + (f", {self.deduplicated} deduplicated"
               if self.deduplicated else ""),
            f"time: {self.wall_time:.3f}s wall, "
            f"{self.evaluation_time:.3f}s evaluating",
            f"solver: {self.newton_iterations} iterations, "
            f"{self.newton_fallbacks} direct fallbacks, "
            f"{self.backtrack_steps} backtracking steps, "
            f"{self.retries} RC re-seed retries",
        ]
        backend_line = (f"backend: {self.backend}, "
                        f"{self.dispatches} dispatch"
                        f"{'es' if self.dispatches != 1 else ''}, "
                        f"{self.worker_restarts} worker restart"
                        f"{'s' if self.worker_restarts != 1 else ''}")
        if self.dispatch_wait:
            backend_line += ", dispatch wait " + " ".join(
                f"{name}={value:.4g}s"
                for name, value in sorted(self.dispatch_wait.items()))
        lines.append(backend_line)
        percentiles = latency_percentiles(
            [job.wall_time for job in self.per_job])
        if percentiles:
            # Cache hits count at their true ~0 s latency, matching how
            # the serve layer reports hit-path response times.
            lines.append(
                "latency: " + " ".join(
                    f"{name}={value:.4g}s"
                    for name, value in percentiles.items())
                + " (per-job wall time)")
        return "\n".join(lines)
