"""Lightweight instrumentation attached to every batch report.

The metrics are observability data, deliberately kept *out* of the job
results themselves: result payloads stay deterministic (cacheable,
bitwise-reproducible across worker counts) while wall times, cache
accounting and failure counts live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass(frozen=True)
class JobMetrics:
    """Per-job observability record (parallel to one ``JobOutcome``)."""

    kind: str
    wall_time: float          #: seconds spent evaluating (0.0 on cache hit)
    from_cache: bool
    failed: bool
    newton_iterations: int    #: solver iterations reported by the result
    retried: bool             #: recovered via the RC-optimum re-seed


def iterations_of(result: Dict[str, Any]) -> int:
    """Extract the solver iteration count a result payload reports, if any."""
    for key in ("iterations", "newton_iterations"):
        value = result.get(key)
        if isinstance(value, int):
            return value
    return 0


@dataclass
class BatchMetrics:
    """Aggregated instrumentation for one executor batch."""

    jobs_total: int = 0
    jobs_failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time: float = 0.0           #: whole-batch wall time in seconds
    evaluation_time: float = 0.0     #: sum of per-job evaluation times
    newton_iterations: int = 0
    retries: int = 0
    workers: int = 1
    per_job: List[JobMetrics] = field(default_factory=list)

    def record(self, job_metrics: JobMetrics) -> None:
        self.per_job.append(job_metrics)
        self.jobs_total += 1
        if job_metrics.failed:
            self.jobs_failed += 1
        elif job_metrics.from_cache:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self.evaluation_time += job_metrics.wall_time
        self.newton_iterations += job_metrics.newton_iterations
        if job_metrics.retried:
            self.retries += 1

    @property
    def jobs_succeeded(self) -> int:
        return self.jobs_total - self.jobs_failed

    @property
    def cache_hit_rate(self) -> float:
        """Hits over all *successful* evaluations; 0.0 for an empty batch."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    def format_summary(self) -> str:
        """Human-readable one-paragraph summary for batch reports."""
        lines = [
            f"jobs: {self.jobs_total} total, {self.jobs_succeeded} ok, "
            f"{self.jobs_failed} failed ({self.workers} worker"
            f"{'s' if self.workers != 1 else ''})",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100.0 * self.cache_hit_rate:.1f}% hit rate)",
            f"time: {self.wall_time:.3f}s wall, "
            f"{self.evaluation_time:.3f}s evaluating",
            f"solver: {self.newton_iterations} iterations, "
            f"{self.retries} RC re-seed retries",
        ]
        return "\n".join(lines)
