"""Batch-evaluation engine: job specs, caching, scheduling, metrics.

This package turns the library's one-shot functions into a job-oriented
batch service.  Declarative job specs (:mod:`repro.engine.jobs`) are
content-addressed into an on-disk result cache
(:mod:`repro.engine.cache`) and scheduled over a serial or process-pool
backend (:mod:`repro.engine.executor`) with per-job fault isolation and
batch instrumentation (:mod:`repro.engine.metrics`).  The ``repro-batch``
CLI (:mod:`repro.engine.cli`) evaluates JSON/CSV manifests
(:mod:`repro.engine.manifest`).

The engine is the single evaluation path:
:func:`repro.core.sweep.sweep_inductance` and the ``repro-experiments``
runner both submit their work through it.
"""

from .backends import (BACKEND_NAMES, Backend, BackendStats, ProcessBackend,
                       SerialBackend, ThreadBackend, make_backend)
from .cache import CacheStats, ResultCache, code_version_salt, \
    default_cache_dir
from .executor import BatchExecutor, BatchReport, JobOutcome
from .store import (STORE_NAMES, DiskStore, MemoryStore, ResultStore,
                    SingleFlight, TieredStore, flight_key, make_store)
from .jobs import (JOB_TYPES, BatchDelayJob, BatchOptimizeJob,
                   CriticalInductanceJob, DelayJob, ExperimentJob,
                   OptimizeJob, SweepJob, TransientJob, job_from_dict,
                   job_to_dict, register_job_type)
from .manifest import ManifestError, load_manifest
from .metrics import BatchMetrics, JobMetrics, latency_percentiles

__all__ = [
    "BACKEND_NAMES", "Backend", "BackendStats",
    "BatchDelayJob", "BatchExecutor", "BatchMetrics", "BatchOptimizeJob",
    "BatchReport", "CacheStats", "CriticalInductanceJob",
    "DelayJob", "DiskStore", "ExperimentJob", "JOB_TYPES", "JobMetrics",
    "JobOutcome", "ManifestError", "MemoryStore", "OptimizeJob",
    "ProcessBackend", "ResultCache", "ResultStore", "STORE_NAMES",
    "SerialBackend", "SingleFlight", "SweepJob", "ThreadBackend",
    "TieredStore", "TransientJob", "code_version_salt",
    "default_cache_dir", "flight_key", "job_from_dict", "job_to_dict",
    "latency_percentiles", "load_manifest", "make_backend", "make_store",
    "register_job_type",
]
