"""Published baseline models the paper compares against.

* :mod:`~repro.baselines.kahng_muddu` — the analytical two-pole delay
  approximations of Kahng & Muddu (TCAD 1997), accurate only far from
  critical damping (the paper's Sec. 2.1 critique).
* :mod:`~repro.baselines.ismail_friedman` — the curve-fitted repeater
  insertion formulas of Ismail & Friedman (DAC 1999 / TVLSI 2000), valid
  only over the fitted parameter ranges (the paper's Sec. 2.2 critique).
"""

from .ismail_friedman import (IFOptimum, if_optimum, t_lr,
                              validity_ranges_satisfied)
from .kahng_muddu import (km_applicability, km_delay,
                          km_delay_critically_damped, km_delay_overdamped,
                          km_delay_underdamped)
from .refit import RefitResult, refit_if_coefficients

__all__ = [
    "IFOptimum", "if_optimum", "t_lr", "validity_ranges_satisfied",
    "km_applicability", "km_delay", "km_delay_critically_damped",
    "km_delay_overdamped", "km_delay_underdamped",
    "RefitResult", "refit_if_coefficients",
]
