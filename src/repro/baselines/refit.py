"""Refit the Ismail-Friedman functional form to the exact optimizer.

Ismail & Friedman obtained  h_opt/h_RC = (1 + a_h T^3)^{b_h}  and
k_RC/k_opt = (1 + a_k T^3)^{b_k}  by curve-fitting circuit simulations.
Since this repository has the *exact* optimizer the paper proposes, we
can run the fit the other way: sweep the exact optima over l, express
them against the dimensionless T_LR of :mod:`.ismail_friedman`, and
least-squares fit the same functional form.  The result quantifies how
much of the optimizer's behaviour their ansatz can capture (the residual
is the structural error of curve fitting, the paper's core critique) and
yields our own (a, b) coefficients for fast estimation.

Because the exact optimum at l = 0 sits ~5% below the Elmore closed form
(the Pade-vs-Elmore offset of Fig. 5, which the IF form cannot express),
the ratios are normalized to their l = 0 values before fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.params import DriverParams, LineParams
from ..core.sweep import sweep_inductance
from ..errors import ParameterError
from .ismail_friedman import t_lr


@dataclass(frozen=True)
class RefitResult:
    """Fitted (1 + a T^3)^b coefficients against the exact optimizer."""

    a_h: float
    b_h: float
    a_k: float
    b_k: float
    max_residual_h: float     #: worst |fit/exact - 1| over the sweep
    max_residual_k: float
    t_values: np.ndarray
    h_ratios: np.ndarray      #: exact h ratios, l=0-normalized
    k_ratios: np.ndarray      #: exact k_RC/k_opt ratios, l=0-normalized

    def predict_h_ratio(self, t: float) -> float:
        """Fitted h_opt/h_opt(l=0) at dimensionless inductance t."""
        return (1.0 + self.a_h * t ** 3) ** self.b_h

    def predict_k_ratio(self, t: float) -> float:
        """Fitted k_opt(l=0)/k_opt at dimensionless inductance t."""
        return (1.0 + self.a_k * t ** 3) ** self.b_k


def _fit_power_form(t: np.ndarray, ratios: np.ndarray) -> tuple[float, float]:
    """Least-squares (a, b) for ratio = (1 + a t^3)^b, ratio(0) = 1."""
    from scipy.optimize import least_squares

    mask = t > 0.0

    def residuals(params: np.ndarray) -> np.ndarray:
        a, b = params
        model = np.power(1.0 + np.abs(a) * t[mask] ** 3, b)
        return np.log(model) - np.log(ratios[mask])

    solution = least_squares(residuals, x0=np.array([0.2, 0.3]),
                             bounds=([1e-6, 1e-3], [100.0, 5.0]))
    a, b = float(abs(solution.x[0])), float(solution.x[1])
    return a, b


def refit_if_coefficients(line_zero_l: LineParams, driver: DriverParams, *,
                          l_values, f: float = 0.5) -> RefitResult:
    """Fit the IF ansatz to the exact optimizer over the given l sweep.

    Parameters
    ----------
    l_values:
        Inductances per unit length (H/m), ascending, starting at (or
        near) zero — the first point provides the normalization.
    """
    l_array = np.asarray(list(l_values), dtype=float)
    if l_array.size < 4:
        raise ParameterError("need at least 4 sweep points to fit")
    sweep = sweep_inductance(line_zero_l, driver, l_array, f)

    t = np.array([t_lr(line_zero_l.with_inductance(float(l)), driver)
                  for l in l_array])
    h_ratios = sweep.h_opt / sweep.h_opt[0]
    k_ratios = sweep.k_opt[0] / sweep.k_opt        # inverted: grows with l

    a_h, b_h = _fit_power_form(t, h_ratios)
    a_k, b_k = _fit_power_form(t, k_ratios)

    fit_h = np.power(1.0 + a_h * t ** 3, b_h)
    fit_k = np.power(1.0 + a_k * t ** 3, b_k)
    return RefitResult(
        a_h=a_h, b_h=b_h, a_k=a_k, b_k=b_k,
        max_residual_h=float(np.max(np.abs(fit_h / h_ratios - 1.0))),
        max_residual_k=float(np.max(np.abs(fit_k / k_ratios - 1.0))),
        t_values=t, h_ratios=h_ratios, k_ratios=k_ratios)
