"""Ismail-Friedman curve-fitted repeater insertion (baseline [21, 22]).

Ismail & Friedman (DAC 1999 / TVLSI 2000) fitted the 50% delay of an RLC
stage to circuit simulations and derived empirical corrections to the
classical RC repeater optimum:

    h_opt = h_optRC * [1 + 0.18 T_LR^3]^0.30
    k_opt = k_optRC / [1 + 0.16 T_LR^3]^0.24

driven by a dimensionless inductance-to-resistance ratio T_LR.  We
reconstruct T_LR as the segment damping variable evaluated at the RC
optimum: T_LR = (1/(r h_RC)) sqrt(l/c) with h_RC = sqrt(2 r_s (c_0+c_p)
/ (r c)), which simplifies to

    T_LR = sqrt( (l / r) / (2 r_s (c_0 + c_p)) ).

NOTE ON FIDELITY: the original papers' exact normalization of T_LR is not
reproduced verbatim here (it may differ by an O(1) constant); this module
exists as the *shape* baseline the reproduced paper criticizes — a fitted
formula valid only for 50% delay and only when c h / (c_0 k) and
r_s / (k r h) lie in [0, 1] — and the validity-range check below is part
of that critique's reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.elmore import rc_optimum
from ..core.params import DriverParams, LineParams
from ..errors import ParameterError

#: Fitted exponents/coefficients from Ismail & Friedman (TVLSI 2000).
_H_COEFFICIENT = 0.18
_H_EXPONENT = 0.30
_K_COEFFICIENT = 0.16
_K_EXPONENT = 0.24


@dataclass(frozen=True)
class IFOptimum:
    """Ismail-Friedman empirical repeater optimum."""

    h_opt: float
    k_opt: float
    t_lr: float

    @property
    def inductance_negligible(self) -> bool:
        """True when the correction factors are within 1% of unity."""
        return _H_COEFFICIENT * self.t_lr ** 3 < 0.01


def t_lr(line: LineParams, driver: DriverParams) -> float:
    """Dimensionless inductance-to-resistance ratio T_LR (reconstruction).

    T_LR = sqrt((l/r) / (2 r_s (c_0 + c_p))): the ratio of the line's L/R
    time constant to the RC time scale of an optimally buffered segment.
    Zero inductance gives T_LR = 0 and the formulas collapse to the RC
    optimum.
    """
    return math.sqrt((line.l / line.r)
                     / (2.0 * driver.r_s * (driver.c_0 + driver.c_p)))


def if_optimum(line: LineParams, driver: DriverParams) -> IFOptimum:
    """Empirical (h_opt, k_opt) after Ismail & Friedman.

    Unlike :func:`repro.core.optimize.optimize_repeater` this is valid only
    for the 50% delay and inside the fitted parameter ranges (use
    :func:`validity_ranges_satisfied` to check the result).
    """
    rc_opt = rc_optimum(line, driver)
    ratio = t_lr(line, driver)
    h_factor = (1.0 + _H_COEFFICIENT * ratio ** 3) ** _H_EXPONENT
    k_factor = (1.0 + _K_COEFFICIENT * ratio ** 3) ** _K_EXPONENT
    return IFOptimum(h_opt=rc_opt.h_opt * h_factor,
                     k_opt=rc_opt.k_opt / k_factor,
                     t_lr=ratio)


def validity_ranges_satisfied(line: LineParams, driver: DriverParams,
                              h: float, k: float) -> bool:
    """Check the fitted formulas' published validity ranges at (h, k).

    Ismail & Friedman's delay fit requires both the capacitance ratio
    c h / (c_0 k) and the resistance ratio r_s / (k r h) to lie in [0, 1].
    The reproduced paper points out that realistic optima violate these
    (e.g. the total line capacitance of an optimal global-wire segment far
    exceeds the load capacitance).
    """
    if h <= 0.0 or k <= 0.0:
        raise ParameterError("h and k must be positive")
    capacitance_ratio = line.c * h / (driver.c_0 * k)
    resistance_ratio = driver.r_s / (k * line.r * h)
    return 0.0 <= capacitance_ratio <= 1.0 and 0.0 <= resistance_ratio <= 1.0
