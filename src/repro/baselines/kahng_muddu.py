"""Kahng-Muddu style analytical delay approximations (baseline [23]).

Kahng & Muddu (TCAD 1997) approximate the threshold delay of the two-pole
response with closed forms that are accurate when the system is *highly*
overdamped or *highly* underdamped (|b1^2 - 4 b2| >> |b2|), and fall back
to the critically damped closed form in between.  The reproduced paper's
Sec. 2.1 argument is that at the delay-optimal (h, k) the line sits close
to critical damping (l ~ l_crit, Fig. 4), where the fallback's delay
depends only on b1 — which is independent of the inductance — so these
closed forms cannot drive an inductance-aware optimization.  This module
implements the three branches so the benchmark suite can quantify exactly
that failure mode against the exact Newton solve.
"""

from __future__ import annotations

import math

from ..errors import ParameterError

#: |b1^2 - 4 b2| must exceed this multiple of b2 for the asymptotic
#: (over/underdamped) branches to be considered applicable.
APPLICABILITY_FACTOR = 1.0


def km_applicability(b1: float, b2: float, *,
                     factor: float = APPLICABILITY_FACTOR) -> bool:
    """True when |b1^2 - 4 b2| >> |b2| so the asymptotic branches apply."""
    return abs(b1 * b1 - 4.0 * b2) > factor * abs(b2)


def km_delay_overdamped(b1: float, b2: float, f: float) -> float:
    """Dominant-pole delay for well-separated real poles.

    Drops the fast-pole term of the step response, giving
    tau = ln[ s2 / ((1 - f)(s2 - s1)) ] / (-s1) with s1 the slow pole.
    """
    _check(b1, b2, f)
    disc = b1 * b1 - 4.0 * b2
    if disc <= 0.0:
        raise ParameterError("overdamped branch requires b1^2 > 4 b2")
    root = math.sqrt(disc)
    s1 = (-b1 + root) / (2.0 * b2)      # slow (dominant) pole
    s2 = (-b1 - root) / (2.0 * b2)      # fast pole
    argument = s2 / ((1.0 - f) * (s2 - s1))
    return math.log(argument) / (-s1)


def km_delay_underdamped(b1: float, b2: float, f: float) -> float:
    """Phase-based delay for strongly underdamped (conjugate) poles.

    With poles sigma +- j omega, v(t) = 1 - e^{sigma t} sin(omega t +
    theta)/sqrt(1 - zeta^2), theta = acos(zeta).  Neglecting the envelope
    decay over the rise (valid when highly underdamped), the first
    f-crossing solves sin(omega t + theta) = (1 - f) sqrt(1 - zeta^2) on
    the descending lobe:

        tau = [pi - asin((1-f) sqrt(1-zeta^2)) - acos(zeta)] / omega
    """
    _check(b1, b2, f)
    disc = b1 * b1 - 4.0 * b2
    if disc >= 0.0:
        raise ParameterError("underdamped branch requires b1^2 < 4 b2")
    omega = math.sqrt(-disc) / (2.0 * b2)
    zeta = b1 / (2.0 * math.sqrt(b2))
    sin_target = (1.0 - f) * math.sqrt(1.0 - zeta * zeta)
    return (math.pi - math.asin(sin_target) - math.acos(zeta)) / omega


def km_delay_critically_damped(b1: float, f: float) -> float:
    """Delay of the critically damped response — a function of b1 alone.

    With the double pole p = -2/b1 (using b2 = b1^2/4), the response is
    v(t) = 1 - (1 - p t) e^{p t} and the f-crossing solves
    (1 + x) e^{-x} = 1 - f with x = -p tau, i.e. tau = x_f b1 / 2.
    Because b1 carries no inductance dependence, this branch predicts a
    delay *independent of l* — the failure the reproduced paper exploits.
    """
    if b1 <= 0.0:
        raise ParameterError(f"b1 must be positive, got {b1}")
    if not 0.0 < f < 1.0:
        raise ParameterError(f"threshold must be in (0, 1), got {f}")
    # Solve (1 + x) exp(-x) = 1 - f by Newton; x = 1.678... for f = 0.5.
    target = 1.0 - f
    x = 1.7
    for _ in range(60):
        value = (1.0 + x) * math.exp(-x) - target
        slope = -x * math.exp(-x)
        step = value / slope
        x -= step
        if abs(step) < 1e-14 * max(x, 1.0):
            break
    return 0.5 * x * b1


def km_delay(b1: float, b2: float, f: float = 0.5, *,
             applicability_factor: float = APPLICABILITY_FACTOR) -> float:
    """Kahng-Muddu delay: asymptotic branch if applicable, else critical.

    This is the full baseline behaviour the reproduced paper describes:
    near critical damping (|b1^2 - 4 b2| comparable to b2) the returned
    delay collapses to the b1-only critically-damped value.
    """
    _check(b1, b2, f)
    if km_applicability(b1, b2, factor=applicability_factor):
        if b1 * b1 > 4.0 * b2:
            return km_delay_overdamped(b1, b2, f)
        return km_delay_underdamped(b1, b2, f)
    return km_delay_critically_damped(b1, f)


def _check(b1: float, b2: float, f: float) -> None:
    if b1 <= 0.0 or b2 <= 0.0:
        raise ParameterError(f"moments must be positive, got b1={b1}, b2={b2}")
    if not 0.0 < f < 1.0:
        raise ParameterError(f"threshold must be in (0, 1), got {f}")
