"""Delay oracles: independent evaluation paths behind one interface.

Each oracle computes the f*100% threshold delay of a
:class:`~repro.verify.cases.VerifyCase` by a *different* route through the
repo, so pairwise agreement is evidence of correctness rather than
repetition:

================  ==========================================================
``two_pole``      Analytic two-pole Padé model + masked Newton/bisection
                  solve (the vectorized ``core.kernels`` pipeline:
                  moments -> poles -> bracketed first crossing) — the
                  paper's Eqs. 2-3 and the subject under test.
``elmore``        Single-pole (dominant-pole) model with time constant b1:
                  tau = -b1 ln(1 - f).  The inductance-blind RC baseline;
                  exact limit of the two-pole model as the poles separate.
``kahng_muddu``   Kahng-Muddu closed-form branches (baseline [23]).
``ismail_friedman``  Ismail-Friedman curve-fitted 50% delay
                  tau = (e^{-2.9 zeta^1.35} + 1.48 zeta)/omega_n
                  (TVLSI 2000); valid at f = 0.5 only.
``talbot``        Talbot numerical inversion of the *exact* transfer
                  function (Eq. 1) + first-crossing search
                  (``analysis.laplace``).  Analytically independent of the
                  Padé truncation.
``mna``           MNA transient simulation of the discretized ladder
                  (``circuits.builders`` + ``circuits.transient``) — the
                  repo's SPICE substitute, independent of every closed
                  form.  Expensive; gated behind ``expensive=True``.
================  ==========================================================

Oracles return a :class:`DelayObservation` — a plain, JSON-stable record —
and declare their domain via :meth:`Oracle.supports` (e.g. the
Ismail-Friedman fit only exists for f = 0.5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..analysis.laplace import step_response_exact
from ..analysis.waveform import Waveform
from ..baselines.kahng_muddu import km_delay
from ..core.kernels import (DAMPING_BY_CODE, StageBatch, classify_damping_v,
                            compute_moments_v, threshold_delay_v)
from ..core.moments import compute_moments
from ..core.poles import classify_damping
from ..errors import ParameterError
from .cases import VerifyCase

#: Time-grid points used by the sampled (talbot / mna) oracles.
SAMPLED_GRID_POINTS = 400

#: Sampling horizon in units of the Elmore time constant b1.  b1 is the
#: slowest physically meaningful time scale of the stage and — unlike the
#: pole time scales — cannot be corrupted by an inductance-term bug, so
#: the reference oracles stay independent of the code paths they check.
SAMPLED_HORIZON_B1 = 12.0

#: Ladder sections used by the MNA oracle (test_integration-grade accuracy).
MNA_SEGMENTS = 20


@dataclass(frozen=True)
class DelayObservation:
    """One oracle's verdict on one case — plain and JSON-stable.

    Attributes
    ----------
    oracle:
        Name of the oracle that produced the observation.
    tau:
        First time the response reaches f, in seconds.
    threshold:
        The threshold fraction f that was solved for.
    damping:
        Two-pole damping classification of the underlying stage
        (informational; identical across oracles for the same case).
    extras:
        Oracle-specific diagnostics (iteration counts, grid sizes, ...).
        Part of the golden fixture, so they must be deterministic.
    """

    oracle: str
    tau: float
    threshold: float
    damping: str
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"oracle": self.oracle, "tau": self.tau,
                "threshold": self.threshold, "damping": self.damping,
                "extras": dict(self.extras)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DelayObservation":
        return cls(oracle=str(data["oracle"]), tau=float(data["tau"]),
                   threshold=float(data["threshold"]),
                   damping=str(data["damping"]),
                   extras=dict(data.get("extras", {})))


class Oracle:
    """Base class: one independent delay-evaluation path.

    Subclasses set ``name`` (the registry key), optionally flip
    ``expensive`` (excluded from default cheap sweeps), and implement
    :meth:`evaluate`.
    """

    name: str = ""
    expensive: bool = False

    def supports(self, case: VerifyCase) -> bool:
        """True when the oracle's domain covers the case (default: always)."""
        return True

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        raise NotImplementedError

    def evaluate_batch(self, cases: List[VerifyCase]
                       ) -> List[DelayObservation]:
        """Evaluate many cases; kernel-backed oracles override this with a
        single vectorized solve (default: loop over :meth:`evaluate`)."""
        return [self.evaluate(case) for case in cases]

    # ------------------------------------------------------------------
    def _damping_of(self, case: VerifyCase) -> str:
        moments = compute_moments(case.stage())
        return classify_damping(moments.b1, moments.b2).value


def _case_batch(cases: List[VerifyCase]) -> StageBatch:
    """Pack the cases' stages into one kernel batch."""
    return StageBatch.from_stages([case.stage() for case in cases])


class TwoPoleOracle(Oracle):
    """The paper's two-pole Padé model + masked Newton/bisection solve.

    Routed through :func:`repro.core.kernels.threshold_delay_v`; a whole
    case matrix is one vectorized solve, and a single case is the same
    kernel with batch size one, so the two entry points cannot disagree.
    """

    name = "two_pole"

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        return self.evaluate_batch([case])[0]

    def evaluate_batch(self, cases: List[VerifyCase]
                       ) -> List[DelayObservation]:
        if not cases:
            return []
        solved = threshold_delay_v(_case_batch(cases),
                                   np.array([case.f for case in cases]))
        return [DelayObservation(
                    oracle=self.name, tau=float(solved.tau[i]),
                    threshold=cases[i].f,
                    damping=DAMPING_BY_CODE[int(solved.damping[i])].value,
                    extras={"newton_iterations":
                            int(solved.newton_iterations[i])})
                for i in range(len(cases))]


class ElmoreOracle(Oracle):
    """Single-pole model with the Elmore time constant b1.

    v(t) = 1 - exp(-t/b1) gives tau = -b1 ln(1 - f); at f = 0.5 this is
    the classical 0.693 b1.  Blind to inductance by construction.
    Batched through :func:`repro.core.kernels.compute_moments_v`.
    """

    name = "elmore"

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        return self.evaluate_batch([case])[0]

    def evaluate_batch(self, cases: List[VerifyCase]
                       ) -> List[DelayObservation]:
        if not cases:
            return []
        moments = compute_moments_v(_case_batch(cases))
        f = np.array([case.f for case in cases])
        tau = -moments.b1 * np.log1p(-f)
        codes = classify_damping_v(moments.b1, moments.b2)
        return [DelayObservation(
                    oracle=self.name, tau=float(tau[i]),
                    threshold=cases[i].f,
                    damping=DAMPING_BY_CODE[int(codes[i])].value,
                    extras={"b1": float(moments.b1[i])})
                for i in range(len(cases))]


class KahngMudduOracle(Oracle):
    """Kahng-Muddu closed-form delay (asymptotic branches + critical)."""

    name = "kahng_muddu"

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        moments = compute_moments(case.stage())
        tau = km_delay(moments.b1, moments.b2, case.f)
        return DelayObservation(oracle=self.name, tau=tau, threshold=case.f,
                                damping=self._damping_of(case),
                                extras={})


class IsmailFriedmanOracle(Oracle):
    """Ismail-Friedman fitted 50% delay (TVLSI 2000, Eq. for t_pd).

    tau = (e^{-2.9 zeta^1.35} + 1.48 zeta) / omega_n with
    zeta = b1/(2 sqrt(b2)), omega_n = 1/sqrt(b2).  The fit was calibrated
    against SPICE at the 50% threshold only, so :meth:`supports` rejects
    every other f.
    """

    name = "ismail_friedman"

    def supports(self, case: VerifyCase) -> bool:
        return case.f == 0.5

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        if not self.supports(case):
            raise ParameterError(
                f"Ismail-Friedman delay fit is defined only for f = 0.5, "
                f"got f = {case.f}")
        moments = compute_moments(case.stage())
        sqrt_b2 = math.sqrt(moments.b2)
        zeta = moments.b1 / (2.0 * sqrt_b2)
        omega_n = 1.0 / sqrt_b2
        tau = (math.exp(-2.9 * zeta ** 1.35) + 1.48 * zeta) / omega_n
        return DelayObservation(oracle=self.name, tau=tau, threshold=case.f,
                                damping=self._damping_of(case),
                                extras={"zeta": zeta})


def _first_crossing_time(times: np.ndarray, values: np.ndarray,
                         f: float) -> float:
    """First rising crossing of ``f`` on a sampled waveform."""
    return Waveform(times, values).first_crossing(f)


def _sample_grid(case: VerifyCase) -> np.ndarray:
    """Deterministic time grid spanning the stage's Elmore horizon."""
    b1 = compute_moments(case.stage()).b1
    return np.linspace(0.0, SAMPLED_HORIZON_B1 * b1,
                       SAMPLED_GRID_POINTS + 1)[1:]


class TalbotOracle(Oracle):
    """Numerical inverse Laplace of the exact transfer function (Eq. 1)."""

    name = "talbot"

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        t_grid = _sample_grid(case)
        values = step_response_exact(case.stage(), t_grid)
        tau = _first_crossing_time(t_grid, values, case.f)
        return DelayObservation(
            oracle=self.name, tau=tau, threshold=case.f,
            damping=self._damping_of(case),
            extras={"grid_points": int(t_grid.size)})


class MnaOracle(Oracle):
    """MNA transient simulation of the discretized RLC ladder."""

    name = "mna"
    expensive = True

    def supports(self, case: VerifyCase) -> bool:
        # The testbench instantiates the driver's parasitic capacitance
        # as a circuit element, and a zero-valued capacitor is not a
        # legal element — c_p = 0 stages are analytic-oracle territory.
        return case.driver.c_p > 0.0

    def evaluate(self, case: VerifyCase) -> DelayObservation:
        from ..circuits.builders import build_linear_stage
        from ..circuits.transient import simulate

        t_grid = _sample_grid(case)
        t_end = float(t_grid[-1])
        dt = t_end / (4 * SAMPLED_GRID_POINTS)
        bench = build_linear_stage(case.stage(), segments=MNA_SEGMENTS)
        result = simulate(bench.circuit, t_end, dt)
        tau = _first_crossing_time(result.time,
                                   result.voltage(bench.output_node),
                                   case.f)
        return DelayObservation(
            oracle=self.name, tau=tau, threshold=case.f,
            damping=self._damping_of(case),
            extras={"segments": MNA_SEGMENTS,
                    "steps": int(result.time.size)})


#: The oracle registry, keyed by name.  Populated below and extensible via
#: :func:`register_oracle`.
ORACLES: Dict[str, Oracle] = {}


def register_oracle(oracle: Oracle) -> Oracle:
    """Register an oracle instance under its name (latest wins)."""
    if not oracle.name:
        raise ValueError(f"{type(oracle).__name__} has no name")
    ORACLES[oracle.name] = oracle
    return oracle


for _oracle_cls in (TwoPoleOracle, ElmoreOracle, KahngMudduOracle,
                    IsmailFriedmanOracle, TalbotOracle, MnaOracle):
    register_oracle(_oracle_cls())


def get_oracle(name: str) -> Oracle:
    """Look up a registered oracle by name."""
    try:
        return ORACLES[name]
    except KeyError:
        known = ", ".join(sorted(ORACLES))
        raise KeyError(f"unknown oracle {name!r}; known: {known}") from None


def oracle_names(*, include_expensive: bool = True) -> List[str]:
    """Registered oracle names, optionally excluding expensive ones."""
    return sorted(name for name, oracle in ORACLES.items()
                  if include_expensive or not oracle.expensive)


def evaluate(case: VerifyCase, oracle: str) -> DelayObservation:
    """Evaluate one case with one oracle — the registry's front door."""
    return get_oracle(oracle).evaluate(case)
