"""The ``verify`` engine job: one (case, oracle) evaluation.

Registering the job kind with :func:`repro.engine.jobs.register_job_type`
gives the verification layer everything the batch engine already
guarantees — submission-order determinism, per-job fault isolation,
process-pool parallelism and content-addressed caching — without a
parallel execution path.  A verify job in a ``repro-batch`` manifest is
legal too: the engine treats it like any other kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar, Dict

from ..engine.jobs import register_job_type
from .cases import VerifyCase


@register_job_type
@dataclass(frozen=True)
class VerifyJob:
    """Evaluate one verification case with one named oracle."""

    kind: ClassVar[str] = "verify"

    case: VerifyCase
    oracle: str

    def canonical(self) -> Dict[str, Any]:
        return {"kind": self.kind, "case": self.case.canonical(),
                "oracle": self.oracle}

    def run(self) -> Dict[str, Any]:
        from .oracles import evaluate

        return evaluate(self.case, self.oracle).to_dict()

    def summary(self, result: Dict[str, Any]) -> str:
        return (f"{result['oracle']}: tau={result['tau']:.6g}s "
                f"f={result['threshold']:g} ({result['damping']})")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerifyJob":
        return cls(case=VerifyCase.from_dict(data["case"]),
                   oracle=str(data["oracle"]))
