"""repro.verify — differential-oracle verification subsystem.

The repo computes the same physical quantity — the f*100% threshold delay
of a distributed RLC stage — by several analytically independent routes:
the two-pole Padé model, the Elmore single-pole limit, the Kahng–Muddu
and Ismail–Friedman closed-form baselines, Talbot numerical inversion of
the exact transfer function, and MNA transient simulation of the
discretized ladder.  This package turns that redundancy into a
verification harness:

* :mod:`~repro.verify.oracles` wraps each route behind one
  ``evaluate(case) -> DelayObservation`` interface;
* :mod:`~repro.verify.cases` defines the structured case matrix (damping
  regime x threshold x sizing x tech node);
* :mod:`~repro.verify.tolerances` is the declarative ledger of pairwise
  agreement bounds, each with a physical justification;
* :mod:`~repro.verify.differential` sweeps the matrix through the batch
  engine and scores every ledger pair into a machine-readable
  discrepancy report;
* :mod:`~repro.verify.golden` pins oracle outputs as content-hashed
  fixtures, catching bitwise regressions without re-deriving physics;
* :mod:`~repro.verify.cli` is the ``repro-verify run | diff | bless``
  front end.

Importing the package registers the ``verify`` job kind with the engine.
"""

from .cases import (VerifyCase, case_for_regime, default_case_matrix,
                    dump_case_matrix, load_case_matrix)
from .differential import (DiscrepancyReport, PairCheck, SkippedCheck,
                           evaluate_matrix, run_differential)
from .golden import GoldenMismatch, GoldenStore, entry_key
from .jobs import VerifyJob
from .oracles import (ORACLES, DelayObservation, Oracle, evaluate,
                      get_oracle, oracle_names, register_oracle)
from .tolerances import (ANY_REGIME, DEFAULT_LEDGER, UNIT_TOLERANCES,
                         ToleranceLedger, ToleranceRule, unit_tolerance)

__all__ = [
    "VerifyCase", "case_for_regime", "default_case_matrix",
    "dump_case_matrix", "load_case_matrix",
    "DiscrepancyReport", "PairCheck", "SkippedCheck",
    "evaluate_matrix", "run_differential",
    "GoldenMismatch", "GoldenStore", "entry_key",
    "VerifyJob",
    "ORACLES", "DelayObservation", "Oracle", "evaluate", "get_oracle",
    "oracle_names", "register_oracle",
    "ANY_REGIME", "DEFAULT_LEDGER", "UNIT_TOLERANCES", "ToleranceLedger",
    "ToleranceRule", "unit_tolerance",
]
