"""Differential checker: sweep the case matrix, compare oracles pairwise.

:func:`run_differential` evaluates every (case, oracle) pair through the
batch engine — so verification work shares the executor's fault
isolation, parallel backend and (opt-in) content-addressed cache with the
rest of the repo — then scores each ledger pair and emits a
machine-readable :class:`DiscrepancyReport`.

Report semantics:

* a **check** records one pairwise comparison: both taus, the relative
  error, the bound that applied and whether it held;
* a **skip** records a comparison that could not run (oracle out of
  domain, oracle evaluation failed, or no ledger rule for the regime) —
  skips are visible in the report so silent coverage loss is impossible;
* the report **passes** iff there are no violated checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.executor import BatchExecutor
from .cases import VerifyCase
from .jobs import VerifyJob
from .oracles import DelayObservation, get_oracle, oracle_names
from .tolerances import DEFAULT_LEDGER, ToleranceLedger


@dataclass(frozen=True)
class PairCheck:
    """One pairwise oracle comparison on one case."""

    case_id: str
    regime: str
    f: float
    subject: str
    reference: str
    tau_subject: float
    tau_reference: float
    rel_error: float
    rel_tol: float
    ok: bool
    justification: str

    def to_payload(self) -> Dict[str, Any]:
        return {"case_id": self.case_id, "regime": self.regime,
                "f": self.f, "subject": self.subject,
                "reference": self.reference,
                "tau_subject": self.tau_subject,
                "tau_reference": self.tau_reference,
                "rel_error": self.rel_error, "rel_tol": self.rel_tol,
                "ok": self.ok, "justification": self.justification}


@dataclass(frozen=True)
class SkippedCheck:
    """One comparison (or evaluation) that did not run, and why."""

    case_id: str
    subject: str
    reference: str
    reason: str

    def to_payload(self) -> Dict[str, Any]:
        return {"case_id": self.case_id, "subject": self.subject,
                "reference": self.reference, "reason": self.reason}


@dataclass
class DiscrepancyReport:
    """Machine-readable outcome of one differential sweep."""

    checks: List[PairCheck] = field(default_factory=list)
    skipped: List[SkippedCheck] = field(default_factory=list)
    oracles: List[str] = field(default_factory=list)
    n_cases: int = 0

    @property
    def violations(self) -> List[PairCheck]:
        return [check for check in self.checks if not check.ok]

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_payload(self) -> Dict[str, Any]:
        """Deterministic JSON form (written by ``repro-verify run --out``)."""
        return {
            "schema": "repro-verify-report/1",
            "n_cases": self.n_cases,
            "oracles": list(self.oracles),
            "passed": self.passed,
            "n_checks": len(self.checks),
            "n_violations": len(self.violations),
            "checks": [c.to_payload() for c in self.checks],
            "skipped": [s.to_payload() for s in self.skipped],
        }

    def format_table(self, *, only_violations: bool = False) -> str:
        """Fixed-width human summary of the checks."""
        headers = ("case", "pair", "tau_subj", "tau_ref", "rel_err",
                   "bound", "status")
        rows: List[Tuple[str, ...]] = []
        for check in self.checks:
            if only_violations and check.ok:
                continue
            rows.append((check.case_id,
                         f"{check.subject} vs {check.reference}",
                         f"{check.tau_subject:.4g}",
                         f"{check.tau_reference:.4g}",
                         f"{check.rel_error:.3%}",
                         f"{check.rel_tol:.3%}",
                         "ok" if check.ok else "VIOLATION"))
        if not rows:
            return "(no checks)" if not only_violations else "(no violations)"
        widths = [max(len(h), *(len(r[i]) for r in rows))
                  for i, h in enumerate(headers)]
        lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)),
                 "  ".join("-" * w for w in widths)]
        lines.extend("  ".join(c.ljust(w) for c, w in zip(row, widths))
                     for row in rows)
        return "\n".join(lines)


def evaluate_matrix(cases: Sequence[VerifyCase],
                    oracles: Sequence[str], *,
                    executor: Optional[BatchExecutor] = None,
                    ) -> Tuple[Dict[Tuple[int, str], DelayObservation],
                               List[SkippedCheck]]:
    """Evaluate each case with each supporting oracle via the engine.

    Returns ``(observations, skipped)`` where observations are keyed by
    (case index, oracle name).  Failed or out-of-domain evaluations land
    in ``skipped`` with the oracle in the ``subject`` slot.
    """
    executor = executor or BatchExecutor()
    jobs: List[VerifyJob] = []
    slots: List[Tuple[int, str]] = []
    skipped: List[SkippedCheck] = []
    for index, case in enumerate(cases):
        for name in oracles:
            if not get_oracle(name).supports(case):
                skipped.append(SkippedCheck(
                    case_id=case.case_id, subject=name, reference="",
                    reason=f"oracle {name} does not support this case "
                           f"(f={case.f:g})"))
                continue
            jobs.append(VerifyJob(case=case, oracle=name))
            slots.append((index, name))

    observations: Dict[Tuple[int, str], DelayObservation] = {}
    for (index, name), outcome in zip(slots, executor.run(jobs)):
        if outcome.ok:
            assert outcome.result is not None
            observations[(index, name)] = DelayObservation.from_dict(
                outcome.result)
        else:
            skipped.append(SkippedCheck(
                case_id=cases[index].case_id, subject=name, reference="",
                reason=f"evaluation failed: {outcome.error_type}: "
                       f"{outcome.error}"))
    return observations, skipped


def run_differential(cases: Sequence[VerifyCase], *,
                     oracles: Optional[Sequence[str]] = None,
                     ledger: ToleranceLedger = DEFAULT_LEDGER,
                     executor: Optional[BatchExecutor] = None,
                     ) -> DiscrepancyReport:
    """Sweep the matrix and compare oracles pairwise against the ledger.

    Parameters
    ----------
    cases:
        The case matrix to sweep.
    oracles:
        Oracle names to evaluate; defaults to every registered oracle.
        Ledger pairs whose oracles were not evaluated are skipped (and
        recorded as such).
    ledger:
        The tolerance ledger to score against.
    executor:
        Batch executor (worker count / cache) to run evaluations through;
        defaults to a serial, uncached executor.
    """
    names = list(oracles) if oracles is not None else oracle_names()
    observations, skipped = evaluate_matrix(cases, names, executor=executor)

    report = DiscrepancyReport(skipped=skipped, oracles=names,
                               n_cases=len(cases))
    for index, case in enumerate(cases):
        regime = None
        for subject, reference in ledger.pairs():
            if subject not in names or reference not in names:
                continue
            obs_subject = observations.get((index, subject))
            obs_reference = observations.get((index, reference))
            if obs_subject is None or obs_reference is None:
                # The evaluation-level skip is already recorded.
                continue
            if regime is None:
                regime = obs_subject.damping
            rule = ledger.bound_for(subject, reference, regime, case.f)
            if rule is None:
                report.skipped.append(SkippedCheck(
                    case_id=case.case_id, subject=subject,
                    reference=reference,
                    reason=f"no ledger rule for regime={regime} f={case.f:g}"))
                continue
            rel_error = (abs(obs_subject.tau - obs_reference.tau)
                         / abs(obs_reference.tau))
            report.checks.append(PairCheck(
                case_id=case.case_id, regime=regime, f=case.f,
                subject=subject, reference=reference,
                tau_subject=obs_subject.tau,
                tau_reference=obs_reference.tau,
                rel_error=rel_error, rel_tol=rule.rel_tol,
                ok=rel_error <= rule.rel_tol,
                justification=rule.justification))
    return report
