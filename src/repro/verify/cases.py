"""Verification cases and the committed differential case matrix.

A :class:`VerifyCase` pins down one driver-line-load configuration plus a
delay threshold — everything an oracle needs to produce a
:class:`~repro.verify.oracles.DelayObservation`.  The committed default
matrix (:func:`default_case_matrix`) sweeps the axes the paper's claims
hinge on:

* **damping regime** — the line inductance is placed below, at and above
  the critical inductance (Eq. 4) of the sized stage, so every oracle is
  exercised on over-, critically- and under-damped responses;
* **threshold f** — low (0.2), the paper's 0.5, and high (0.9), where the
  two-pole error is known to grow for ringing responses;
* **driver/load sizing** — the RC-optimal (h, k) and a deliberately
  mistuned compact sizing (shorter segment, weaker driver), so agreement
  is not checked only at the operating point every model was built for;
* **technology node** — both Table 1 nodes (250 nm and 100 nm).

Case identity for golden fixtures is the *physical content* (line,
driver, h, k, f) — the ``case_id``/labels are presentation only, so
renaming a case never invalidates its fixtures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from ..core.critical import critical_inductance
from ..core.elmore import rc_optimum
from ..core.moments import compute_moments
from ..core.params import DriverParams, LineParams, Stage
from ..core.poles import classify_damping
from ..engine.jobs import driver_from_dict, driver_to_dict, line_from_dict, \
    line_to_dict
from ..errors import ParameterError
from ..tech.node import get_node

#: Inductance multiples of l_crit realizing each intended damping regime.
REGIME_L_FACTORS: Dict[str, float] = {
    "overdamped": 0.4,
    "critical": 1.0,
    "underdamped": 2.5,
}

#: Thresholds of the committed matrix (low / paper's 0.5 / high).
DEFAULT_THRESHOLDS: Tuple[float, ...] = (0.2, 0.5, 0.9)

#: Technology nodes of the committed matrix.
DEFAULT_NODES: Tuple[str, ...] = ("250nm", "100nm")

#: Driver/load sizing variants: (label, h factor, k factor) relative to
#: the RC optimum.  ``compact`` is a deliberately mistuned short segment
#: with a weak driver — off the sweet spot every model targets.
DEFAULT_SIZINGS: Tuple[Tuple[str, float, float], ...] = (
    ("rcopt", 1.0, 1.0),
    ("compact", 0.6, 0.5),
)


@dataclass(frozen=True)
class VerifyCase:
    """One fully specified verification case.

    Attributes
    ----------
    case_id:
        Human-readable label (presentation only, not hashed).
    line, driver, h, k:
        The stage configuration in SI units.
    f:
        Delay threshold fraction in (0, 1).
    regime:
        Intended damping label ('overdamped' / 'critical' /
        'underdamped'); informational — the authoritative regime is
        recomputed from the moments via :meth:`damping`.
    node:
        Source technology node name, or '' for synthetic cases.
    """

    case_id: str
    line: LineParams
    driver: DriverParams
    h: float
    k: float
    f: float
    regime: str = ""
    node: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.f < 1.0:
            raise ParameterError(
                f"threshold fraction must be in (0, 1), got {self.f}")

    def stage(self) -> Stage:
        """The driver-line-load stage this case describes."""
        return Stage(line=self.line, driver=self.driver, h=self.h, k=self.k)

    def damping(self) -> str:
        """Authoritative damping regime from the two-pole moments."""
        moments = compute_moments(self.stage())
        return classify_damping(moments.b1, moments.b2).value

    def content(self) -> Dict[str, Any]:
        """Physical content only — the unit of golden-fixture hashing."""
        return {"line": line_to_dict(self.line),
                "driver": driver_to_dict(self.driver),
                "h": self.h, "k": self.k, "f": self.f}

    def canonical(self) -> Dict[str, Any]:
        """Full dictionary form including presentation labels."""
        data = self.content()
        data["case_id"] = self.case_id
        data["regime"] = self.regime
        data["node"] = self.node
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VerifyCase":
        return cls(case_id=str(data.get("case_id", "")),
                   line=line_from_dict(data["line"]),
                   driver=driver_from_dict(data["driver"]),
                   h=float(data["h"]), k=float(data["k"]),
                   f=float(data["f"]),
                   regime=str(data.get("regime", "")),
                   node=str(data.get("node", "")))


def case_for_regime(node_name: str, regime: str, f: float, *,
                    sizing: str = "rcopt", h_factor: float = 1.0,
                    k_factor: float = 1.0) -> VerifyCase:
    """Build one case of the structured matrix.

    The stage is sized from the node's RC optimum scaled by
    ``(h_factor, k_factor)`` and its inductance is set to the regime's
    multiple of the critical inductance of *that* sizing, so the intended
    damping label is exact by construction (up to the critical-boundary
    tolerance for ``regime='critical'``).
    """
    if regime not in REGIME_L_FACTORS:
        known = ", ".join(sorted(REGIME_L_FACTORS))
        raise ParameterError(f"unknown regime {regime!r}; known: {known}")
    node = get_node(node_name)
    rc_opt = rc_optimum(node.line, node.driver)
    h = rc_opt.h_opt * h_factor
    k = rc_opt.k_opt * k_factor
    l_crit = critical_inductance(
        Stage(line=node.line, driver=node.driver, h=h, k=k))
    l = REGIME_L_FACTORS[regime] * l_crit
    return VerifyCase(
        case_id=f"{node_name}/{sizing}/{regime}/f{f:g}",
        line=node.line.with_inductance(l),
        driver=node.driver, h=h, k=k, f=f,
        regime=regime, node=node_name)


def default_case_matrix(
        *, nodes: Sequence[str] = DEFAULT_NODES,
        thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
        regimes: Sequence[str] = tuple(REGIME_L_FACTORS),
        sizings: Sequence[Tuple[str, float, float]] = DEFAULT_SIZINGS,
) -> Tuple[VerifyCase, ...]:
    """The committed case matrix: node x sizing x regime x threshold."""
    cases: List[VerifyCase] = []
    for node_name in nodes:
        for sizing, h_factor, k_factor in sizings:
            for regime in regimes:
                for f in thresholds:
                    cases.append(case_for_regime(
                        node_name, regime, f, sizing=sizing,
                        h_factor=h_factor, k_factor=k_factor))
    return tuple(cases)


def load_case_matrix(path: str) -> Tuple[VerifyCase, ...]:
    """Load a case matrix from a JSON file (a list of case dictionaries)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ParameterError(
            f"case matrix {path!r} must be a JSON list of case objects")
    return tuple(VerifyCase.from_dict(entry) for entry in data)


def dump_case_matrix(cases: Iterable[VerifyCase]) -> List[Dict[str, Any]]:
    """JSON-ready form of a case matrix (inverse of :func:`load_case_matrix`)."""
    return [case.canonical() for case in cases]
