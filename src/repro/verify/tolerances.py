"""The tolerance ledger: every model-agreement bound, in one place.

Two kinds of bounds live here:

* **Differential rules** (:data:`DEFAULT_LEDGER`) — per oracle pair, per
  damping regime, optionally restricted in threshold f, each with a
  documented physical justification.  The differential checker
  (:mod:`repro.verify.differential`) compares oracle observations
  pairwise against these rules; a missing rule means the pair is *not
  checked* in that regime (e.g. Elmore against an underdamped response,
  which it cannot represent).

* **Named unit tolerances** (:data:`UNIT_TOLERANCES`) — the rtol/atol
  bounds the unit-test and benchmark suites assert.  They were
  historically scattered as literals across ``tests/test_delay.py``,
  ``tests/test_response.py`` and the figure benchmarks; routing them
  through :func:`unit_tolerance` makes every bound auditable and keeps a
  tightening (or loosening) an explicit, reviewable ledger change.

Relative error convention: rules are ordered (subject, reference) and the
checker computes ``|tau_subject - tau_reference| / tau_reference`` — the
reference is the more trusted oracle of the pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Wildcard matching any damping regime in a rule.
ANY_REGIME = "*"


@dataclass(frozen=True)
class ToleranceRule:
    """One pairwise agreement bound.

    Attributes
    ----------
    subject, reference:
        Oracle names; the relative error is measured against
        ``reference``.
    regime:
        Damping regime the rule applies to ('overdamped',
        'critically_damped', 'underdamped' or ``ANY_REGIME``).
    rel_tol:
        Maximum allowed relative delay error.
    f_min, f_max:
        Inclusive threshold range the rule covers.
    justification:
        Why this bound is physically the right one — shown in the
        discrepancy report so a violation is actionable.
    """

    subject: str
    reference: str
    regime: str
    rel_tol: float
    f_min: float = 0.0
    f_max: float = 1.0
    justification: str = ""

    def matches(self, regime: str, f: float) -> bool:
        if self.regime != ANY_REGIME and self.regime != regime:
            return False
        return self.f_min <= f <= self.f_max


class ToleranceLedger:
    """Ordered rule collection; first matching rule wins.

    Declaration order is the specificity order: put narrow (regime- or
    f-restricted) rules before broad fallbacks.
    """

    def __init__(self, rules: Iterable[ToleranceRule] = ()) -> None:
        self.rules: List[ToleranceRule] = list(rules)

    def add(self, rule: ToleranceRule) -> None:
        self.rules.append(rule)

    def pairs(self) -> List[Tuple[str, str]]:
        """Distinct (subject, reference) pairs the ledger checks."""
        seen: List[Tuple[str, str]] = []
        for rule in self.rules:
            pair = (rule.subject, rule.reference)
            if pair not in seen:
                seen.append(pair)
        return seen

    def bound_for(self, subject: str, reference: str, regime: str,
                  f: float) -> Optional[ToleranceRule]:
        """First rule covering (subject, reference, regime, f), or None."""
        for rule in self.rules:
            if (rule.subject == subject and rule.reference == reference
                    and rule.matches(regime, f)):
                return rule
        return None

    def to_payload(self) -> List[Dict[str, Any]]:
        """JSON-ready form (embedded in discrepancy reports)."""
        return [{"subject": r.subject, "reference": r.reference,
                 "regime": r.regime, "rel_tol": r.rel_tol,
                 "f_min": r.f_min, "f_max": r.f_max,
                 "justification": r.justification}
                for r in self.rules]


#: The committed differential ledger.  Bounds were calibrated on the
#: committed case matrix (see tests/test_verify_differential.py) and then
#: given ~2x headroom so they fail on genuine model changes, not on
#: platform noise.
DEFAULT_LEDGER = ToleranceLedger([
    # -- two-pole Pade model vs the exact transfer function ------------
    ToleranceRule(
        "two_pole", "talbot", ANY_REGIME, 0.55, f_max=0.35,
        justification=(
            "The exact distributed response (Eq. 1) starts with a "
            "diffusion/time-of-flight latency before the far end moves; "
            "a lumped two-pole response rises immediately, so the "
            "earliest crossings carry the largest model error.  The "
            "committed matrix observes up to ~37% at f = 0.2 "
            "(compact-sized underdamped stages).")),
    ToleranceRule(
        "two_pole", "talbot", "underdamped", 0.55, f_min=0.75,
        justification=(
            "High thresholds on a ringing response sit near the overshoot "
            "plateau where dv/dt is small, so the Pade-2 waveform error "
            "converts to a large crossing-time error (observed up to ~37% "
            "at f = 0.9 on the committed matrix).")),
    ToleranceRule(
        "two_pole", "talbot", ANY_REGIME, 0.20,
        justification=(
            "Pade-2 truncation error of the exact H(s) (Eq. 1) at "
            "mid-to-high thresholds on non-ringing responses; the paper "
            "accepts the two-pole model as within ~15% of circuit "
            "simulation for practical damping (observed max ~12.4% at "
            "f = 0.5 on the committed matrix).")),
    # -- two-pole Pade model vs the MNA transient simulator ------------
    ToleranceRule(
        "two_pole", "mna", ANY_REGIME, 0.55, f_max=0.35,
        justification=(
            "Same wavefront-latency error as the talbot pair — the "
            "20-section ladder reproduces the distributed latency the "
            "lumped two-pole model lacks.")),
    ToleranceRule(
        "two_pole", "mna", "underdamped", 0.55, f_min=0.75,
        justification=(
            "Same overshoot-plateau amplification as the talbot pair, "
            "plus ladder discretization on the reference side.")),
    ToleranceRule(
        "two_pole", "mna", ANY_REGIME, 0.20,
        justification=(
            "Pade-2 truncation plus <=3% ladder discretization; dominated "
            "by the model error, hence the same budget as vs talbot.")),
    # -- MNA ladder vs the exact transfer function ---------------------
    ToleranceRule(
        "mna", "talbot", ANY_REGIME, 0.05,
        justification=(
            "A 20-section ladder of a uniform RLC line reproduces the "
            "distributed response to within a few percent "
            "(tests/test_integration.py observes <3%; the bound adds "
            "headroom for trapezoidal integration error).")),
    # -- Elmore single-pole baseline vs the two-pole model -------------
    ToleranceRule(
        "elmore", "two_pole", "overdamped", 0.60,
        justification=(
            "The single-pole model is exact only in the widely-separated "
            "pole limit; at moderately overdamped operating points the "
            "second pole still delays the early response, so tau_Elmore "
            "underestimates low-f and overestimates high-f crossings by "
            "tens of percent.  This pair bounds gross regressions (sign "
            "flips, unit slips), not model accuracy.")),
    ToleranceRule(
        "elmore", "two_pole", "critically_damped", 0.60,
        justification=(
            "At critical damping the b1-only model is still a usable "
            "order-of-magnitude delay; the 1.678 b1/2 closed form vs "
            "ln(1/(1-f)) b1 differ by <50% across the f matrix.")),
    # Underdamped Elmore is intentionally unchecked: the single-pole
    # model cannot represent ringing, and the error is unbounded as
    # zeta -> 0.  (No rule == pair skipped in that regime.)
    # -- Kahng-Muddu closed forms vs the two-pole model ----------------
    ToleranceRule(
        "kahng_muddu", "two_pole", "critically_damped", 1e-6,
        justification=(
            "At critical damping KM *is* the exact two-pole closed form "
            "(both solve (1+x)e^-x = 1-f on the double pole), so any "
            "disagreement beyond float roundoff is a real bug in one of "
            "the two implementations.  The committed matrix observes "
            "<5e-7 at every f.")),
    ToleranceRule(
        "kahng_muddu", "two_pole", "overdamped", 0.35, f_max=0.35,
        justification=(
            "KM's dominant-pole branch drops the fast pole, whose "
            "residue matters most during the early rise; the committed "
            "matrix observes ~21% at f = 0.2.")),
    ToleranceRule(
        "kahng_muddu", "two_pole", "overdamped", 0.06,
        justification=(
            "By mid-rise the fast pole has decayed and the dominant-pole "
            "branch tracks the two-pole solve to a few percent (observed "
            "max ~3.0% at f >= 0.5).")),
    ToleranceRule(
        "kahng_muddu", "two_pole", "underdamped", 4.0, f_max=0.35,
        justification=(
            "KM's underdamped asymptotic branch is qualitatively wrong "
            "for early crossings of a ringing response (observed ~2.7x "
            "at f = 0.2) — exactly the inaccuracy the reproduced paper "
            "criticizes.  This bound only guards against sign/unit "
            "errors, not model accuracy.")),
    ToleranceRule(
        "kahng_muddu", "two_pole", "underdamped", 1.8, f_max=0.6,
        justification=(
            "Envelope-decay neglect in KM's underdamped branch is still "
            "a ~1.2x effect at the 50% threshold on the committed "
            "matrix; order-of-magnitude agreement is all the baseline "
            "promises.")),
    ToleranceRule(
        "kahng_muddu", "two_pole", "underdamped", 0.50,
        justification=(
            "Near the ringing peak the KM branch recovers to "
            "double-digit-percent accuracy (observed ~28% at f = 0.9).")),
    # -- Ismail-Friedman fitted 50% delay vs the two-pole model --------
    ToleranceRule(
        "ismail_friedman", "two_pole", ANY_REGIME, 0.30,
        f_min=0.5, f_max=0.5,
        justification=(
            "Curve fit calibrated on Ismail-Friedman's own SPICE matrix; "
            "reproduced here as the *shape* baseline the paper "
            "criticizes.  Near-critical and compact-sized stages sit at "
            "the edge of the fitted range where the committed matrix "
            "observes up to ~15% disagreement.")),
])


#: Named unit-test / benchmark tolerances.  Keys are
#: '<suite>.<subject>.<kind>' where kind is 'rel' or 'abs'.
UNIT_TOLERANCES: Dict[str, float] = {
    # tests/test_delay.py -------------------------------------------------
    # Dominant-pole limit at zeta = 5: pole ratio ~100, fast-pole residue
    # ~1%, so 2% covers it with margin.
    "delay.dominant_pole_limit.rel": 0.02,
    # Critically damped closed form x = 1.67835 quoted to 6 significant
    # digits in the paper's reference solution.
    "delay.critical_closed_form.rel": 1e-4,
    # A solved crossing must sit on the threshold to solver precision.
    "delay.on_threshold.abs": 1e-9,
    # Brent vs Newton-polished solutions of the same crossing.
    "delay.brent_vs_newton.rel": 1e-9,
    # Source-form equivalence (Stage / Moments / StepResponse inputs).
    "delay.source_equivalence.rel": 1e-12,
    # tests/test_delay_underdamped.py --------------------------------------
    # Delay continuity across the l_crit classification boundary: the
    # over/underdamped branches agree to solver precision at the seam, but
    # the +-1e-9 parameter nudge itself moves the crossing by O(1e-7).
    "delay.critical_boundary_continuity.rel": 1e-6,
    # A raw (unguarded) Newton iterate is only polished to the 1e-6
    # residual its stopping rule promises — far looser than the bracketed
    # on-threshold bound above, which is the point of the guard.
    "delay.newton_crossing_residual.abs": 1e-6,
    # tests/test_response.py ----------------------------------------------
    # v(0) = 0 exactly up to float roundoff.
    "response.initial_value.abs": 1e-12,
    # Settling: |v - 1| at 5x the 1e-6 settling time.
    "response.settles_to_one.abs": 1e-5,
    # Closed-form canonical responses evaluated against their formula.
    "response.closed_form.abs": 1e-9,
    # Analytic overshoot vs a 20k-point sampled peak.
    "response.overshoot_sampled.rel": 1e-3,
    # Analytic derivative vs central finite difference.
    "response.derivative_fd.rel": 1e-5,
    # dv/dt(0) of a second-order response is exactly zero; the bound is
    # absolute because the derivative carries 1/s units (~1e9 scale), so
    # 1e-3 is ~1e-12 relative to the peak slope.
    "response.initial_slope.abs": 1e-3,
    # Closed-form overshoot exp(-pi zeta / sqrt(1 - zeta^2)) vs the
    # analytic peak evaluation: same formula, float roundoff only.
    "response.canonical_overshoot.rel": 1e-9,
    # First undershoot depth = overshoot^2 (envelope identity): analytic
    # vs analytic, float roundoff only.
    "response.undershoot_square.rel": 1e-9,
    # dv/dt at the solved peak time: peak_time is a closed form, so the
    # residual slope is float cancellation at the ~1e9 1/s scale.
    "response.derivative_at_peak.abs": 1e-2,
    # tests/test_integration.py -------------------------------------------
    # Simulator vs exact inversion: ladder discretization only.
    "integration.sim_vs_exact.rel": 0.03,
    # Two-pole vs exact inversion: the Pade error budget the paper accepts.
    "integration.pade_vs_exact.rel": 0.15,
    # Overshoot agreement between simulator and exact inversion (volts).
    "integration.overshoot.abs": 0.05,
    # benchmarks ----------------------------------------------------------
    # Newton-only vs bracketed delay solve on identical crossings.
    "bench.solvers.newton_vs_bracketed.rel": 1e-9,
    # KM closed forms far from their asymptotic validity: order-of-
    # magnitude agreement is all the baseline promises (the paper's point).
    "bench.solvers.km_vs_exact.rel": 0.5,
    # Direct (Nelder-Mead) vs Newton optimizer agreement where both
    # converge.
    "bench.solvers.direct_vs_newton.rel": 1e-4,
    # Table 1 reproduction: the paper quotes h_optRC to 0.1 mm, k_optRC
    # as an integer, and tau_optRC to 0.01 ps; the closed forms must hit
    # the tabulated values to quoting precision.
    "bench.table1.h_opt_mm.abs": 0.05,
    "bench.table1.k_opt.abs": 1.0,
    "bench.table1.tau_ps.abs": 0.1,
    # Extraction substitutes (r, c from geometry) vs the tabulated values.
    "bench.table1.extraction.rel": 0.10,
    # Simulator-characterized r_s vs the stored Table 1 value.
    "bench.table1.r_s_simulated.rel": 0.05,
    # tests/test_kernels*.py ----------------------------------------------
    # Batched kernels vs the scalar pipeline on identical stages.  The
    # kernels share the scalar path's expression graphs (moments_terms,
    # two_pole_values, critical_inductance_terms), so moments, poles,
    # responses and l_crit agree bitwise; the solved crossing itself may
    # differ between the masked-hybrid and Brent refiners by solver
    # stopping tolerance only.  Golden fixtures were re-blessed with this
    # change: critical_inductance now evaluates through the shared
    # elementwise graph (h2*h2 products instead of `**`), moving the
    # regime-defining l values of the case matrix by ~1 ulp, which rewrites
    # every content-hashed entry key; the observations themselves agree to
    # these bounds.
    "kernels.scalar_vs_vector.rel": 1e-9,
    # Brent reference solver vs the vectorized masked Newton/bisection
    # hybrid on the same response (independent refiners, same bracket).
    "kernels.brent_vs_vector.rel": 1e-9,
}


def unit_tolerance(name: str) -> float:
    """Look up a named unit-test tolerance from the ledger."""
    try:
        return UNIT_TOLERANCES[name]
    except KeyError:
        known = ", ".join(sorted(UNIT_TOLERANCES))
        raise KeyError(
            f"unknown unit tolerance {name!r}; known: {known}") from None
