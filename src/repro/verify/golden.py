"""Golden-fixture store: content-hashed snapshots of oracle outputs.

A fixture entry pins the observation one oracle produced for one case.
Entries are keyed ``SHA-256(canonical-JSON({case-content, oracle}) +
"\\0" + schema salt)`` — the same content-addressing discipline as
``repro.engine.cache``, except the salt carries only the *fixture schema*
version, not the library version: fixtures must survive version bumps and
break only when the observation payload shape changes.

Comparison is **bitwise** on the canonical JSON of the observation:
floats round-trip exactly through ``repr``, so any numerical drift in an
oracle — a reordered summation, a changed constant, a sign flip — fails
the diff without re-running the expensive reference oracles whose outputs
are already snapshotted.

The committed store lives next to this module (``golden/default.json``)
so it resolves regardless of the working directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..engine.jobs import canonical_json
from .cases import VerifyCase
from .oracles import DelayObservation

#: Bump when VerifyCase.content() or DelayObservation.to_dict() changes
#: shape — every fixture must then be re-blessed.
GOLDEN_SCHEMA_VERSION = 1

#: Default committed store location (package data, CWD-independent).
DEFAULT_GOLDEN_PATH = Path(__file__).parent / "golden" / "default.json"


def golden_salt() -> str:
    """Salt tying fixture keys to the fixture schema (not the version)."""
    return f"repro-verify-golden-schema-{GOLDEN_SCHEMA_VERSION}"


def entry_key(case: VerifyCase, oracle: str) -> str:
    """Content hash identifying one (case, oracle) fixture entry."""
    text = canonical_json({"case": case.content(), "oracle": oracle}) \
        + "\0" + golden_salt()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class GoldenMismatch:
    """One divergence between a fresh observation and the stored fixture."""

    case_id: str
    oracle: str
    kind: str                 #: 'missing' | 'changed'
    detail: str

    def to_payload(self) -> Dict[str, Any]:
        return {"case_id": self.case_id, "oracle": self.oracle,
                "kind": self.kind, "detail": self.detail}


class GoldenStore:
    """A JSON file of content-hashed oracle observations."""

    def __init__(self, path: "os.PathLike[str] | str | None" = None) -> None:
        self.path = Path(path) if path is not None else DEFAULT_GOLDEN_PATH

    # ------------------------------------------------------------------
    def load(self) -> Dict[str, Dict[str, Any]]:
        """All entries keyed by content hash ({} for a missing store)."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return {}
        if data.get("salt") != golden_salt():
            # Schema moved on; every entry is stale by definition.
            return {}
        entries = data.get("entries", {})
        return entries if isinstance(entries, dict) else {}

    def get(self, case: VerifyCase, oracle: str
            ) -> Optional[DelayObservation]:
        """Stored observation for (case, oracle), or None."""
        entry = self.load().get(entry_key(case, oracle))
        if entry is None:
            return None
        return DelayObservation.from_dict(entry["observation"])

    # ------------------------------------------------------------------
    def bless(self, observations: Iterable[
            Tuple[VerifyCase, DelayObservation]]) -> int:
        """Write/update fixtures for the given observations.

        Existing entries for other keys are preserved, so partial blesses
        (e.g. one oracle at a time) compose.  Returns the entry count of
        the resulting store.  The write is atomic (temp + ``os.replace``).
        """
        entries = self.load()
        for case, observation in observations:
            entries[entry_key(case, observation.oracle)] = {
                "case_id": case.case_id,
                "case": case.content(),
                "oracle": observation.oracle,
                "observation": observation.to_dict(),
            }
        payload = {"salt": golden_salt(), "entries": entries}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(tmp, self.path)
        return len(entries)

    # ------------------------------------------------------------------
    def diff(self, observations: Iterable[
            Tuple[VerifyCase, DelayObservation]]) -> List[GoldenMismatch]:
        """Compare fresh observations bitwise against the stored fixtures.

        Returns one :class:`GoldenMismatch` per missing or changed entry;
        an empty list means every observation matches its fixture
        exactly (canonical-JSON equality).
        """
        entries = self.load()
        mismatches: List[GoldenMismatch] = []
        for case, observation in observations:
            entry = entries.get(entry_key(case, observation.oracle))
            if entry is None:
                mismatches.append(GoldenMismatch(
                    case_id=case.case_id, oracle=observation.oracle,
                    kind="missing",
                    detail="no fixture for this (case, oracle); run "
                           "`repro-verify bless`"))
                continue
            fresh = canonical_json(observation.to_dict())
            stored = canonical_json(entry["observation"])
            if fresh != stored:
                stored_tau = entry["observation"].get("tau")
                mismatches.append(GoldenMismatch(
                    case_id=case.case_id, oracle=observation.oracle,
                    kind="changed",
                    detail=f"tau {stored_tau!r} -> {observation.tau!r} "
                           f"(bitwise canonical-JSON mismatch)"))
        return mismatches
