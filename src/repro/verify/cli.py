"""``repro-verify`` — the verification command line.

Usage::

    repro-verify run                     # differential sweep, default matrix
    repro-verify run --jobs 4 --out discrepancy-report.json
    repro-verify run --oracles two_pole,elmore,talbot
    repro-verify diff                    # bitwise compare against golden
    repro-verify bless                   # (re)write the golden fixtures

``run`` sweeps the case matrix, scores every ledger pair and prints the
check table; exit 1 on any violated bound.  ``diff`` re-evaluates the
matrix and compares each observation bitwise against the committed golden
store; exit 1 on any missing or changed fixture.  ``bless`` rewrites the
fixtures from the current code — do this only after reviewing *why* the
numbers moved.

Caching is **off by default**: the engine cache salts on the library
version, which does not change on a source edit, so a warm cache could
mask exactly the regressions this tool exists to catch.  Pass
``--cache-dir`` to opt in for repeated sweeps on unchanging code.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from ..engine.backends import BACKEND_NAMES
from ..engine.executor import BatchExecutor
from ..engine.store import add_store_arguments, store_from_args
from .cases import VerifyCase, default_case_matrix, load_case_matrix
from .differential import evaluate_matrix, run_differential
from .golden import GoldenStore
from .oracles import DelayObservation, oracle_names
from .tolerances import DEFAULT_LEDGER


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="Differential-oracle verification: sweep the case "
                    "matrix, compare delay oracles pairwise and against "
                    "golden fixtures.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--matrix", default=None, metavar="FILE",
                         help="JSON case matrix (default: built-in matrix)")
        sub.add_argument("--oracles", default=None, metavar="NAMES",
                         help="comma-separated oracle names "
                              f"(default: all of {','.join(oracle_names())})")
        sub.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes (1 = serial in-process)")
        sub.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                         help="execution backend (default: serial when "
                              "--jobs 1, process otherwise)")
        sub.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="opt-in engine result cache (off by default "
                              "so stale results cannot mask regressions)")
        add_store_arguments(sub)

    run_parser = subparsers.add_parser(
        "run", help="differential sweep against the tolerance ledger")
    add_common(run_parser)
    run_parser.add_argument("--out", default=None, metavar="FILE",
                            help="write the JSON discrepancy report here")
    run_parser.add_argument("--all", action="store_true",
                            help="print every check, not just violations")

    diff_parser = subparsers.add_parser(
        "diff", help="bitwise compare oracle outputs against the golden "
                     "fixtures")
    add_common(diff_parser)
    diff_parser.add_argument("--golden", default=None, metavar="FILE",
                             help="golden store path (default: the "
                                  "committed store)")

    bless_parser = subparsers.add_parser(
        "bless", help="rewrite the golden fixtures from the current code")
    add_common(bless_parser)
    bless_parser.add_argument("--golden", default=None, metavar="FILE",
                              help="golden store path (default: the "
                                   "committed store)")
    return parser


def _setup(args: argparse.Namespace
           ) -> Tuple[List[VerifyCase], List[str], BatchExecutor]:
    """Resolve the (cases, oracle names, executor) triple from flags."""
    if args.jobs < 1:
        raise SystemExit(f"repro-verify: --jobs must be >= 1, "
                         f"got {args.jobs}")
    cases = (load_case_matrix(args.matrix) if args.matrix
             else default_case_matrix())
    if args.oracles:
        names = [n.strip() for n in args.oracles.split(",") if n.strip()]
        unknown = [n for n in names if n not in oracle_names()]
        if unknown:
            raise SystemExit(
                f"repro-verify: unknown oracle(s) {', '.join(unknown)}; "
                f"known: {', '.join(oracle_names())}")
    else:
        names = oracle_names()
    cache = None
    if args.cache_dir or args.store:
        # --store memory opts in to caching without touching disk — a
        # bounded replay tier for repeated sweeps on unchanging code.
        try:
            cache = store_from_args(args)
        except ValueError as exc:
            raise SystemExit(f"repro-verify: {exc}")
    executor = BatchExecutor(jobs=args.jobs, cache=cache,
                             backend=args.backend)
    return cases, names, executor


def _observation_pairs(cases: List[VerifyCase], names: List[str],
                       executor: BatchExecutor
                       ) -> List[Tuple[VerifyCase, DelayObservation]]:
    """Evaluate the matrix and pair each observation with its case.

    Evaluation *failures* are fatal here (unlike the differential sweep,
    which records them as skips): a golden diff or bless over a partial
    observation set would silently narrow coverage.
    """
    observations, skipped = evaluate_matrix(cases, names, executor=executor)
    failures = [s for s in skipped if s.reason.startswith("evaluation failed")]
    if failures:
        for skip in failures:
            print(f"repro-verify: {skip.case_id} [{skip.subject}]: "
                  f"{skip.reason}", file=sys.stderr)
        raise SystemExit(2)
    return [(cases[index], observation)
            for (index, name), observation in sorted(
                observations.items(), key=lambda item: item[0])]


def _run(args: argparse.Namespace) -> int:
    cases, names, executor = _setup(args)
    with executor:
        report = run_differential(cases, oracles=names,
                                  ledger=DEFAULT_LEDGER, executor=executor)
    print(report.format_table(only_violations=not args.all))
    print()
    print(f"{report.n_cases} cases, {len(report.checks)} checks, "
          f"{len(report.violations)} violations, "
          f"{len(report.skipped)} skipped")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0 if report.passed else 1


def _diff(args: argparse.Namespace) -> int:
    cases, names, executor = _setup(args)
    store = GoldenStore(args.golden)
    with executor:
        mismatches = store.diff(_observation_pairs(cases, names, executor))
    if not mismatches:
        print(f"golden: all observations match {store.path}")
        return 0
    for mismatch in mismatches:
        print(f"golden {mismatch.kind}: {mismatch.case_id} "
              f"[{mismatch.oracle}] — {mismatch.detail}")
    print(f"\n{len(mismatches)} golden mismatch(es) against {store.path}")
    return 1


def _bless(args: argparse.Namespace) -> int:
    cases, names, executor = _setup(args)
    store = GoldenStore(args.golden)
    with executor:
        total = store.bless(_observation_pairs(cases, names, executor))
    print(f"blessed: {store.path} now holds {total} fixtures")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run(args)
        if args.command == "diff":
            return _diff(args)
        return _bless(args)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise


if __name__ == "__main__":
    sys.exit(main())
