"""Mutual inductive coupling between two inductors (MNA K-element).

The paper's introduction stresses that global-wire inductance problems
are aggravated by *mutual* coupling over long return paths; modelling a
bus therefore needs coupled inductors.  A :class:`MutualInductance`
element couples two existing inductors L1, L2 with coefficient
0 <= k < 1 (M = k sqrt(L1 L2)), adding the off-diagonal terms of

    v1 = L1 di1/dt + M di2/dt
    v2 = M di1/dt + L2 di2/dt

to their branch equations.  At DC it has no effect (both branches are
shorts); in transient the trapezoidal/BE companions gain the symmetric
-factor*M/dt cross terms, stamped by the solver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ParameterError
from .elements import Element


@dataclass(frozen=True)
class MutualInductance(Element):
    """Coupling between the named inductors with coefficient ``coupling``.

    Attributes
    ----------
    inductor_a, inductor_b:
        Names of two :class:`~repro.circuits.elements.Inductor` elements
        in the same circuit (checked at MNA compile time).
    coupling:
        Dimensionless coupling coefficient k in [0, 1); M = k sqrt(La Lb).
    """

    inductor_a: str = ""
    inductor_b: str = ""
    coupling: float = 0.0

    def __post_init__(self) -> None:
        if not self.inductor_a or not self.inductor_b:
            raise ParameterError(
                f"mutual {self.name}: both inductor names are required")
        if self.inductor_a == self.inductor_b:
            raise ParameterError(
                f"mutual {self.name}: cannot couple an inductor to itself")
        if not 0.0 <= self.coupling < 1.0:
            raise ParameterError(
                f"mutual {self.name}: coupling must be in [0, 1), "
                f"got {self.coupling}")

    @property
    def nodes(self) -> Tuple[str, ...]:
        # A coupling element references branches, not nodes.
        return ()

    def mutual_inductance(self, l_a: float, l_b: float) -> float:
        """M = k sqrt(La Lb) in henries."""
        return self.coupling * math.sqrt(l_a * l_b)
