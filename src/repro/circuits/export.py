"""SPICE netlist export for :class:`~repro.circuits.netlist.Circuit`.

Lets any circuit built by this library (linear stages, ring oscillators,
coupled pairs) be re-run in an external SPICE for cross-validation — the
reverse of the substitution this repo makes for the paper's experiments.

Element mapping
---------------
==================  =========================================
Resistor            ``Rx a b value``
Capacitor           ``Cx a b value [IC=v0]``
Inductor            ``Lx a b value [IC=i0]``
MutualInductance    ``Kx La Lb k``
VoltageSource       ``Vx a b DC/PULSE/PWL/SIN(...)``
CurrentSource       ``Ix a b DC/PULSE/PWL/SIN(...)``
Mosfet              ``Mx d g s s model`` + LEVEL=1 ``.model`` card
                    (KP chosen so W/L = 1; VTO = +-vth, LAMBDA = lam)
SwitchInverter      no SPICE primitive — exported as a comment and
                    reported in :attr:`SpiceExport.unsupported`
==================  =========================================

Names are sanitized (dots to underscores, designator letter enforced);
node names keep ``0`` as ground.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import NetlistError
from .behavioral import SwitchInverter
from .coupling import MutualInductance
from .elements import (Capacitor, CurrentSource, Inductor, Resistor,
                       VoltageSource)
from .mosfet import Mosfet
from .netlist import Circuit
from .waveforms import DC, PiecewiseLinear, Pulse, Sine, Step


@dataclass(frozen=True)
class SpiceExport:
    """A rendered netlist plus a list of elements that had no mapping."""

    text: str
    unsupported: List[str]


def _sanitize(name: str, designator: str) -> str:
    cleaned = name.replace(".", "_").replace(" ", "_")
    if not cleaned or cleaned[0].upper() != designator:
        cleaned = f"{designator}{cleaned}"
    return cleaned


def _node(name: str) -> str:
    return "0" if name == "0" else name.replace(".", "_")


def _format_value(value: float) -> str:
    return f"{value:.6g}"


def _source_spec(waveform) -> str:
    if isinstance(waveform, DC):
        return f"DC {_format_value(waveform.value)}"
    if isinstance(waveform, Step):
        # A step is a PWL ramp.
        t1 = waveform.delay
        t2 = waveform.delay + max(waveform.rise, 1e-15)
        return (f"PWL(0 0 {_format_value(t1)} 0 "
                f"{_format_value(t2)} {_format_value(waveform.level)})")
    if isinstance(waveform, Pulse):
        return (f"PULSE({_format_value(waveform.v1)} "
                f"{_format_value(waveform.v2)} "
                f"{_format_value(waveform.delay)} "
                f"{_format_value(max(waveform.rise, 1e-15))} "
                f"{_format_value(max(waveform.fall, 1e-15))} "
                f"{_format_value(waveform.width)} "
                f"{_format_value(waveform.period)})")
    if isinstance(waveform, PiecewiseLinear):
        points = " ".join(f"{_format_value(t)} {_format_value(v)}"
                          for t, v in waveform.points)
        return f"PWL({points})"
    if isinstance(waveform, Sine):
        return (f"SIN({_format_value(waveform.offset)} "
                f"{_format_value(waveform.amplitude)} "
                f"{_format_value(waveform.frequency)} "
                f"{_format_value(waveform.delay)})")
    raise NetlistError(
        f"waveform {type(waveform).__name__} has no SPICE mapping")


#: KP (A/V^2) used for the LEVEL=1 model cards; W/L is set to 2 beta/KP so
#: the square-law prefactor KP/2 * W/L equals beta/... see card emission.
_MODEL_KP = 1e-4


def to_spice(circuit: Circuit, *, t_end: float | None = None,
             dt: float | None = None) -> SpiceExport:
    """Render the circuit as a SPICE deck; optionally add a .TRAN card."""
    lines: List[str] = [f"* {circuit.title}"]
    unsupported: List[str] = []
    models: dict[str, str] = {}

    for element in circuit.elements:
        if isinstance(element, Resistor):
            lines.append(f"{_sanitize(element.name, 'R')} "
                         f"{_node(element.a)} {_node(element.b)} "
                         f"{_format_value(element.resistance)}")
        elif isinstance(element, Capacitor):
            card = (f"{_sanitize(element.name, 'C')} "
                    f"{_node(element.a)} {_node(element.b)} "
                    f"{_format_value(element.capacitance)}")
            if element.initial_voltage is not None:
                card += f" IC={_format_value(element.initial_voltage)}"
            lines.append(card)
        elif isinstance(element, Inductor):
            card = (f"{_sanitize(element.name, 'L')} "
                    f"{_node(element.a)} {_node(element.b)} "
                    f"{_format_value(element.inductance)}")
            if element.initial_current:
                card += f" IC={_format_value(element.initial_current)}"
            lines.append(card)
        elif isinstance(element, MutualInductance):
            lines.append(f"{_sanitize(element.name, 'K')} "
                         f"{_sanitize(element.inductor_a, 'L')} "
                         f"{_sanitize(element.inductor_b, 'L')} "
                         f"{_format_value(element.coupling)}")
        elif isinstance(element, VoltageSource):
            lines.append(f"{_sanitize(element.name, 'V')} "
                         f"{_node(element.a)} {_node(element.b)} "
                         f"{_source_spec(element.waveform)}")
        elif isinstance(element, CurrentSource):
            lines.append(f"{_sanitize(element.name, 'I')} "
                         f"{_node(element.a)} {_node(element.b)} "
                         f"{_source_spec(element.waveform)}")
        elif isinstance(element, Mosfet):
            polarity = "nmos" if element.polarity > 0 else "pmos"
            model_name = (f"m{polarity}_{element.vth:.3g}_"
                          f"{element.lam:.3g}").replace(".", "p") \
                .replace("-", "m")
            vto = element.vth if element.polarity > 0 else -element.vth
            models[model_name] = (
                f".model {model_name} {polarity} (LEVEL=1 "
                f"VTO={_format_value(vto)} KP={_format_value(_MODEL_KP)} "
                f"LAMBDA={_format_value(element.lam)})")
            # LEVEL=1: Id = KP/2 (W/L)(vgs-vt)^2; our beta multiplies the
            # full square law, so W/L = 2 beta / KP ... the library's
            # triode form matches LEVEL=1 with this width ratio.
            w_over_l = element.beta / _MODEL_KP
            lines.append(f"{_sanitize(element.name, 'M')} "
                         f"{_node(element.drain)} {_node(element.gate)} "
                         f"{_node(element.source)} {_node(element.source)} "
                         f"{model_name} W={_format_value(w_over_l)}u L=1u")
        elif isinstance(element, SwitchInverter):
            unsupported.append(element.name)
            lines.append(f"* unsupported behavioral inverter "
                         f"{element.name}: {element.input_node} -> "
                         f"{element.output_node}")
        else:
            unsupported.append(element.name)
            lines.append(f"* unsupported element {element.name} "
                         f"({type(element).__name__})")

    lines.extend(sorted(models.values()))
    if t_end is not None and dt is not None:
        lines.append(f".tran {_format_value(dt)} {_format_value(t_end)} UIC")
    lines.append(".end")
    return SpiceExport(text="\n".join(lines) + "\n", unsupported=unsupported)


def write_spice(circuit: Circuit, path: str, **kwargs) -> SpiceExport:
    """Render and write a SPICE deck to ``path``; returns the export."""
    export = to_spice(circuit, **kwargs)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(export.text)
    return export
