"""Circuit elements for the MNA transient simulator.

Sign conventions
----------------
* Two-terminal elements connect ``a`` to ``b``; positive branch current
  flows from ``a`` to ``b`` *through the element*.
* A voltage source enforces ``v(a) - v(b) = waveform(t)`` and carries an
  explicit branch-current unknown (as does an inductor).
* A current source pushes ``waveform(t)`` amperes from ``a`` through
  itself into ``b`` (i.e. it *extracts* that current from node ``a``).

Only topology and constitutive parameters live here; all matrix stamping
is centralized in :mod:`repro.circuits.mna` so the numerical scheme
(trapezoidal vs backward-Euler companions) stays in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Tuple

from ..errors import ParameterError

#: Type of a source waveform: seconds -> volts or amperes.
Waveform = Callable[[float], float]


@dataclass(frozen=True)
class Element:
    """Base class: a named element attached to a tuple of node names."""

    name: str

    @property
    def nodes(self) -> Tuple[str, ...]:
        raise NotImplementedError

    @property
    def branch_count(self) -> int:
        """Number of extra branch-current unknowns this element introduces."""
        return 0


@dataclass(frozen=True)
class TwoTerminal(Element):
    """An element between nodes ``a`` and ``b``."""

    a: str
    b: str

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class Resistor(TwoTerminal):
    """Linear resistor; ``resistance`` in ohms."""

    resistance: float = 0.0

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ParameterError(
                f"resistor {self.name}: resistance must be positive, "
                f"got {self.resistance}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass(frozen=True)
class Capacitor(TwoTerminal):
    """Linear capacitor; ``capacitance`` in farads.

    ``initial_voltage`` (volts, a-to-b) seeds the companion model when the
    transient run starts from user-supplied initial conditions.  When left
    ``None`` the initial voltage is read from the initial node vector.
    """

    capacitance: float = 0.0
    initial_voltage: float | None = None

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ParameterError(
                f"capacitor {self.name}: capacitance must be positive, "
                f"got {self.capacitance}")


@dataclass(frozen=True)
class Inductor(TwoTerminal):
    """Linear inductor; ``inductance`` in henries; carries a branch current.

    ``initial_current`` (amperes, a-to-b) is used at t = 0.
    """

    inductance: float = 0.0
    initial_current: float = 0.0

    def __post_init__(self) -> None:
        if self.inductance <= 0.0:
            raise ParameterError(
                f"inductor {self.name}: inductance must be positive, "
                f"got {self.inductance}")

    @property
    def branch_count(self) -> int:
        return 1


@dataclass(frozen=True)
class VoltageSource(TwoTerminal):
    """Ideal voltage source enforcing v(a) - v(b) = waveform(t)."""

    waveform: Waveform = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.waveform is None:
            raise ParameterError(f"voltage source {self.name} needs a waveform")

    @property
    def branch_count(self) -> int:
        return 1


@dataclass(frozen=True)
class CurrentSource(TwoTerminal):
    """Ideal current source driving waveform(t) amperes from a into b."""

    waveform: Waveform = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.waveform is None:
            raise ParameterError(f"current source {self.name} needs a waveform")


class NonlinearDevice(Element):
    """Interface for devices stamped per Newton iteration.

    Implementations provide :meth:`stamp`, which receives the candidate
    node-voltage lookup and adds the linearized companion (conductances
    into ``matrix``, residual currents into ``rhs``) for the current
    iterate.  See :class:`repro.circuits.mosfet.Mosfet` and
    :class:`repro.circuits.behavioral.SwitchInverter`.
    """

    def stamp(self, voltages, index_of, matrix, rhs) -> None:
        """Add this device's linearized stamp at the given voltage iterate.

        Parameters
        ----------
        voltages:
            Callable mapping a node name to its candidate voltage.
        index_of:
            Callable mapping a node name to its MNA row (or -1 for ground).
        matrix, rhs:
            Dense MNA matrix and right-hand side to accumulate into, using
            the Norton form: rhs carries +I_eq into the node the linearized
            current flows out of.
        """
        raise NotImplementedError
