"""Modified nodal analysis: system structure, stamps and DC solve.

The unknown vector is x = [node voltages | branch currents], with one
branch current per inductor and per voltage source.  KCL rows come first
(one per non-ground node), then one constitutive row per branch.

All companion-model stamping for transient analysis lives in
:mod:`repro.circuits.transient`; this module owns the index maps, the
static (resistive + topological) stamps shared by DC and transient, and
the Newton DC operating-point solve with gmin continuation.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..errors import NetlistError, SimulationError
from .coupling import MutualInductance
from .elements import (Capacitor, CurrentSource, Inductor, NonlinearDevice,
                       Resistor, VoltageSource)
from .netlist import GROUND, Circuit

#: Conductance from every node to ground, for numerical robustness.
DEFAULT_GMIN = 1e-12


class MnaStructure:
    """Index maps and element categorization for one circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.node_names: List[str] = circuit.nodes
        self._node_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.node_names)}
        self._node_index[GROUND] = -1

        self.resistors = circuit.elements_of_type(Resistor)
        self.capacitors = circuit.elements_of_type(Capacitor)
        self.inductors = circuit.elements_of_type(Inductor)
        self.voltage_sources = circuit.elements_of_type(VoltageSource)
        self.current_sources = circuit.elements_of_type(CurrentSource)
        self.nonlinear = circuit.elements_of_type(NonlinearDevice)
        self.mutuals = circuit.elements_of_type(MutualInductance)

        self.n_nodes = len(self.node_names)
        branch_elements = [*self.inductors, *self.voltage_sources]
        self._branch_index: Dict[str, int] = {
            e.name: self.n_nodes + j for j, e in enumerate(branch_elements)}
        self.n_branches = len(branch_elements)
        self.size = self.n_nodes + self.n_branches

        inductor_by_name = {e.name: e for e in self.inductors}
        for mutual in self.mutuals:
            for name in (mutual.inductor_a, mutual.inductor_b):
                if name not in inductor_by_name:
                    raise NetlistError(
                        f"mutual {mutual.name} references unknown inductor "
                        f"{name!r}")
        #: (row_a, row_b, M) triples resolved for the transient stamps.
        self.mutual_terms = [
            (self._branch_index[m.inductor_a], self._branch_index[m.inductor_b],
             m.mutual_inductance(inductor_by_name[m.inductor_a].inductance,
                                 inductor_by_name[m.inductor_b].inductance))
            for m in self.mutuals]

    # ------------------------------------------------------------------
    def node_index(self, node: str) -> int:
        """Row/column of a node's KCL equation; -1 for ground."""
        return self._node_index[node]

    def branch_row(self, element_name: str) -> int:
        """Row/column of a branch element's current unknown."""
        return self._branch_index[element_name]

    def voltage_getter(self, x: np.ndarray) -> Callable[[str], float]:
        """Return a node-name -> voltage lookup bound to solution vector x."""
        index = self._node_index

        def voltage(node: str) -> float:
            i = index[node]
            return 0.0 if i < 0 else float(x[i])

        return voltage

    # ------------------------------------------------------------------
    # Shared stamps.
    # ------------------------------------------------------------------
    def stamp_conductance(self, matrix: np.ndarray, a: int, b: int,
                          g: float) -> None:
        """Stamp a conductance g between rows/cols a and b (-1 = ground)."""
        if a >= 0:
            matrix[a, a] += g
            if b >= 0:
                matrix[a, b] -= g
                matrix[b, a] -= g
        if b >= 0:
            matrix[b, b] += g

    def stamp_static(self, matrix: np.ndarray, *, gmin: float) -> None:
        """Add resistor conductances, source/branch topology and gmin.

        The inductor/voltage-source *constitutive* diagonal terms are left
        to the caller (they differ between DC and transient); only the KCL
        coupling (+-1 in the branch current column) and the +-1 voltage
        terms of the branch rows are stamped here, because those are common
        to every analysis.
        """
        for resistor in self.resistors:
            self.stamp_conductance(matrix,
                                   self.node_index(resistor.a),
                                   self.node_index(resistor.b),
                                   resistor.conductance)
        for element in (*self.inductors, *self.voltage_sources):
            row = self.branch_row(element.name)
            ia = self.node_index(element.a)
            ib = self.node_index(element.b)
            if ia >= 0:
                matrix[ia, row] += 1.0      # current leaves node a
                matrix[row, ia] += 1.0      # +v(a) in branch equation
            if ib >= 0:
                matrix[ib, row] -= 1.0
                matrix[row, ib] -= 1.0
        if gmin > 0.0:
            for i in range(self.n_nodes):
                matrix[i, i] += gmin

    def stamp_current_sources(self, rhs: np.ndarray, t: float) -> None:
        """Add independent current-source contributions at time t."""
        for source in self.current_sources:
            value = source.waveform(t)
            ia = self.node_index(source.a)
            ib = self.node_index(source.b)
            if ia >= 0:
                rhs[ia] -= value
            if ib >= 0:
                rhs[ib] += value

    def stamp_nonlinear(self, x: np.ndarray, matrix: np.ndarray,
                        rhs: np.ndarray) -> None:
        """Let every nonlinear device add its linearized stamp at iterate x."""
        voltages = self.voltage_getter(x)
        for device in self.nonlinear:
            device.stamp(voltages, self.node_index, matrix, rhs)


def dc_operating_point(circuit: Circuit, *, t: float = 0.0,
                       gmin: float = DEFAULT_GMIN,
                       max_iterations: int = 200,
                       abstol: float = 1e-9,
                       reltol: float = 1e-6) -> Dict[str, float]:
    """Newton DC operating point: capacitors open, inductors shorted.

    Uses gmin continuation (large-to-small shunt conductances) when the
    plain Newton iteration fails, which handles the strongly nonlinear
    CMOS circuits built by :mod:`repro.circuits.builders`.

    Returns
    -------
    dict
        Node name -> voltage (ground included as 0.0).
    """
    structure = MnaStructure(circuit)
    gmin_schedule = [1e-3, 1e-5, 1e-7, 1e-9, gmin] if gmin < 1e-9 else [gmin]
    x = np.zeros(structure.size)
    last_error: SimulationError | None = None
    for g in gmin_schedule:
        try:
            x = _dc_newton(structure, x, t=t, gmin=g,
                           max_iterations=max_iterations,
                           abstol=abstol, reltol=reltol)
            last_error = None
        except SimulationError as exc:
            last_error = exc
    if last_error is not None:
        raise last_error
    result = {GROUND: 0.0}
    for name in structure.node_names:
        result[name] = float(x[structure.node_index(name)])
    return result


def _dc_newton(structure: MnaStructure, x0: np.ndarray, *, t: float,
               gmin: float, max_iterations: int, abstol: float,
               reltol: float) -> np.ndarray:
    base = np.zeros((structure.size, structure.size))
    structure.stamp_static(base, gmin=gmin)
    # DC constitutive rows: inductor => v(a) - v(b) = 0 (already stamped);
    # voltage source rows get the waveform value on the RHS.
    rhs_base = np.zeros(structure.size)
    for source in structure.voltage_sources:
        rhs_base[structure.branch_row(source.name)] = source.waveform(t)
    structure.stamp_current_sources(rhs_base, t)

    x = x0.copy()
    for _ in range(max_iterations):
        matrix = base.copy()
        rhs = rhs_base.copy()
        structure.stamp_nonlinear(x, matrix, rhs)
        try:
            x_new = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(f"singular MNA matrix in DC solve: {exc}") \
                from exc
        delta = np.abs(x_new - x)
        x = x_new
        if np.all(delta <= abstol + reltol * np.abs(x)):
            return x
    raise SimulationError(
        f"DC operating point did not converge in {max_iterations} iterations "
        f"(gmin={gmin:g})")
