"""Coupled two-line RLC ladder (aggressor/victim crosstalk substrate).

A pair of parallel same-layer wires couples through the lateral
capacitance per unit length c_c (the Miller-effect term of the paper's
Sec. 3 discussion) and through mutual inductance (coefficient k_m on the
segment inductors, reflecting shared return paths).  This builder lays
down two N-section ladders plus the coupling elements, giving the
substrate for the crosstalk experiments that quantify the paper's claim
that RC-only models substantially underestimate coupled noise [ref. 6].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.params import LineParams
from ..errors import ParameterError
from .netlist import GROUND, Circuit
from .rlc_line import RlcLadder, add_rlc_ladder


@dataclass(frozen=True)
class CoupledPair:
    """Two coupled ladders inside a circuit, plus their coupling elements."""

    aggressor: RlcLadder
    victim: RlcLadder
    coupling_capacitors: List[str]
    mutual_couplings: List[str]
    coupling_capacitance_per_length: float
    inductive_coupling: float


def add_coupled_pair(circuit: Circuit, prefix: str, *,
                     aggressor_in: str, aggressor_out: str,
                     victim_in: str, victim_out: str,
                     line: LineParams, length: float, segments: int,
                     coupling_capacitance_per_length: float,
                     inductive_coupling: float = 0.0) -> CoupledPair:
    """Add two identical coupled lines of the given length.

    Parameters
    ----------
    line:
        Per-unit-length parameters of *each* wire.  ``line.c`` should be
        the wire-to-ground capacitance; the wire-to-wire part is passed
        separately.
    coupling_capacitance_per_length:
        Lateral capacitance between the wires in F/m (e.g. from
        :func:`repro.extraction.capacitance.sakurai_coupling`).
    inductive_coupling:
        Mutual coupling coefficient k applied between corresponding
        segment inductors (0 disables; requires ``line.l > 0``).
    """
    if coupling_capacitance_per_length < 0.0:
        raise ParameterError("coupling capacitance must be >= 0")
    if not 0.0 <= inductive_coupling < 1.0:
        raise ParameterError("inductive coupling must be in [0, 1)")
    if inductive_coupling > 0.0 and line.l == 0.0:
        raise ParameterError(
            "inductive coupling requires a line with nonzero inductance")

    aggressor = add_rlc_ladder(circuit, f"{prefix}.agg", aggressor_in,
                               aggressor_out, line, length, segments)
    victim = add_rlc_ladder(circuit, f"{prefix}.vic", victim_in,
                            victim_out, line, length, segments)

    c_seg = coupling_capacitance_per_length * length / segments
    coupling_caps: List[str] = []
    mutuals: List[str] = []
    for i, (section_a, section_v) in enumerate(zip(aggressor.sections,
                                                   victim.sections)):
        if c_seg > 0.0:
            name = f"{prefix}.CC{i + 1}"
            circuit.capacitor(name, section_a.out_node, section_v.out_node,
                              c_seg)
            coupling_caps.append(name)
        if inductive_coupling > 0.0:
            name = f"{prefix}.K{i + 1}"
            circuit.mutual(name, section_a.inductor, section_v.inductor,
                           inductive_coupling)
            mutuals.append(name)
    return CoupledPair(aggressor=aggressor, victim=victim,
                       coupling_capacitors=coupling_caps,
                       mutual_couplings=mutuals,
                       coupling_capacitance_per_length=
                       coupling_capacitance_per_length,
                       inductive_coupling=inductive_coupling)


@dataclass(frozen=True)
class CrosstalkBench:
    """A driven aggressor next to a quiet victim, both repeater-terminated."""

    circuit: Circuit
    pair: CoupledPair
    victim_far_node: str
    aggressor_far_node: str


def build_crosstalk_bench(line: LineParams, *, length: float, segments: int,
                          r_driver: float, c_load: float,
                          coupling_capacitance_per_length: float,
                          inductive_coupling: float = 0.0,
                          v_step: float = 1.0,
                          rise: float = 0.0) -> CrosstalkBench:
    """Aggressor switched by a step, victim held low through its driver.

    Both wires see the same Thevenin driver resistance and capacitive
    load; the victim's near end is tied to ground through ``r_driver``
    (a quiet low output), so the noise at its far end is pure coupling.
    """
    from .waveforms import Step

    circuit = Circuit("crosstalk-bench")
    circuit.voltage_source("VAGG", "agg.src", GROUND,
                           Step(level=v_step, rise=rise))
    circuit.resistor("RAGG", "agg.src", "agg.in", r_driver)
    circuit.resistor("RVIC", "vic.hold", "vic.in", r_driver)
    circuit.voltage_source("VVIC", "vic.hold", GROUND, 0.0)

    pair = add_coupled_pair(
        circuit, "pair", aggressor_in="agg.in", aggressor_out="agg.out",
        victim_in="vic.in", victim_out="vic.out", line=line, length=length,
        segments=segments,
        coupling_capacitance_per_length=coupling_capacitance_per_length,
        inductive_coupling=inductive_coupling)

    circuit.capacitor("CLAGG", "agg.out", GROUND, c_load)
    circuit.capacitor("CLVIC", "vic.out", GROUND, c_load)
    return CrosstalkBench(circuit=circuit, pair=pair,
                          victim_far_node="vic.out",
                          aggressor_far_node="agg.out")
