"""Netlist container for the MNA simulator.

A :class:`Circuit` is an ordered collection of uniquely named elements.
Nodes are created implicitly the first time an element references them;
the ground node is the name ``"0"`` (alias :data:`GROUND`) and is always
present.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..errors import NetlistError
from .elements import (Capacitor, CurrentSource, Element, Inductor,
                       NonlinearDevice, Resistor, VoltageSource, Waveform)
from .waveforms import DC

#: Canonical name of the ground (reference) node.
GROUND = "0"


class Circuit:
    """A named collection of circuit elements with implicit node creation."""

    def __init__(self, title: str = "untitled") -> None:
        self.title = title
        self._elements: Dict[str, Element] = {}
        self._nodes: List[str] = []
        self._node_set = {GROUND}

    # ------------------------------------------------------------------
    # Element management.
    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add an element; returns it for chaining.

        Raises
        ------
        NetlistError
            If an element of the same name already exists.
        """
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name {element.name!r}")
        for node in element.nodes:
            self._register_node(node)
        self._elements[element.name] = element
        return element

    def _register_node(self, node: str) -> None:
        if not node:
            raise NetlistError("node names must be non-empty strings")
        if node not in self._node_set:
            self._node_set.add(node)
            self._nodes.append(node)

    # Convenience constructors -----------------------------------------
    def resistor(self, name: str, a: str, b: str, resistance: float) -> Resistor:
        """Add a resistor (ohms)."""
        return self.add(Resistor(name=name, a=a, b=b, resistance=resistance))  # type: ignore[return-value]

    def capacitor(self, name: str, a: str, b: str, capacitance: float,
                  initial_voltage: float | None = None) -> Capacitor:
        """Add a capacitor (farads)."""
        return self.add(Capacitor(name=name, a=a, b=b,
                                  capacitance=capacitance,
                                  initial_voltage=initial_voltage))  # type: ignore[return-value]

    def inductor(self, name: str, a: str, b: str, inductance: float,
                 initial_current: float = 0.0) -> Inductor:
        """Add an inductor (henries)."""
        return self.add(Inductor(name=name, a=a, b=b, inductance=inductance,
                                 initial_current=initial_current))  # type: ignore[return-value]

    def mutual(self, name: str, inductor_a: str, inductor_b: str,
               coupling: float):
        """Add a mutual-inductance coupling between two named inductors."""
        from .coupling import MutualInductance
        return self.add(MutualInductance(name=name, inductor_a=inductor_a,
                                         inductor_b=inductor_b,
                                         coupling=coupling))

    def voltage_source(self, name: str, a: str, b: str,
                       waveform: Waveform | float) -> VoltageSource:
        """Add a voltage source; a bare float becomes a DC source."""
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        return self.add(VoltageSource(name=name, a=a, b=b, waveform=waveform))  # type: ignore[return-value]

    def current_source(self, name: str, a: str, b: str,
                       waveform: Waveform | float) -> CurrentSource:
        """Add a current source; a bare float becomes a DC source."""
        if isinstance(waveform, (int, float)):
            waveform = DC(float(waveform))
        return self.add(CurrentSource(name=name, a=a, b=b, waveform=waveform))  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def elements(self) -> List[Element]:
        """All elements in insertion order."""
        return list(self._elements.values())

    @property
    def nodes(self) -> List[str]:
        """All non-ground nodes in first-reference order."""
        return list(self._nodes)

    def element(self, name: str) -> Element:
        """Look up an element by name."""
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no element named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def elements_of_type(self, kind: type) -> List[Element]:
        """All elements that are instances of ``kind``, in insertion order."""
        return [e for e in self._elements.values() if isinstance(e, kind)]

    def validate(self) -> None:
        """Check structural sanity of the netlist.

        Raises
        ------
        NetlistError
            If the circuit has no elements, or a non-ground node is
            referenced by only one element terminal (dangling), unless it
            belongs to a nonlinear device (whose gate may legitimately be
            high-impedance only through device capacitances).
        """
        if not self._elements:
            raise NetlistError("circuit has no elements")
        touch_count: Dict[str, int] = {}
        for element in self._elements.values():
            for node in element.nodes:
                touch_count[node] = touch_count.get(node, 0) + 1
        dangling = [n for n, count in touch_count.items()
                    if n != GROUND and count < 2]
        if dangling:
            raise NetlistError(
                f"dangling nodes (single connection): {sorted(dangling)}")

    def summary(self) -> str:
        """One-line inventory, e.g. '12R 8C 4L 1V 0I 5NL, 18 nodes'."""
        kinds: Iterable[tuple[str, type]] = (
            ("R", Resistor), ("C", Capacitor), ("L", Inductor),
            ("V", VoltageSource), ("I", CurrentSource),
            ("NL", NonlinearDevice),
        )
        parts = [f"{len(self.elements_of_type(cls))}{tag}" for tag, cls in kinds]
        return f"{' '.join(parts)}, {len(self._nodes)} nodes"
