"""Fixed-step transient analysis with Newton iterations per step.

Integration is trapezoidal by default (with a backward-Euler first step to
damp artificial transients from user initial conditions), selectable to
pure backward Euler.  Companion models:

* capacitor (trapezoidal): geq = 2C/dt, history current
  I_hist = geq * v_ab(t_n) + i_C(t_n); (BE): geq = C/dt, I_hist = geq v_ab.
* inductor (trapezoidal): branch row (2L/dt) i - v_ab = (2L/dt) i_n +
  v_ab(t_n); (BE): (L/dt) i - v_ab = (L/dt) i_n.

Nonlinear devices are linearized each Newton iteration via their
:meth:`~repro.circuits.elements.NonlinearDevice.stamp`.  On Newton failure
a step is recursively halved (up to a configurable depth), which carries
the ring-oscillator circuits of Sec. 3.3 through their switching
instants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..errors import SimulationError
from .elements import Resistor
from .mna import DEFAULT_GMIN, MnaStructure
from .netlist import GROUND, Circuit

#: Newton update cap (volts); larger proposed updates are scaled down.
DEFAULT_MAX_UPDATE = 1.0


@dataclass
class TransientOptions:
    """Knobs of the transient solver (SPICE-like defaults)."""

    method: str = "trapezoidal"           #: 'trapezoidal' or 'backward_euler'
    gmin: float = DEFAULT_GMIN
    abstol: float = 1e-9                  #: absolute Newton tolerance
    reltol: float = 1e-6                  #: relative Newton tolerance
    max_newton_iterations: int = 60
    max_step_halvings: int = 8            #: recursive dt halving depth
    max_update: float = DEFAULT_MAX_UPDATE

    def __post_init__(self) -> None:
        if self.method not in ("trapezoidal", "backward_euler"):
            raise ValueError(f"unknown integration method {self.method!r}")


class TransientResult:
    """Waveform storage for one transient run."""

    def __init__(self, structure: MnaStructure, times: np.ndarray,
                 states: np.ndarray) -> None:
        self._structure = structure
        self.time = times                   #: (n_points,) seconds
        self._states = states               #: (n_points, size)

    @property
    def node_names(self) -> list[str]:
        """All non-ground node names."""
        return list(self._structure.node_names)

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of a node (ground returns zeros)."""
        i = self._structure.node_index(node)
        if i < 0:
            return np.zeros_like(self.time)
        return self._states[:, i].copy()

    def branch_current(self, name: str) -> np.ndarray:
        """Current through an inductor or voltage source (a -> b)."""
        return self._states[:, self._structure.branch_row(name)].copy()

    def resistor_current(self, name: str) -> np.ndarray:
        """Current through a resistor computed as g * (v_a - v_b)."""
        element = self._structure.circuit.element(name)
        if not isinstance(element, Resistor):
            raise SimulationError(f"{name!r} is not a resistor")
        va = self.voltage(element.a)
        vb = self.voltage(element.b)
        return (va - vb) * element.conductance

    def final_voltages(self) -> Dict[str, float]:
        """Node voltages at the final time point."""
        out = {GROUND: 0.0}
        for node in self._structure.node_names:
            out[node] = float(self._states[-1, self._structure.node_index(node)])
        return out


class TransientSolver:
    """Runs fixed-step transient analysis on one circuit."""

    def __init__(self, circuit: Circuit,
                 options: Optional[TransientOptions] = None) -> None:
        circuit.validate()
        self.circuit = circuit
        self.options = options or TransientOptions()
        self.structure = MnaStructure(circuit)
        # Static matrices keyed by (dt, method); rebuilt when dt halves.
        self._static_cache: Dict[tuple[float, str], np.ndarray] = {}

    # ------------------------------------------------------------------
    def run(self, t_end: float, dt: float, *,
            initial_voltages: Optional[Mapping[str, float]] = None
            ) -> TransientResult:
        """Simulate from t = 0 to ``t_end`` with nominal step ``dt``.

        Parameters
        ----------
        initial_voltages:
            Node name -> voltage at t = 0; unspecified nodes start at 0 V.
            Inductor initial currents come from the elements themselves.

        Raises
        ------
        SimulationError
            If Newton fails even after the configured step halvings.
        """
        if t_end <= 0.0 or dt <= 0.0:
            raise SimulationError("t_end and dt must be positive")
        structure = self.structure
        # Tolerate float noise in t_end/dt (e.g. 2000.0000000000002) so an
        # exact multiple does not gain a spurious zero-length extra step.
        n_steps = max(1, int(math.ceil(t_end / dt * (1.0 - 1e-12))))

        x = np.zeros(structure.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                i = structure.node_index(node)
                if i >= 0:
                    x[i] = value
        for inductor in structure.inductors:
            x[structure.branch_row(inductor.name)] = inductor.initial_current

        # Capacitor history: currents (A) and voltages (V) at time t_n.
        cap_current = np.zeros(len(structure.capacitors))
        cap_voltage = np.empty(len(structure.capacitors))
        voltages = structure.voltage_getter(x)
        for j, cap in enumerate(structure.capacitors):
            if cap.initial_voltage is not None:
                cap_voltage[j] = cap.initial_voltage
            else:
                cap_voltage[j] = voltages(cap.a) - voltages(cap.b)

        times = np.empty(n_steps + 1)
        states = np.empty((n_steps + 1, structure.size))
        times[0] = 0.0
        states[0] = x

        t = 0.0
        for step in range(1, n_steps + 1):
            # Pin each target time to the ideal grid so float accumulation
            # cannot produce a zero-length (or overshooting) final step.
            t_target = min(step * dt, t_end)
            step_dt = t_target - t
            # First step uses BE to damp inconsistent initial conditions.
            method = ("backward_euler" if step == 1 else self.options.method)
            x, cap_current, cap_voltage = self._advance(
                x, cap_current, cap_voltage, t, step_dt, method,
                depth=0)
            t = t_target
            times[step] = t
            states[step] = x
        return TransientResult(structure, times, states)

    # ------------------------------------------------------------------
    def run_adaptive(self, t_end: float, *, dt_initial: float,
                     dt_min: float, dt_max: float,
                     lte_reltol: float = 1e-3, lte_abstol: float = 1e-6,
                     initial_voltages: Optional[Mapping[str, float]] = None,
                     safety: float = 0.9) -> TransientResult:
        """Adaptive-step transient with step-doubling error control.

        Each accepted step compares one full step of size dt against two
        half steps (Richardson estimate of the local truncation error of
        the trapezoidal rule); the step shrinks when the weighted error
        exceeds one and grows (up to 2x, capped at ``dt_max``) when it is
        comfortably below.  The half-step (more accurate) solution is the
        one kept.  Useful when a waveform alternates fast edges with long
        quiet stretches — the ring oscillators of Figs. 9-11 take 3-6x
        fewer steps than the fixed-step run at equal accuracy.

        Returns a :class:`TransientResult` on the (non-uniform) accepted
        time grid.
        """
        if t_end <= 0.0 or dt_initial <= 0.0:
            raise SimulationError("t_end and dt_initial must be positive")
        if not 0.0 < dt_min <= dt_initial <= dt_max:
            raise SimulationError(
                "need 0 < dt_min <= dt_initial <= dt_max")
        structure = self.structure

        x = np.zeros(structure.size)
        if initial_voltages:
            for node, value in initial_voltages.items():
                i = structure.node_index(node)
                if i >= 0:
                    x[i] = value
        for inductor in structure.inductors:
            x[structure.branch_row(inductor.name)] = inductor.initial_current
        cap_current = np.zeros(len(structure.capacitors))
        cap_voltage = np.empty(len(structure.capacitors))
        voltages = structure.voltage_getter(x)
        for j, cap in enumerate(structure.capacitors):
            cap_voltage[j] = (cap.initial_voltage
                              if cap.initial_voltage is not None
                              else voltages(cap.a) - voltages(cap.b))

        times = [0.0]
        states = [x.copy()]
        t = 0.0
        dt = dt_initial
        first = True
        while t < t_end * (1.0 - 1e-12):
            dt = min(dt, t_end - t)
            method = "backward_euler" if first else self.options.method
            try:
                full, _, _ = self._single_step(x, cap_current, cap_voltage,
                                               t, dt, method)
                x_half, cc_half, cv_half = self._single_step(
                    x, cap_current, cap_voltage, t, 0.5 * dt, method)
                x_new, cc_new, cv_new = self._single_step(
                    x_half, cc_half, cv_half, t + 0.5 * dt, 0.5 * dt,
                    method)
            except SimulationError:
                if dt <= dt_min * (1.0 + 1e-12):
                    raise
                dt = max(dt_min, 0.5 * dt)
                continue
            weight = lte_abstol + lte_reltol * np.maximum(np.abs(x_new),
                                                          np.abs(x))
            error = float(np.max(np.abs(x_new - full) / weight))
            if error > 1.0 and dt > dt_min * (1.0 + 1e-12):
                dt = max(dt_min, safety * dt / np.sqrt(error))
                continue
            # Accept the half-step solution.
            t += dt
            x, cap_current, cap_voltage = x_new, cc_new, cv_new
            times.append(t)
            states.append(x.copy())
            first = False
            if error < 0.25:
                dt = min(dt_max, 2.0 * dt)
            elif error > 0.75:
                dt = max(dt_min, safety * dt / np.sqrt(max(error, 1e-12)))
        return TransientResult(structure, np.asarray(times),
                               np.asarray(states))

    # ------------------------------------------------------------------
    def _static_matrix(self, dt: float, method: str) -> np.ndarray:
        key = (dt, method)
        cached = self._static_cache.get(key)
        if cached is not None:
            return cached
        structure = self.structure
        matrix = np.zeros((structure.size, structure.size))
        structure.stamp_static(matrix, gmin=self.options.gmin)
        factor = 2.0 if method == "trapezoidal" else 1.0
        for cap_geq, cap in self._capacitor_geq(dt, method):
            structure.stamp_conductance(matrix,
                                        structure.node_index(cap.a),
                                        structure.node_index(cap.b),
                                        cap_geq)
        # Branch rows carry +v_ab from stamp_static, so the trapezoidal
        # companion reads v_ab - (factor L/dt) i = -(factor L/dt) i_n [- v_ab,n].
        for inductor in structure.inductors:
            row = structure.branch_row(inductor.name)
            matrix[row, row] -= factor * inductor.inductance / dt
        # Mutual coupling: v1 picks up M di2/dt (and symmetrically).
        for row_a, row_b, m in structure.mutual_terms:
            matrix[row_a, row_b] -= factor * m / dt
            matrix[row_b, row_a] -= factor * m / dt
        if len(self._static_cache) > 32:
            self._static_cache.clear()
        self._static_cache[key] = matrix
        return matrix

    def _capacitor_geq(self, dt: float, method: str):
        factor = 2.0 if method == "trapezoidal" else 1.0
        for cap in self.structure.capacitors:
            yield factor * cap.capacitance / dt, cap

    def _advance(self, x: np.ndarray, cap_current: np.ndarray,
                 cap_voltage: np.ndarray, t: float, dt: float,
                 method: str, depth: int):
        """Advance one step of size dt; recursively halve on failure."""
        try:
            return self._single_step(x, cap_current, cap_voltage, t, dt,
                                     method)
        except SimulationError:
            if depth >= self.options.max_step_halvings:
                raise
        half = 0.5 * dt
        x1, c1, v1 = self._advance(x, cap_current, cap_voltage, t, half,
                                   method, depth + 1)
        return self._advance(x1, c1, v1, t + half, half, method, depth + 1)

    def _single_step(self, x: np.ndarray, cap_current: np.ndarray,
                     cap_voltage: np.ndarray, t: float, dt: float,
                     method: str):
        structure = self.structure
        options = self.options
        t_next = t + dt
        trapezoidal = method == "trapezoidal"

        base = self._static_matrix(dt, method)
        rhs_base = np.zeros(structure.size)

        # Capacitor companion history.
        for j, (geq, cap) in enumerate(self._capacitor_geq(dt, method)):
            if trapezoidal:
                hist = geq * cap_voltage[j] + cap_current[j]
            else:
                hist = geq * cap_voltage[j]
            ia = structure.node_index(cap.a)
            ib = structure.node_index(cap.b)
            if ia >= 0:
                rhs_base[ia] += hist
            if ib >= 0:
                rhs_base[ib] -= hist
        # Inductor companion history.
        voltages = structure.voltage_getter(x)
        factor = 2.0 if trapezoidal else 1.0
        for inductor in structure.inductors:
            row = structure.branch_row(inductor.name)
            i_n = x[row]
            hist = factor * inductor.inductance / dt * i_n
            if trapezoidal:
                hist += voltages(inductor.a) - voltages(inductor.b)
            rhs_base[row] = -hist
        for row_a, row_b, m in structure.mutual_terms:
            rhs_base[row_a] -= factor * m / dt * x[row_b]
            rhs_base[row_b] -= factor * m / dt * x[row_a]
        # Independent sources at t_{n+1}.
        for source in structure.voltage_sources:
            rhs_base[structure.branch_row(source.name)] = source.waveform(t_next)
        structure.stamp_current_sources(rhs_base, t_next)

        # Newton iterations.
        x_new = x.copy()
        if not structure.nonlinear:
            try:
                x_new = np.linalg.solve(base, rhs_base)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(f"singular transient matrix: {exc}") \
                    from exc
        else:
            converged = False
            for _ in range(options.max_newton_iterations):
                matrix = base.copy()
                rhs = rhs_base.copy()
                structure.stamp_nonlinear(x_new, matrix, rhs)
                try:
                    x_next = np.linalg.solve(matrix, rhs)
                except np.linalg.LinAlgError as exc:
                    raise SimulationError(
                        f"singular transient matrix at t={t_next:g}: {exc}") \
                        from exc
                delta = x_next - x_new
                max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
                if max_delta > options.max_update:
                    x_new = x_new + delta * (options.max_update / max_delta)
                    continue
                x_new = x_next
                if np.all(np.abs(delta)
                          <= options.abstol + options.reltol * np.abs(x_next)):
                    converged = True
                    break
            if not converged:
                raise SimulationError(
                    f"Newton failed to converge at t={t_next:g} (dt={dt:g})")

        # Update capacitor history at t_{n+1}.
        new_voltages = structure.voltage_getter(x_new)
        new_cap_current = cap_current.copy()
        new_cap_voltage = cap_voltage.copy()
        for j, (geq, cap) in enumerate(self._capacitor_geq(dt, method)):
            v_next = new_voltages(cap.a) - new_voltages(cap.b)
            if trapezoidal:
                new_cap_current[j] = (geq * v_next
                                      - (geq * cap_voltage[j] + cap_current[j]))
            else:
                new_cap_current[j] = geq * (v_next - cap_voltage[j])
            new_cap_voltage[j] = v_next
        return x_new, new_cap_current, new_cap_voltage


def simulate(circuit: Circuit, t_end: float, dt: float, *,
             initial_voltages: Optional[Mapping[str, float]] = None,
             options: Optional[TransientOptions] = None) -> TransientResult:
    """One-call transient simulation (constructs a solver and runs it)."""
    return TransientSolver(circuit, options).run(
        t_end, dt, initial_voltages=initial_voltages)
