"""Calibrated inverter description and inverter sub-circuit builders.

:class:`InverterCalibration` carries everything needed to instantiate a
size-k inverter consistent with the paper's driver abstraction: linear
input capacitance c_0 k, linear output parasitic c_p k, and an output
stage whose effective resistance is r_s / k.  The calibration itself
(fitting beta so the simulated inverter matches Table 1's r_s) lives in
:mod:`repro.tech.characterize`; this module only *uses* the result, so the
dependency between the technology layer and the circuit layer stays
one-directional.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import DriverParams
from ..errors import ParameterError
from .behavioral import SwitchInverter
from .mosfet import DEFAULT_LAMBDA, Mosfet
from .netlist import GROUND, Circuit


@dataclass(frozen=True)
class InverterCalibration:
    """Simulator inverter parameters calibrated to a technology node.

    ``beta`` is the per-minimum-size transconductance (A/V^2) used for
    both the NMOS and PMOS devices (symmetric inverter, switching
    threshold at VDD/2); a size-k inverter uses ``beta * k``, gate
    capacitance ``c_0 * k`` and output parasitic ``c_p * k``.
    """

    vdd: float
    vth: float
    beta: float
    lam: float
    driver: DriverParams

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ParameterError(f"vdd must be positive, got {self.vdd}")
        if not 0.0 < self.vth < self.vdd:
            raise ParameterError(
                f"vth must lie in (0, vdd), got {self.vth} vs vdd={self.vdd}")
        if self.beta <= 0.0:
            raise ParameterError(f"beta must be positive, got {self.beta}")

    def scaled_beta(self, k: float) -> float:
        """Transconductance of a size-k inverter."""
        if k <= 0.0:
            raise ParameterError(f"inverter size must be positive, got {k}")
        return self.beta * k


def analytic_beta(vdd: float, vth: float, r_s: float) -> float:
    """Analytic seed: beta with R_eff ~= 0.75 VDD / Id_sat equal to r_s."""
    if vdd <= vth:
        raise ParameterError(f"vdd ({vdd}) must exceed vth ({vth})")
    return 1.5 * vdd / (r_s * (vdd - vth) ** 2)


def add_mosfet_inverter(circuit: Circuit, name: str, input_node: str,
                        output_node: str, vdd_node: str,
                        calibration: InverterCalibration,
                        k: float = 1.0,
                        lam: float | None = None) -> None:
    """Add a size-k CMOS inverter (two MOSFETs + calibrated linear caps)."""
    beta = calibration.scaled_beta(k)
    lam_value = calibration.lam if lam is None else lam
    circuit.add(Mosfet(name=f"{name}.MN", drain=output_node, gate=input_node,
                       source=GROUND, polarity=1, vth=calibration.vth,
                       beta=beta, lam=lam_value))
    circuit.add(Mosfet(name=f"{name}.MP", drain=output_node, gate=input_node,
                       source=vdd_node, polarity=-1, vth=calibration.vth,
                       beta=beta, lam=lam_value))
    circuit.capacitor(f"{name}.CG", input_node, GROUND,
                      calibration.driver.c_0 * k)
    circuit.capacitor(f"{name}.CP", output_node, GROUND,
                      calibration.driver.c_p * k)


def add_switch_inverter(circuit: Circuit, name: str, input_node: str,
                        output_node: str, calibration: InverterCalibration,
                        k: float = 1.0, *,
                        width_fraction: float = 0.02) -> None:
    """Add a size-k behavioral switch inverter with the calibrated loading."""
    vdd = calibration.vdd
    circuit.add(SwitchInverter(
        name=name, input_node=input_node, output_node=output_node,
        vdd=vdd, threshold=0.5 * vdd,
        r_out=calibration.driver.r_s / k,
        width=width_fraction * vdd))
    circuit.capacitor(f"{name}.CG", input_node, GROUND,
                      calibration.driver.c_0 * k)
    circuit.capacitor(f"{name}.CP", output_node, GROUND,
                      calibration.driver.c_p * k)


#: Default channel-length-modulation coefficient, re-exported for callers.
__all__ = ["InverterCalibration", "analytic_beta", "add_mosfet_inverter",
           "add_switch_inverter", "DEFAULT_LAMBDA"]
