"""Source waveforms for the transient simulator.

Each waveform is a callable ``value = w(t)`` returning volts (for voltage
sources) or amperes (for current sources).  The set mirrors the SPICE
primitives the paper's experiments need: DC, step, pulse trains (for the
square-wave-excited buffered line of Sec. 3.3.1), piecewise linear and
sine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError


@dataclass(frozen=True)
class DC:
    """Constant value."""

    value: float

    def __call__(self, t: float) -> float:
        return self.value


@dataclass(frozen=True)
class Step:
    """0 before ``delay``, then a linear ramp of ``rise`` seconds to ``level``."""

    level: float
    delay: float = 0.0
    rise: float = 0.0

    def __call__(self, t: float) -> float:
        if t <= self.delay:
            return 0.0
        if self.rise <= 0.0 or t >= self.delay + self.rise:
            return self.level
        return self.level * (t - self.delay) / self.rise


@dataclass(frozen=True)
class Pulse:
    """SPICE-style periodic pulse.

    Attributes follow the SPICE PULSE card: initial value v1, pulsed value
    v2, delay, rise time, fall time, pulse width and period.
    """

    v1: float
    v2: float
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 2e-9

    def __post_init__(self) -> None:
        if self.period <= 0.0:
            raise ParameterError(f"pulse period must be positive, got {self.period}")
        if self.rise < 0.0 or self.fall < 0.0 or self.width < 0.0:
            raise ParameterError("pulse rise/fall/width must be non-negative")
        if self.rise + self.width + self.fall > self.period:
            raise ParameterError("pulse rise + width + fall exceeds period")

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.v1
        phase = math.fmod(t - self.delay, self.period)
        if phase < self.rise:
            if self.rise == 0.0:
                return self.v2
            return self.v1 + (self.v2 - self.v1) * phase / self.rise
        phase -= self.rise
        if phase < self.width:
            return self.v2
        phase -= self.width
        if phase < self.fall:
            if self.fall == 0.0:
                return self.v1
            return self.v2 + (self.v1 - self.v2) * phase / self.fall
        return self.v1


@dataclass(frozen=True)
class PiecewiseLinear:
    """Linear interpolation through (time, value) points; clamped outside."""

    points: Sequence[tuple[float, float]]

    def __post_init__(self) -> None:
        times = [p[0] for p in self.points]
        if len(times) < 1:
            raise ParameterError("PWL waveform needs at least one point")
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            raise ParameterError("PWL times must be strictly increasing")

    def __call__(self, t: float) -> float:
        pts = self.points
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t1, v1), (t2, v2) in zip(pts, pts[1:]):
            if t1 <= t <= t2:
                return v1 + (v2 - v1) * (t - t1) / (t2 - t1)
        raise AssertionError("unreachable: t inside PWL range but no segment")


@dataclass(frozen=True)
class Sine:
    """offset + amplitude * sin(2 pi freq (t - delay)), zero before delay."""

    offset: float
    amplitude: float
    frequency: float
    delay: float = 0.0

    def __call__(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        return self.offset + self.amplitude * math.sin(
            2.0 * math.pi * self.frequency * (t - self.delay))
