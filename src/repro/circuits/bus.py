"""N-line coupled bus with per-line switching patterns.

Generalizes the two-line crosstalk bench to a bus: ``n_lines`` parallel
wires, nearest-neighbour (and optionally next-nearest) coupling
capacitance, mutual inductance decaying with wire separation, and a
drive assignment per line:

* ``'up'``     — 0 -> VDD step through the driver resistance,
* ``'down'``   — VDD -> 0 step,
* ``'low'``    — held at 0 (quiet victim candidates),
* ``'high'``   — held at VDD.

This is the substrate for the dynamic Miller-effect experiment: the
victim's measured delay under in-phase vs anti-phase neighbours is the
time-domain counterpart of the paper's static "effective c varies by up
to 4x" remark, and the bus geometry feeds straight from the Table 1
extraction models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.params import LineParams
from ..errors import ParameterError
from .netlist import GROUND, Circuit
from .rlc_line import RlcLadder, add_rlc_ladder
from .waveforms import DC, Step

#: Recognized per-line drive patterns.
PATTERNS = ("up", "down", "low", "high")


@dataclass(frozen=True)
class BusBench:
    """A built bus: per-line ladders plus probe bookkeeping."""

    circuit: Circuit
    ladders: List[RlcLadder]
    patterns: List[str]
    vdd: float

    @property
    def n_lines(self) -> int:
        return len(self.ladders)

    def far_node(self, index: int) -> str:
        """Far-end (receiver) node of line ``index``."""
        return self.ladders[index].output_node

    def near_node(self, index: int) -> str:
        """Near-end (driver) node of line ``index``."""
        return self.ladders[index].input_node


def build_bus_bench(line: LineParams, *, n_lines: int, length: float,
                    segments: int, r_driver: float, c_load: float,
                    coupling_capacitance_per_length: float,
                    patterns: Sequence[str], vdd: float = 1.0,
                    inductive_coupling: float = 0.0,
                    coupling_decay: float = 0.5,
                    rise: float = 0.0) -> BusBench:
    """Build an ``n_lines`` coupled bus with the given switching pattern.

    Parameters
    ----------
    patterns:
        One pattern string per line (see :data:`PATTERNS`).
    coupling_capacitance_per_length:
        Lateral capacitance between *adjacent* lines (F/m).
    inductive_coupling:
        Mutual coefficient between adjacent lines' segment inductors;
        between lines i and j it decays as
        ``inductive_coupling * coupling_decay**(|i-j|-1)``.
    coupling_decay:
        Per-wire-pitch decay of the mutual coefficient (inductive
        coupling reaches beyond nearest neighbours, unlike capacitive).
    """
    if n_lines < 2:
        raise ParameterError(f"a bus needs >= 2 lines, got {n_lines}")
    if len(patterns) != n_lines:
        raise ParameterError(
            f"need {n_lines} patterns, got {len(patterns)}")
    for pattern in patterns:
        if pattern not in PATTERNS:
            raise ParameterError(
                f"unknown pattern {pattern!r}; use one of {PATTERNS}")
    if not 0.0 <= inductive_coupling < 1.0:
        raise ParameterError("inductive coupling must be in [0, 1)")
    if not 0.0 < coupling_decay <= 1.0:
        raise ParameterError("coupling decay must be in (0, 1]")
    if inductive_coupling > 0.0 and line.l == 0.0:
        raise ParameterError(
            "inductive coupling requires a line with nonzero inductance")

    circuit = Circuit(f"bus x{n_lines}")
    ladders: List[RlcLadder] = []
    for i, pattern in enumerate(patterns):
        source_node = f"b{i}.src"
        if pattern == "up":
            waveform = Step(level=vdd, rise=rise)
        elif pattern == "down":
            # VDD falling to 0: a high DC minus a step.
            waveform = _FallingStep(vdd=vdd, rise=rise)
        elif pattern == "low":
            waveform = DC(0.0)
        else:
            waveform = DC(vdd)
        circuit.voltage_source(f"V{i}", source_node, GROUND, waveform)
        circuit.resistor(f"R{i}", source_node, f"b{i}.in", r_driver)
        ladders.append(add_rlc_ladder(circuit, f"b{i}.line", f"b{i}.in",
                                      f"b{i}.out", line, length, segments))
        circuit.capacitor(f"CL{i}", f"b{i}.out", GROUND, c_load)

    c_adjacent = coupling_capacitance_per_length * length / segments
    for i in range(n_lines - 1):
        for s, (section_a, section_b) in enumerate(
                zip(ladders[i].sections, ladders[i + 1].sections)):
            if c_adjacent > 0.0:
                circuit.capacitor(f"CC{i}_{i + 1}_{s}", section_a.out_node,
                                  section_b.out_node, c_adjacent)
    if inductive_coupling > 0.0:
        for i in range(n_lines):
            for j in range(i + 1, n_lines):
                k = inductive_coupling * coupling_decay ** (j - i - 1)
                if k <= 1e-6:
                    continue
                for s, (section_a, section_b) in enumerate(
                        zip(ladders[i].sections, ladders[j].sections)):
                    circuit.mutual(f"K{i}_{j}_{s}", section_a.inductor,
                                   section_b.inductor, k)
    return BusBench(circuit=circuit, ladders=ladders,
                    patterns=list(patterns), vdd=vdd)


@dataclass(frozen=True)
class _FallingStep:
    """VDD before t=0+, ramping to 0 — the mirror of Step."""

    vdd: float
    rise: float = 0.0

    def __call__(self, t: float) -> float:
        if t <= 0.0:
            return self.vdd
        if self.rise <= 0.0 or t >= self.rise:
            return 0.0
        return self.vdd * (1.0 - t / self.rise)


@dataclass(frozen=True)
class PatternSearchResult:
    """Outcome of an exhaustive neighbour-pattern delay search."""

    worst_pattern: tuple
    worst_delay: float
    best_pattern: tuple
    best_delay: float
    delays: dict

    @property
    def spread(self) -> float:
        """worst / best victim delay across all neighbour patterns."""
        return self.worst_delay / self.best_delay


def worst_case_pattern(line: LineParams, *, n_lines: int, length: float,
                       segments: int, r_driver: float, c_load: float,
                       coupling_capacitance_per_length: float,
                       vdd: float, inductive_coupling: float = 0.0,
                       t_end: float, dt: float,
                       victim_pattern: str = "up",
                       neighbour_patterns: Sequence[str] = PATTERNS
                       ) -> PatternSearchResult:
    """Exhaustively search neighbour switching patterns for the victim.

    The centre line carries ``victim_pattern``; every combination of the
    allowed patterns on the other lines is simulated and the victim's 50%
    arrival measured.  Exponential in (n_lines - 1) — intended for the
    2-4-line buses where it is exact and cheap, exactly the regime where
    pattern-dependence matters most (nearest neighbours dominate).
    """
    import itertools

    from ..analysis.waveform import Waveform
    from .transient import simulate

    if victim_pattern not in ("up", "down"):
        raise ParameterError("victim must switch: pattern 'up' or 'down'")
    victim_index = n_lines // 2
    neighbour_slots = [i for i in range(n_lines) if i != victim_index]
    delays: dict = {}
    for combo in itertools.product(neighbour_patterns,
                                   repeat=len(neighbour_slots)):
        patterns = [None] * n_lines
        patterns[victim_index] = victim_pattern
        for slot, pattern in zip(neighbour_slots, combo):
            patterns[slot] = pattern
        bench = build_bus_bench(
            line, n_lines=n_lines, length=length, segments=segments,
            r_driver=r_driver, c_load=c_load,
            coupling_capacitance_per_length=coupling_capacitance_per_length,
            patterns=patterns, vdd=vdd,
            inductive_coupling=inductive_coupling)
        result = simulate(bench.circuit, t_end, dt,
                          initial_voltages=initial_bus_voltages(bench))
        waveform = Waveform(result.time,
                            result.voltage(bench.far_node(victim_index)))
        rising = victim_pattern == "up"
        delays[tuple(combo)] = waveform.first_crossing(
            0.5 * vdd, rising=rising)
    worst = max(delays, key=delays.get)
    best = min(delays, key=delays.get)
    return PatternSearchResult(worst_pattern=worst,
                               worst_delay=delays[worst],
                               best_pattern=best, best_delay=delays[best],
                               delays=delays)


def initial_bus_voltages(bench: BusBench) -> dict[str, float]:
    """Initial node voltages consistent with each line's pattern.

    'up'/'low' lines start at 0 V everywhere; 'down'/'high' lines start at
    VDD, so the t=0 state is the pre-transition steady state.
    """
    ics: dict[str, float] = {}
    for ladder, pattern in zip(bench.ladders, bench.patterns):
        level = bench.vdd if pattern in ("down", "high") else 0.0
        ics[f"{ladder.input_node}"] = level
        ics[ladder.input_node.replace(".in", ".src")] = level
        for section in ladder.sections:
            if section.mid_node is not None:
                ics[section.mid_node] = level
            ics[section.out_node] = level
    return ics
