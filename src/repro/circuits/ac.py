"""Small-signal AC analysis for the MNA simulator.

Solves the complex phasor system (G + j omega C-stamps) x = b at each
requested frequency: resistors stamp conductance, capacitors j omega C,
inductors and voltage sources keep their branch rows with j omega L (and
j omega M for mutual coupling) on the branch diagonal.  Exactly one
voltage source is designated the AC input (unit phasor); every node
voltage is then the transfer function from that input.

This gives the repo a third, *frequency-domain* leg of cross-validation:
the discretized ladder's H(j omega) can be compared directly against the
closed-form Eq. 1 evaluated at s = j omega (see tests), independent of
any time-stepping error.

Nonlinear devices are not linearized automatically (no operating-point
small-signal models are defined); circuits containing them are rejected.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import SimulationError
from .mna import DEFAULT_GMIN, MnaStructure
from .netlist import Circuit


class AcAnalysis:
    """Phasor analysis of a linear circuit with one AC-driven source."""

    def __init__(self, circuit: Circuit, *, input_source: str,
                 gmin: float = DEFAULT_GMIN) -> None:
        circuit.validate()
        self.structure = MnaStructure(circuit)
        if self.structure.nonlinear:
            names = [d.name for d in self.structure.nonlinear]
            raise SimulationError(
                f"AC analysis supports linear circuits only; nonlinear "
                f"devices present: {names}")
        source_names = {s.name for s in self.structure.voltage_sources}
        if input_source not in source_names:
            raise SimulationError(
                f"input source {input_source!r} is not a voltage source "
                f"of this circuit")
        self.input_source = input_source
        self.gmin = gmin

        # Frequency-independent part: resistors + branch/source topology.
        structure = self.structure
        self._static = np.zeros((structure.size, structure.size),
                                dtype=complex)
        structure.stamp_static(self._static.view(), gmin=gmin)

    # ------------------------------------------------------------------
    def solve(self, omega: float) -> np.ndarray:
        """Solve the phasor system at angular frequency ``omega`` (rad/s).

        Returns the full solution vector (node voltages then branch
        currents) for a unit input phasor; other voltage sources are AC
        grounds (0 V phasors).
        """
        structure = self.structure
        matrix = self._static.copy()
        s = 1j * omega
        for cap in structure.capacitors:
            structure.stamp_conductance(matrix,
                                        structure.node_index(cap.a),
                                        structure.node_index(cap.b),
                                        s * cap.capacitance)
        # Branch rows read v_ab (already stamped) and need -(s L) i terms
        # to represent v_ab = s L i  (written as v_ab - sL i = 0).
        for inductor in structure.inductors:
            row = structure.branch_row(inductor.name)
            matrix[row, row] -= s * inductor.inductance
        for row_a, row_b, m in structure.mutual_terms:
            matrix[row_a, row_b] -= s * m
            matrix[row_b, row_a] -= s * m

        rhs = np.zeros(structure.size, dtype=complex)
        rhs[structure.branch_row(self.input_source)] = 1.0
        try:
            return np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(
                f"singular AC system at omega={omega:g}: {exc}") from exc

    def transfer(self, node: str, omegas: Sequence[float]) -> np.ndarray:
        """H(j omega) = V(node)/V(input) across angular frequencies."""
        index = self.structure.node_index(node)
        out = np.empty(len(omegas), dtype=complex)
        for i, omega in enumerate(omegas):
            solution = self.solve(float(omega))
            out[i] = solution[index] if index >= 0 else 0.0
        return out

    def input_impedance(self, omegas: Sequence[float]) -> np.ndarray:
        """Z_in(j omega) = V_in / I_in seen by the input source.

        The source's branch current flows a -> b through it, i.e. *into*
        the circuit at the negative terminal; the impedance presented to
        the source is -V/I with our sign convention.
        """
        row = self.structure.branch_row(self.input_source)
        out = np.empty(len(omegas), dtype=complex)
        for i, omega in enumerate(omegas):
            solution = self.solve(float(omega))
            current = solution[row]
            if current == 0.0:
                out[i] = complex("inf")
            else:
                out[i] = -1.0 / current
        return out


def ac_transfer(circuit: Circuit, *, input_source: str, output_node: str,
                frequencies: Sequence[float]) -> np.ndarray:
    """One-call helper: H(j 2 pi f) at the given frequencies in Hz."""
    analysis = AcAnalysis(circuit, input_source=input_source)
    omegas = [2.0 * np.pi * f for f in frequencies]
    return analysis.transfer(output_node, omegas)


def bode_magnitude_db(transfer: np.ndarray) -> np.ndarray:
    """20 log10 |H| of a complex transfer array."""
    return 20.0 * np.log10(np.abs(transfer))


def find_bandwidth(circuit: Circuit, *, input_source: str, output_node: str,
                   f_start: float = 1e6, f_stop: float = 1e13,
                   drop_db: float = 3.0) -> float:
    """First frequency where |H| falls ``drop_db`` below its DC value.

    Scans log-spaced decades and bisects the crossing; raises if the
    response never drops that far in the scanned range.
    """
    analysis = AcAnalysis(circuit, input_source=input_source)

    def magnitude(f: float) -> float:
        h = analysis.transfer(output_node, [2.0 * np.pi * f])[0]
        return abs(h)

    reference = magnitude(f_start)
    target = reference * 10.0 ** (-drop_db / 20.0)
    previous = f_start
    for f in np.logspace(np.log10(f_start), np.log10(f_stop), 200)[1:]:
        if magnitude(float(f)) <= target:
            lo, hi = previous, float(f)
            for _ in range(60):
                mid = np.sqrt(lo * hi)
                if magnitude(float(mid)) <= target:
                    hi = mid
                else:
                    lo = mid
            return float(np.sqrt(lo * hi))
        previous = float(f)
    raise SimulationError(
        f"response never dropped {drop_db} dB below DC in "
        f"[{f_start:g}, {f_stop:g}] Hz")
