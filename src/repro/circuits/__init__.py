"""MNA transient circuit simulator (the repo's SPICE substitute).

Built from scratch for the ring-oscillator / current-density experiments
of Sec. 3.3: netlist container, element library (R, L, C, sources,
square-law MOSFETs, behavioral switch inverters), MNA assembly, DC
operating point and fixed-step trapezoidal/backward-Euler transient with
per-step Newton and automatic step halving.
"""

from .ac import AcAnalysis, ac_transfer, bode_magnitude_db, find_bandwidth
from .behavioral import SwitchInverter
from .builders import (DEFAULT_SEGMENTS, BufferedLine, RingOscillator,
                       StageTestbench, build_buffered_line,
                       build_linear_stage, build_ring_oscillator)
from .bus import (PATTERNS, BusBench, PatternSearchResult, build_bus_bench,
                  initial_bus_voltages, worst_case_pattern)
from .coupled_line import (CoupledPair, CrosstalkBench, add_coupled_pair,
                           build_crosstalk_bench)
from .coupling import MutualInductance
from .elements import (Capacitor, CurrentSource, Element, Inductor,
                       NonlinearDevice, Resistor, TwoTerminal, VoltageSource)
from .inverter import (InverterCalibration, add_mosfet_inverter,
                       add_switch_inverter, analytic_beta)
from .mna import DEFAULT_GMIN, MnaStructure, dc_operating_point
from .mosfet import DEFAULT_LAMBDA, Mosfet
from .netlist import GROUND, Circuit
from .rlc_line import LadderSection, RlcLadder, add_rlc_ladder
from .transient import (TransientOptions, TransientResult, TransientSolver,
                        simulate)
from .waveforms import DC, PiecewiseLinear, Pulse, Sine, Step

from .export import SpiceExport, to_spice, write_spice

__all__ = [
    "AcAnalysis", "ac_transfer", "bode_magnitude_db", "find_bandwidth",
    "SpiceExport", "to_spice", "write_spice",
    "SwitchInverter",
    "DEFAULT_SEGMENTS", "BufferedLine", "RingOscillator", "StageTestbench",
    "build_buffered_line", "build_linear_stage", "build_ring_oscillator",
    "CoupledPair", "CrosstalkBench", "add_coupled_pair",
    "build_crosstalk_bench", "MutualInductance",
    "PATTERNS", "BusBench", "PatternSearchResult", "build_bus_bench",
    "initial_bus_voltages", "worst_case_pattern",
    "Capacitor", "CurrentSource", "Element", "Inductor", "NonlinearDevice",
    "Resistor", "TwoTerminal", "VoltageSource",
    "InverterCalibration", "add_mosfet_inverter", "add_switch_inverter",
    "analytic_beta",
    "DEFAULT_GMIN", "MnaStructure", "dc_operating_point",
    "DEFAULT_LAMBDA", "Mosfet",
    "GROUND", "Circuit",
    "LadderSection", "RlcLadder", "add_rlc_ladder",
    "TransientOptions", "TransientResult", "TransientSolver", "simulate",
    "DC", "PiecewiseLinear", "Pulse", "Sine", "Step",
]
