"""Distributed RLC line -> lumped ladder discretization.

The transient simulator needs a finite network; a uniform line of length h
is represented by N identical L-sections, each carrying the series
resistance r h/N and inductance l h/N followed by the shunt capacitance
c h/N to ground.  For zero line inductance the inductors are omitted
entirely (pure RC ladder).  Segment-count convergence against the
analytical two-pole model is measured by the ablation benchmark
``benchmarks/test_bench_ablation_segments.py``; 10-20 segments reproduce
the stage delay to within a few percent, consistent with standard
transmission-line discretization practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.params import LineParams
from ..errors import ParameterError
from .netlist import GROUND, Circuit


@dataclass(frozen=True)
class LadderSection:
    """Names of the elements and nodes of one ladder section."""

    resistor: str
    inductor: str | None
    capacitor: str
    mid_node: str | None
    out_node: str


@dataclass(frozen=True)
class RlcLadder:
    """Handle to a discretized line inside a circuit.

    ``input_node`` and ``output_node`` are the line terminals;
    ``sections`` lists per-segment element names, so current probes can
    target e.g. the first segment's inductor (Fig. 12 measures the
    interconnect current density there).
    """

    prefix: str
    input_node: str
    output_node: str
    sections: List[LadderSection]
    line: LineParams
    length: float

    @property
    def segment_count(self) -> int:
        return len(self.sections)

    def current_probe_element(self, segment: int = 0) -> str:
        """Element name whose branch/derived current equals the line current.

        For an RLC ladder this is the segment's inductor (a true branch
        current unknown); for an RC ladder it is the segment's resistor.
        """
        section = self.sections[segment]
        return section.inductor if section.inductor is not None \
            else section.resistor


def add_rlc_ladder(circuit: Circuit, prefix: str, input_node: str,
                   output_node: str, line: LineParams, length: float,
                   segments: int) -> RlcLadder:
    """Add an N-section ladder for a line of the given length (metres).

    Internal nodes are named ``{prefix}.n{i}`` (and ``{prefix}.m{i}``
    between R and L of each section).  The shunt capacitor of section i
    connects that section's output node to ground.

    Raises
    ------
    ParameterError
        For non-positive length or segment count.
    """
    if segments < 1:
        raise ParameterError(f"segment count must be >= 1, got {segments}")
    if length <= 0.0:
        raise ParameterError(f"line length must be positive, got {length}")

    r_seg = line.r * length / segments
    l_seg = line.l * length / segments
    c_seg = line.c * length / segments
    has_inductor = l_seg > 0.0

    sections: List[LadderSection] = []
    previous = input_node
    for i in range(segments):
        out = output_node if i == segments - 1 else f"{prefix}.n{i + 1}"
        r_name = f"{prefix}.R{i + 1}"
        c_name = f"{prefix}.C{i + 1}"
        if has_inductor:
            mid = f"{prefix}.m{i + 1}"
            l_name = f"{prefix}.L{i + 1}"
            circuit.resistor(r_name, previous, mid, r_seg)
            circuit.inductor(l_name, mid, out, l_seg)
        else:
            mid = None
            l_name = None
            circuit.resistor(r_name, previous, out, r_seg)
        circuit.capacitor(c_name, out, GROUND, c_seg)
        sections.append(LadderSection(resistor=r_name, inductor=l_name,
                                      capacitor=c_name, mid_node=mid,
                                      out_node=out))
        previous = out
    return RlcLadder(prefix=prefix, input_node=input_node,
                     output_node=output_node, sections=sections,
                     line=line, length=length)
