"""Circuit builders for the paper's simulation experiments.

Three testbenches:

* :func:`build_linear_stage` — the exact Fig. 1 structure with an ideal
  (linear Thevenin) driver, used to validate the two-pole model against
  the transient engine and to study ladder-segment convergence.
* :func:`build_ring_oscillator` — the five-stage ring oscillator of
  Sec. 3.3.1, each stage an inverter of size k driving a length-h line.
* :func:`build_buffered_line` — an open chain of buffered segments excited
  by a square wave, the paper's check that false switching is not a
  ring-oscillator artifact.

Inverters come in two flavours selected by ``style``: the calibrated
square-law CMOS inverter ('mosfet') and the behavioral switch-level
inverter ('switch'); both load their input with c_0 k and their output
with c_p k as in the paper's abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.params import LineParams, Stage
from ..errors import ParameterError
from .inverter import (InverterCalibration, add_mosfet_inverter,
                       add_switch_inverter)
from .netlist import GROUND, Circuit
from .rlc_line import RlcLadder, add_rlc_ladder
from .waveforms import Pulse, Step

#: Default ladder discretization for stage-scale lines.
DEFAULT_SEGMENTS = 12


@dataclass(frozen=True)
class StageTestbench:
    """A linear driver-line-load stage ready for transient simulation."""

    circuit: Circuit
    input_node: str          #: ideal source node (before R_S)
    driver_node: str         #: driver output (line near end)
    output_node: str         #: line far end (the C_L node)
    ladder: RlcLadder


def build_linear_stage(stage: Stage, *, segments: int = DEFAULT_SEGMENTS,
                       v_step: float = 1.0, rise: float = 0.0
                       ) -> StageTestbench:
    """Fig. 1 structure with an ideal step source behind R_S.

    The source steps 0 -> ``v_step`` at t = 0 with optional linear
    ``rise``; R_S = r_s/k, C_P = c_p k and C_L = c_0 k follow from the
    stage's sizing law.
    """
    circuit = Circuit(f"linear-stage h={stage.h:g} k={stage.k:g}")
    drv = stage.sized_driver
    circuit.voltage_source("VSTEP", "src", GROUND,
                           Step(level=v_step, delay=0.0, rise=rise))
    circuit.resistor("RS", "src", "drv", drv.r_series)
    circuit.capacitor("CP", "drv", GROUND, drv.c_parasitic)
    ladder = add_rlc_ladder(circuit, "line", "drv", "out", stage.line,
                            stage.h, segments)
    circuit.capacitor("CL", "out", GROUND, drv.c_load)
    return StageTestbench(circuit=circuit, input_node="src",
                          driver_node="drv", output_node="out",
                          ladder=ladder)


@dataclass(frozen=True)
class RingOscillator:
    """A built ring oscillator with its probe points.

    ``stage_inputs[i]`` is the input node of inverter i (far end of the
    feeding line); ``stage_outputs[i]`` is its output node (line near
    end).  ``ladders[i]`` connects stage i's output to stage i+1's input.
    """

    circuit: Circuit
    stage_inputs: List[str]
    stage_outputs: List[str]
    ladders: List[RlcLadder]
    vdd: float
    has_rail_node: bool = True

    @property
    def n_stages(self) -> int:
        return len(self.stage_outputs)

    def initial_voltages(self) -> dict[str, float]:
        """Alternating rail initial conditions that kick off oscillation.

        Stage outputs (and every node of the line each output drives) are
        set to alternating rails; with an odd stage count the assignment is
        necessarily frustrated, which is what makes the ring oscillate.
        """
        ics: dict[str, float] = {"vdd": self.vdd} if self.has_rail_node else {}
        for i, ladder in enumerate(self.ladders):
            level = self.vdd if i % 2 == 0 else 0.0
            ics[ladder.input_node] = level
            for section in ladder.sections:
                if section.mid_node is not None:
                    ics[section.mid_node] = level
                ics[section.out_node] = level
        return ics


def build_ring_oscillator(calibration: InverterCalibration,
                          line: LineParams, h: float, k: float, *,
                          n_stages: int = 5,
                          segments: int = DEFAULT_SEGMENTS,
                          style: str = "mosfet",
                          switch_width_fraction: float = 0.02
                          ) -> RingOscillator:
    """Ring oscillator: ``n_stages`` inverters each driving a length-h line.

    Parameters
    ----------
    style:
        'mosfet' for the calibrated square-law CMOS inverter, 'switch' for
        the behavioral threshold inverter.
    switch_width_fraction:
        Logistic transition width of the switch inverter as a fraction of
        VDD (only used for style='switch').
    """
    if n_stages < 3 or n_stages % 2 == 0:
        raise ParameterError(
            f"ring oscillator needs an odd stage count >= 3, got {n_stages}")
    circuit = Circuit(f"ring-oscillator x{n_stages} ({style})")
    vdd = calibration.vdd
    has_rail = style == "mosfet"
    if has_rail:
        circuit.voltage_source("VDD", "vdd", GROUND, vdd)

    outputs = [f"s{i}.out" for i in range(n_stages)]
    inputs = [f"s{i}.in" for i in range(n_stages)]
    ladders: List[RlcLadder] = []
    for i in range(n_stages):
        _add_inverter(circuit, f"s{i}.inv", inputs[i], outputs[i],
                      calibration, k, style, switch_width_fraction)
        next_input = inputs[(i + 1) % n_stages]
        ladders.append(add_rlc_ladder(circuit, f"s{i}.line", outputs[i],
                                      next_input, line, h, segments))
    return RingOscillator(circuit=circuit, stage_inputs=inputs,
                          stage_outputs=outputs, ladders=ladders, vdd=vdd,
                          has_rail_node=has_rail)


@dataclass(frozen=True)
class BufferedLine:
    """An open chain of buffered segments driven by a square wave."""

    circuit: Circuit
    source_node: str
    stage_inputs: List[str]
    stage_outputs: List[str]
    ladders: List[RlcLadder]
    vdd: float


def build_buffered_line(calibration: InverterCalibration, line: LineParams,
                        h: float, k: float, *, n_stages: int = 5,
                        segments: int = DEFAULT_SEGMENTS,
                        period: float = 4e-9, style: str = "mosfet",
                        switch_width_fraction: float = 0.02) -> BufferedLine:
    """Square-wave-excited chain of ``n_stages`` buffered segments.

    The far end is terminated by an identical repeater (whose input load
    the last line therefore sees), reproducing the paper's non-ring check
    of the false-switching phenomenon.
    """
    if n_stages < 1:
        raise ParameterError(f"need at least one stage, got {n_stages}")
    circuit = Circuit(f"buffered-line x{n_stages} ({style})")
    vdd = calibration.vdd
    if style == "mosfet":
        circuit.voltage_source("VDD", "vdd", GROUND, vdd)
    edge = period / 400.0
    circuit.voltage_source("VSQ", "drive", GROUND,
                           Pulse(v1=0.0, v2=vdd, delay=period / 20.0,
                                 rise=edge, fall=edge,
                                 width=period / 2.0 - edge, period=period))

    inputs = [f"b{i}.in" for i in range(n_stages + 1)]
    outputs = [f"b{i}.out" for i in range(n_stages)]
    ladders: List[RlcLadder] = []
    # The square wave feeds the first inverter's gate directly.
    circuit.resistor("RDRIVE", "drive", inputs[0], 1.0)
    for i in range(n_stages):
        _add_inverter(circuit, f"b{i}.inv", inputs[i], outputs[i],
                      calibration, k, style, switch_width_fraction)
        ladders.append(add_rlc_ladder(circuit, f"b{i}.line", outputs[i],
                                      inputs[i + 1], line, h, segments))
    # Terminating repeater: identical inverter loading the last line.
    _add_inverter(circuit, "term.inv", inputs[n_stages], "term.out",
                  calibration, k, style, switch_width_fraction)
    circuit.capacitor("term.CL", "term.out", GROUND,
                      calibration.driver.c_p * k)
    return BufferedLine(circuit=circuit, source_node="drive",
                        stage_inputs=inputs, stage_outputs=outputs,
                        ladders=ladders, vdd=vdd)


def _add_inverter(circuit: Circuit, name: str, input_node: str,
                  output_node: str, calibration: InverterCalibration,
                  k: float, style: str, switch_width_fraction: float) -> None:
    if style == "mosfet":
        add_mosfet_inverter(circuit, name, input_node, output_node, "vdd",
                            calibration, k)
    elif style == "switch":
        add_switch_inverter(circuit, name, input_node, output_node,
                            calibration, k,
                            width_fraction=switch_width_fraction)
    else:
        raise ParameterError(f"unknown inverter style {style!r}")
