"""Behavioral switch-level inverter.

A fast alternative to the MOSFET inverter for the ring-oscillator studies:
the output stage is a resistance ``r_out`` to an internal ideal rail whose
value is a smooth (logistic) function of the input voltage,

    v_rail(v_in) = vdd * sigma((v_threshold - v_in) / width).

This captures exactly the mechanism of Sec. 3.3.1 — the output flips when
the (ringing) input crosses the switching threshold — with a crisp,
controllable threshold and no device-model detail, and it is used in the
test-suite and in the ablation benchmark comparing switching-onset
predictions against the calibrated MOSFET inverter.

The input pin draws no current; its loading (c_0 k) is attached externally
as a linear capacitor, like for the MOSFET inverter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..errors import ParameterError
from .elements import NonlinearDevice


@dataclass(frozen=True)
class SwitchInverter(NonlinearDevice):
    """Threshold-switched resistive inverter between two nodes.

    Attributes
    ----------
    input_node, output_node:
        Terminals; the input is purely capacitive (no current drawn here).
    vdd:
        Supply rail voltage (the high output level), volts.
    threshold:
        Input switching threshold, volts (typically vdd/2).
    r_out:
        Output pull resistance to the selected rail, ohms (r_s / k).
    width:
        Transition width of the logistic switch, volts.  Small values give
        a sharper inverter characteristic (higher gain).
    """

    input_node: str = ""
    output_node: str = ""
    vdd: float = 1.2
    threshold: float = 0.6
    r_out: float = 100.0
    width: float = 0.02

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ParameterError(f"inverter {self.name}: vdd must be positive")
        if self.r_out <= 0.0:
            raise ParameterError(f"inverter {self.name}: r_out must be positive")
        if self.width <= 0.0:
            raise ParameterError(f"inverter {self.name}: width must be positive")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.input_node, self.output_node)

    # ------------------------------------------------------------------
    def rail_voltage(self, v_in: float) -> Tuple[float, float]:
        """(v_rail, dv_rail/dv_in) of the logistic rail selector."""
        z = (self.threshold - v_in) / self.width
        # Numerically safe logistic.
        if z >= 0.0:
            ez = math.exp(-z)
            sigma = 1.0 / (1.0 + ez)
        else:
            ez = math.exp(z)
            sigma = ez / (1.0 + ez)
        dsigma = sigma * (1.0 - sigma) / self.width
        return self.vdd * sigma, -self.vdd * dsigma

    def stamp(self, voltages, index_of, matrix, rhs) -> None:
        v_in = voltages(self.input_node)
        v_out = voltages(self.output_node)
        v_rail, dv_rail = self.rail_voltage(v_in)
        g = 1.0 / self.r_out

        # Current leaving the output node into the device: (v_out-v_rail)*g.
        current = (v_out - v_rail) * g
        d_dout = g
        d_din = -dv_rail * g
        i_out = index_of(self.output_node)
        i_in = index_of(self.input_node)
        i_eq = current - (d_dout * v_out + d_din * v_in)
        if i_out >= 0:
            matrix[i_out, i_out] += d_dout
            if i_in >= 0:
                matrix[i_out, i_in] += d_din
            rhs[i_out] -= i_eq
