"""Square-law MOSFET with channel-length modulation and symmetric conduction.

The ring-oscillator experiments (Sec. 3.3) need a device whose switching
threshold and drive strength are calibrated to Table 1's minimum repeater
(r_s, c_0, c_p); the fine structure of a BSIM model is irrelevant to the
undershoot-induced false-switching mechanism.  A square-law model with

    Id = 0                                        for vgs <= vth
    Id = beta [ (vgs-vth) vds - vds^2/2 ] (1 + lambda vds)   (triode)
    Id = beta/2 (vgs-vth)^2 (1 + lambda vds)                 (saturation)

is therefore used, made *symmetric* in drain/source (conduction reverses
when vds < 0 — essential here, because inductive undershoot drives output
nodes below ground and above VDD).  PMOS devices are the sign-mirrored
equivalent.  Device capacitances are not modelled internally; the builders
attach the calibrated c_0 k and c_p k as explicit linear capacitors,
matching the paper's linear-C_P assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import ParameterError
from .elements import NonlinearDevice

#: Default channel-length-modulation coefficient (1/V).
DEFAULT_LAMBDA = 0.05


def _square_law(vgs: float, vds: float, vth: float, beta: float,
                lam: float) -> Tuple[float, float, float]:
    """(Id, dId/dvgs, dId/dvds) for vds >= 0 in the device's own frame."""
    vov = vgs - vth
    if vov <= 0.0:
        return 0.0, 0.0, 0.0
    clm = 1.0 + lam * vds
    if vds >= vov:                        # saturation
        id_core = 0.5 * beta * vov * vov
        current = id_core * clm
        gm = beta * vov * clm
        gds = id_core * lam
    else:                                 # triode
        id_core = beta * (vov * vds - 0.5 * vds * vds)
        current = id_core * clm
        gm = beta * vds * clm
        gds = beta * (vov - vds) * clm + id_core * lam
    return current, gm, gds


def _symmetric_square_law(vgs: float, vds: float, vth: float, beta: float,
                          lam: float) -> Tuple[float, float, float]:
    """Square law extended to vds < 0 by drain/source exchange."""
    if vds >= 0.0:
        return _square_law(vgs, vds, vth, beta, lam)
    current, gm_swapped, gds_swapped = _square_law(vgs - vds, -vds, vth,
                                                   beta, lam)
    # I(d->s) = -I'(vgs - vds, -vds); chain rule for the swapped arguments.
    return -current, -gm_swapped, gm_swapped + gds_swapped


@dataclass(frozen=True)
class Mosfet(NonlinearDevice):
    """Three-terminal MOSFET (drain, gate, source); body effect ignored.

    Attributes
    ----------
    polarity:
        +1 for NMOS, -1 for PMOS.
    vth:
        Threshold voltage magnitude (positive for both polarities), volts.
    beta:
        Transconductance parameter (A/V^2) of *this* device (already
        scaled by the width multiplier).
    lam:
        Channel-length modulation coefficient (1/V).
    """

    drain: str = ""
    gate: str = ""
    source: str = ""
    polarity: int = 1
    vth: float = 0.3
    beta: float = 1e-4
    lam: float = DEFAULT_LAMBDA

    def __post_init__(self) -> None:
        if self.polarity not in (1, -1):
            raise ParameterError(f"mosfet {self.name}: polarity must be +-1")
        if self.vth <= 0.0:
            raise ParameterError(f"mosfet {self.name}: vth must be positive")
        if self.beta <= 0.0:
            raise ParameterError(f"mosfet {self.name}: beta must be positive")
        if self.lam < 0.0:
            raise ParameterError(f"mosfet {self.name}: lambda must be >= 0")

    @property
    def nodes(self) -> Tuple[str, ...]:
        return (self.drain, self.gate, self.source)

    # ------------------------------------------------------------------
    def evaluate(self, vd: float, vg: float, vs: float
                 ) -> Tuple[float, float, float]:
        """(Id, gm, gds): physical drain->source current and its partials.

        ``gm`` = dId/dv_gate and ``gds`` = dId/dv_drain; the source partial
        is -(gm + gds) by construction of the two controlling voltages.
        """
        sign = float(self.polarity)
        vgs_eff = sign * (vg - vs)
        vds_eff = sign * (vd - vs)
        current, gm, gds = _symmetric_square_law(vgs_eff, vds_eff, self.vth,
                                                 self.beta, self.lam)
        # Both sign factors (current mirror and voltage mirror) cancel in
        # the conductances; only the current itself carries the polarity.
        return sign * current, gm, gds

    def stamp(self, voltages, index_of, matrix, rhs) -> None:
        vd = voltages(self.drain)
        vg = voltages(self.gate)
        vs = voltages(self.source)
        current, gm, gds = self.evaluate(vd, vg, vs)

        i_d = index_of(self.drain)
        i_g = index_of(self.gate)
        i_s = index_of(self.source)
        g_source = -(gm + gds)
        # Norton equivalent current of the linearization.
        i_eq = current - (gm * vg + gds * vd + g_source * vs)

        if i_d >= 0:
            if i_g >= 0:
                matrix[i_d, i_g] += gm
            if i_d >= 0:
                matrix[i_d, i_d] += gds
            if i_s >= 0:
                matrix[i_d, i_s] += g_source
            rhs[i_d] -= i_eq
        if i_s >= 0:
            if i_g >= 0:
                matrix[i_s, i_g] -= gm
            if i_d >= 0:
                matrix[i_s, i_d] -= gds
            matrix[i_s, i_s] -= g_source
            rhs[i_s] += i_eq
