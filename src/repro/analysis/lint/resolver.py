"""Per-file AST context: imports, name resolution, suppressions.

Every rule sees the same :class:`ModuleContext` — one parse per file,
one shared import/symbol resolver — so adding a rule never adds a parse
pass.  The resolver is deliberately syntactic: it resolves dotted call
names through the module's import aliases (``from ..faults import hooks
as _faults`` makes ``_faults.fire`` resolve to ``faults.hooks.fire``)
without executing anything, which is what lets the lint plane run on
broken or partially-written trees.
"""

from __future__ import annotations

import ast
import re
import tokenize
from io import StringIO
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from .findings import Suppression

#: Strict suppression grammar (hash, "repro:", the ignore keyword, a
#: bracketed rule list, then "-- <justification>"); spelled out in the
#: parse_suppressions docstring so this comment never matches itself.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*ignore\[([A-Z0-9]{4,8}(?:\s*,\s*[A-Z0-9]{4,8})*)\]"
    r"\s*--\s*(.*)$")

#: Loose form used to detect *malformed* suppression attempts.
_SUPPRESSION_HINT_RE = re.compile(r"#\s*repro:\s*ignore\b")


def parse_suppressions(source: str
                       ) -> Tuple[List[Suppression], List[Tuple[int, str]]]:
    """Extract suppression comments from ``source``.

    Returns ``(suppressions, malformed)`` where ``malformed`` lists
    ``(line, reason)`` pairs for comments that *look like* suppressions
    but fail the strict grammar or carry an empty justification.
    Comments are found with :mod:`tokenize`, so a ``# repro: ignore``
    inside a string literal is never misread as a directive.
    """
    suppressions: List[Suppression] = []
    malformed: List[Tuple[int, str]] = []
    comments: List[Tuple[int, str, bool]] = []  # (line, text, standalone)
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions, malformed
    code_lines = set()
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            line = tok.start[0]
            prefix = source.splitlines()[line - 1][:tok.start[1]]
            comments.append((line, tok.string, not prefix.strip()))
        elif tok.type not in (tokenize.NL, tokenize.NEWLINE,
                              tokenize.INDENT, tokenize.DEDENT,
                              tokenize.ENCODING, tokenize.ENDMARKER,
                              tokenize.COMMENT):
            code_lines.add(tok.start[0])
    for line, text, standalone in comments:
        if not _SUPPRESSION_HINT_RE.search(text):
            continue
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            malformed.append((
                line,
                "malformed suppression; expected "
                "'# repro: ignore[RPRxxx] -- <justification>'"))
            continue
        justification = match.group(2).strip()
        if not justification:
            malformed.append((
                line, "suppression has an empty justification; state why "
                      "the finding is exempt"))
            continue
        rules = tuple(r.strip() for r in match.group(1).split(","))
        target = line
        if standalone:
            later = sorted(l for l in code_lines if l > line)
            target = later[0] if later else line
        suppressions.append(Suppression(
            line=line, target_line=target, rules=rules,
            justification=justification, raw=text))
    return suppressions, malformed


class ModuleContext:
    """One parsed source file plus its resolver state.

    Attributes
    ----------
    path / rel:
        Absolute path and project-root-relative posix path.
    tree:
        The parsed AST; every node carries a ``parent`` backlink.
    imports:
        Alias table: local name -> dotted module path with relative-
        import dots stripped (``from ..faults import hooks as _faults``
        maps ``_faults`` to ``faults.hooks``).
    """

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=str(path))
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.parent = node  # type: ignore[attr-defined]
        self.imports: Dict[str, str] = {}
        self._collect_imports()
        self.suppressions, self.malformed_suppressions = \
            parse_suppressions(source)

    # ------------------------------------------------------------------
    # Location helpers.
    # ------------------------------------------------------------------
    @property
    def repro_parts(self) -> Tuple[str, ...]:
        """Path components below the innermost ``repro`` package dir.

        ``src/repro/serve/service.py`` -> ``("serve", "service.py")``;
        an empty tuple when the file is not inside a ``repro`` package
        (tests, benchmarks).  Rules use this for layer scoping so they
        behave identically on the real tree and on fixture trees.
        """
        parts = Path(self.rel).parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return tuple(parts[i + 1:])
        return ()

    def in_layer(self, *layers: str) -> bool:
        """True when the module lives under ``repro/<layer>/``."""
        parts = self.repro_parts
        return bool(parts) and parts[0] in layers

    @property
    def top_parts(self) -> Tuple[str, ...]:
        return Path(self.rel).parts

    @property
    def basename(self) -> str:
        return Path(self.rel).name

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    # ------------------------------------------------------------------
    # Name resolution.
    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    self.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").lstrip(".")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    dotted = (f"{module}.{alias.name}" if module
                              else alias.name)
                    self.imports[local] = dotted

    def resolve_call(self, call: ast.Call) -> Optional[str]:
        """Dotted name of ``call``'s callee, through import aliases.

        ``open(...)`` -> ``"open"``; ``time.sleep(...)`` ->
        ``"time.sleep"``; ``_faults.fire(...)`` ->
        ``"faults.hooks.fire"`` under the stack's conventional alias.
        Calls on computed expressions (subscripts, call results) resolve
        to the attribute chain that is syntactically visible, rooted at
        ``"?"`` — enough for receiver-name heuristics, never mistaken
        for a module path.
        """
        return self.resolve_name(call.func)

    def resolve_name(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            base = self.imports.get(node.id, node.id)
            parts.append(base)
        else:
            parts.append("?")
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------
    # Structural walks shared by rules.
    # ------------------------------------------------------------------
    def async_functions(self) -> Iterator[ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


def direct_body_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Yield nodes executed *in the frame of* ``func``.

    Descends the body but stops at nested function/lambda definitions:
    code inside a nested ``def``/``lambda`` is deferred work (e.g. a
    thunk handed to ``Backend.run_io_async``), not something the
    enclosing frame executes when it runs.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    """Nearest enclosing def/async def, via the parent backlinks."""
    current = getattr(node, "parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = getattr(current, "parent", None)
    return None
