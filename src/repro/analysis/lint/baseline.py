"""Baseline files: grandfathering pre-existing findings, nothing else.

A baseline maps finding fingerprints (line-number-independent, see
:meth:`~repro.analysis.lint.findings.Finding.fingerprint`) to counts.
``repro-lint run --baseline FILE`` consumes matching findings instead
of reporting them; ``repro-lint baseline --out FILE`` records the
current tree.  The shipped tree carries an *empty* baseline by policy —
deliberate exemptions belong in justified inline suppressions where
reviewers see them, not in a side file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

BASELINE_SCHEMA = 1


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    counts = Counter(f.fingerprint() for f in findings)
    payload = {"schema": BASELINE_SCHEMA,
               "entries": dict(sorted(counts.items()))}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               allow_nan=False) + "\n", encoding="utf-8")


def load_baseline(path: Path) -> Dict[str, int]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    entries = data["entries"]
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: baseline entries must be an object")
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(findings: Sequence[Finding],
                   baseline: Dict[str, int]
                   ) -> Tuple[List[Finding], int]:
    """Drop findings covered by ``baseline``; returns (kept, consumed)."""
    budget = Counter(baseline)
    kept: List[Finding] = []
    consumed = 0
    for finding in findings:
        fp = finding.fingerprint()
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            consumed += 1
        else:
            kept.append(finding)
    return kept, consumed
