"""The lint engine: file walk, rule dispatch, suppressions, reports.

One :class:`LintEngine` run is deterministic and side-effect-free: it
parses every ``.py`` file under the requested paths once, hands the
shared :class:`~repro.analysis.lint.resolver.ModuleContext` objects to
each rule's module hook and the whole project to each project hook,
then reconciles inline suppressions:

* a finding whose line carries ``# repro: ignore[<its rule>] -- why``
  is recorded as suppressed (reported in JSON, not counted against the
  exit code);
* a malformed or justification-less directive is itself an RPR900
  finding;
* a directive naming a rule that did not fire on its target line is an
  RPR901 finding — suppressions must die with the code they excuse.

The result is a :class:`LintReport` with stable ordering (path, line,
rule), ready for text or JSON rendering and for baseline application.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .baseline import apply_baseline
from .findings import Finding, Severity
from .resolver import ModuleContext
from .rules import ALL_RULES, BaseRule


@dataclass
class LintProject:
    """Everything a project-scope rule may inspect."""

    root: Path
    modules: List[ModuleContext] = field(default_factory=list)


@dataclass
class LintReport:
    """Outcome of one engine run."""

    root: str
    paths: List[str]
    findings: List[Finding]
    suppressed: List[Tuple[Finding, str]]
    baseline_consumed: int
    files_scanned: int
    parse_errors: List[Tuple[str, str]]
    duration_s: float

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings
                if f.severity is Severity.ERROR]

    @property
    def clean(self) -> bool:
        return not self.errors and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_payload(self) -> Dict[str, Any]:
        return {
            "tool": "repro-lint",
            "root": self.root,
            "paths": list(self.paths),
            "files_scanned": self.files_scanned,
            "duration_s": round(self.duration_s, 3),
            "findings": [f.to_payload() for f in self.findings],
            "suppressed": [
                {**f.to_payload(), "justification": justification}
                for f, justification in self.suppressed],
            "baseline_consumed": self.baseline_consumed,
            "parse_errors": [{"path": p, "error": e}
                             for p, e in self.parse_errors],
            "summary": {
                "error": sum(1 for f in self.findings
                             if f.severity is Severity.ERROR),
                "warning": sum(1 for f in self.findings
                               if f.severity is Severity.WARNING),
                "suppressed": len(self.suppressed),
            },
            "clean": self.clean,
            "exit_code": self.exit_code,
        }

    def format_text(self) -> str:
        lines = [f.format_text() for f in self.findings]
        for path, error in self.parse_errors:
            lines.append(f"{path}:1:0: ERROR parse {error}")
        counts = self.to_payload()["summary"]
        lines.append(
            f"repro-lint: {self.files_scanned} files, "
            f"{counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['suppressed']} suppressed"
            + (f", {self.baseline_consumed} baselined"
               if self.baseline_consumed else "")
            + f" [{self.duration_s:.2f}s]")
        return "\n".join(lines)


def _iter_python_files(root: Path,
                       paths: Sequence[str]) -> List[Path]:
    seen: Set[Path] = set()
    out: List[Path] = []
    for entry in paths:
        target = (root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            candidates = [target]
        elif target.is_dir():
            candidates = sorted(p for p in target.rglob("*.py")
                                if "__pycache__" not in p.parts)
        else:
            continue
        for path in candidates:
            if path not in seen:
                seen.add(path)
                out.append(path)
    return out


class LintEngine:
    """Run a rule set over a project tree."""

    def __init__(self, root: "Path | str",
                 rules: Optional[Sequence[BaseRule]] = None) -> None:
        self.root = Path(root).resolve()
        self.rules: Tuple[BaseRule, ...] = tuple(
            rules if rules is not None else ALL_RULES)

    # ------------------------------------------------------------------
    def run(self, paths: Sequence[str],
            baseline: Optional[Dict[str, int]] = None) -> LintReport:
        start = time.perf_counter()
        project = LintProject(root=self.root)
        parse_errors: List[Tuple[str, str]] = []
        for path in _iter_python_files(self.root, paths):
            rel = path.relative_to(self.root).as_posix() \
                if self.root in path.parents or path == self.root \
                else path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                project.modules.append(ModuleContext(path, rel, source))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                parse_errors.append((rel, str(exc)))

        raw: List[Finding] = []
        for ctx in project.modules:
            for rule in self.rules:
                raw.extend(rule.check_module(ctx))
        for rule in self.rules:
            raw.extend(rule.check_project(project))

        findings, suppressed = self._apply_suppressions(project, raw)
        findings.sort(key=lambda f: (f.path, f.line, f.rule))

        consumed = 0
        if baseline:
            findings, consumed = apply_baseline(findings, baseline)

        return LintReport(
            root=str(self.root), paths=list(paths), findings=findings,
            suppressed=suppressed, baseline_consumed=consumed,
            files_scanned=len(project.modules),
            parse_errors=parse_errors,
            duration_s=time.perf_counter() - start)

    # ------------------------------------------------------------------
    def _apply_suppressions(
            self, project: LintProject, raw: List[Finding]
    ) -> Tuple[List[Finding], List[Tuple[Finding, str]]]:
        findings: List[Finding] = []
        suppressed: List[Tuple[Finding, str]] = []
        by_module = {ctx.rel: ctx for ctx in project.modules}

        # (path, target_line, rule) -> suppression; built per module.
        live: Dict[Tuple[str, int, str], Any] = {}
        used: Set[Tuple[str, int, str]] = set()
        for ctx in by_module.values():
            for sup in ctx.suppressions:
                for rule_id in sup.rules:
                    live[(ctx.rel, sup.target_line, rule_id)] = sup
            for line, reason in ctx.malformed_suppressions:
                findings.append(Finding(
                    rule="RPR900", severity=Severity.ERROR,
                    path=ctx.rel, line=line, col=0, message=reason,
                    line_text=ctx.line_text(line)))

        for finding in raw:
            key = (finding.path, finding.line, finding.rule)
            sup = live.get(key)
            if sup is not None:
                used.add(key)
                suppressed.append((finding, sup.justification))
            else:
                findings.append(finding)

        for key, sup in sorted(live.items()):
            if key in used:
                continue
            path, _line, rule_id = key
            ctx = by_module[path]
            findings.append(Finding(
                rule="RPR901", severity=Severity.ERROR, path=path,
                line=sup.line, col=0,
                message=f"suppression for {rule_id} is unused (the rule "
                        f"does not fire on line {sup.target_line}); "
                        f"delete the stale directive",
                line_text=ctx.line_text(sup.line)))
        return findings, suppressed
