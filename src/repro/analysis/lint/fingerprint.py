"""AST fingerprints of the cache-salted numerical modules (RPR003).

The engine's content-addressed result store replays records across runs
under one contract: the salt (``repro.__version__`` + engine schema)
changes whenever the numerical code that produced the records changes.
The modules that define "the numerical code" for every cached payload
are the kernel layer, the evaluator layer, and the job ``run``/
``to_payload`` paths.  This module computes a comment- and
formatting-insensitive fingerprint of each and compares it against the
committed artifact ``src/repro/analysis/salt_fingerprint.json``:

* fingerprints changed while ``__version__`` stayed put -> the PR is
  silently invalidating the salt contract (stale cache replays) and the
  lint run fails;
* ``__version__`` (or the engine schema) changed -> the artifact must
  be refreshed in the same PR via
  ``repro-lint baseline --update-fingerprint``, which is the release-
  checklist step that records the new blessed state.

Docstrings are stripped before hashing, so editing prose never demands
a version bump; any executable change does.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

#: Modules whose AST participates in the cache-salt contract, relative
#: to the project root.  Extend this when a new module starts feeding
#: bytes into cached payloads.
SALTED_MODULES = (
    "src/repro/core/kernels.py",
    "src/repro/core/evaluate.py",
    "src/repro/engine/jobs.py",
)

#: The committed artifact (project-root relative).
FINGERPRINT_PATH = "src/repro/analysis/salt_fingerprint.json"

#: Where ``__version__`` and ``ENGINE_SCHEMA_VERSION`` are declared.
VERSION_MODULE = "src/repro/__init__.py"
SCHEMA_MODULE = "src/repro/engine/store.py"


def _strip_docstrings(tree: ast.AST) -> ast.AST:
    """Remove docstring expressions so prose edits do not change hashes."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = node.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                node.body = body[1:] or [ast.Pass()]
    return tree


def source_fingerprint(source: str) -> str:
    """SHA-256 of the docstring-stripped AST dump of ``source``."""
    tree = _strip_docstrings(ast.parse(source))
    return hashlib.sha256(ast.dump(tree).encode("utf-8")).hexdigest()


def _read_module_constant(root: Path, rel: str, name: str) -> Optional[str]:
    """Static read of a module-level ``name = <literal>`` assignment."""
    path = root / rel
    if not path.is_file():
        return None
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name) and target.id == name
                        and isinstance(node.value, ast.Constant)):
                    return str(node.value.value)
    return None


def read_version(root: Path) -> Optional[str]:
    """``repro.__version__`` read statically (no import of the tree)."""
    return _read_module_constant(root, VERSION_MODULE, "__version__")


def read_engine_schema(root: Path) -> Optional[str]:
    return _read_module_constant(root, SCHEMA_MODULE,
                                 "ENGINE_SCHEMA_VERSION")


def current_fingerprints(root: Path) -> Dict[str, str]:
    """Fingerprint every salted module present under ``root``."""
    out: Dict[str, str] = {}
    for rel in SALTED_MODULES:
        path = root / rel
        if path.is_file():
            out[rel] = source_fingerprint(
                path.read_text(encoding="utf-8"))
    return out


def load_artifact(root: Path) -> Optional[Dict[str, object]]:
    path = root / FINGERPRINT_PATH
    if not path.is_file():
        return None
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None
    return data if isinstance(data, dict) else None


def build_artifact(root: Path) -> Dict[str, object]:
    return {
        "version": read_version(root),
        "engine_schema": read_engine_schema(root),
        "modules": current_fingerprints(root),
    }


def write_artifact(root: Path) -> Path:
    """Refresh the committed artifact from the current tree state."""
    path = root / FINGERPRINT_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = build_artifact(root)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True,
                               allow_nan=False) + "\n", encoding="utf-8")
    return path
