"""repro.analysis.lint — the static invariant plane (``repro-lint``).

The third correctness plane of the stack, alongside ``repro-verify``
(numerical oracles) and ``repro-faults`` (dynamic fault injection):
a stdlib-``ast`` rule engine that enforces the contracts the runtime
planes can only check after the fact —

* **RPR001** event-loop purity in ``repro.serve`` (no blocking I/O in
  async bodies outside the ``Backend.run_io_async`` seam),
* **RPR002** fault-site registry consistency (hooks vs FAULT_POINTS),
* **RPR003** cache-salt fingerprint drift (salted numerical modules
  may not change without a ``repro.__version__`` bump),
* **RPR004** strict JSON (``allow_nan=False``) on engine/serve payload
  paths,
* **RPR005** tolerance-ledger discipline in tests/benchmarks,
* **RPR006** lock discipline in store/batcher/metrics modules,
* **RPR007** no silently swallowed broad exceptions,

plus suppression hygiene (RPR900/RPR901): every inline
``# repro: ignore[RPRxxx] -- why`` must carry a justification and must
still be needed, or it fails the run itself.
"""

from .baseline import apply_baseline, load_baseline, save_baseline
from .engine import LintEngine, LintProject, LintReport
from .findings import Finding, Severity, Suppression
from .fingerprint import (FINGERPRINT_PATH, SALTED_MODULES,
                          build_artifact, current_fingerprints,
                          source_fingerprint, write_artifact)
from .resolver import ModuleContext, parse_suppressions
from .rules import ALL_RULES, META_RULES, BaseRule, Rule, rule_by_id

__all__ = [
    "ALL_RULES", "META_RULES", "BaseRule", "Rule", "rule_by_id",
    "Finding", "Severity", "Suppression",
    "LintEngine", "LintProject", "LintReport",
    "ModuleContext", "parse_suppressions",
    "FINGERPRINT_PATH", "SALTED_MODULES", "build_artifact",
    "current_fingerprints", "source_fingerprint", "write_artifact",
    "apply_baseline", "load_baseline", "save_baseline",
]
