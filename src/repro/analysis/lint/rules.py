"""The rule catalog: RPR001-RPR007, each encoding one stack invariant.

A rule is anything satisfying the :class:`Rule` protocol — an id, a
severity, an explanation, and one (or both) of two hooks:

* ``check_module(ctx)`` — per-file findings from one
  :class:`~repro.analysis.lint.resolver.ModuleContext`;
* ``check_project(project)`` — cross-file findings that need the whole
  scanned tree (the fault-site registry walk, the salt fingerprint).

Every shipped rule prevents a *specific* regression class this stack
has already paid for once; the ``explain`` text names it, so
``repro-lint explain RPRxxx`` answers "why does this gate exist" at the
terminal.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Protocol, Tuple

from . import fingerprint as _fp
from .findings import Finding, Severity
from .resolver import ModuleContext, direct_body_walk


class Rule(Protocol):
    """Static shape of a lint rule (structural; no registration magic)."""

    rule_id: str
    title: str
    severity: Severity
    explain: str

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]: ...

    def check_project(self, project: Any) -> Iterator[Finding]: ...


class BaseRule:
    """Shared no-op hooks so rules implement only what they scan."""

    rule_id = "RPR000"
    title = ""
    severity = Severity.ERROR
    explain = ""

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Any) -> Iterator[Finding]:
        return iter(())

    def _finding(self, ctx: ModuleContext, node: ast.AST,
                 message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(rule=self.rule_id, severity=self.severity,
                       path=ctx.rel, line=line,
                       col=getattr(node, "col_offset", 0),
                       message=message, line_text=ctx.line_text(line))


# ----------------------------------------------------------------------
# RPR001 — event-loop purity in repro/serve/.
# ----------------------------------------------------------------------
#: Dotted callee names that block the calling thread.
_BLOCKING_NAMES = frozenset({
    "open", "io.open", "time.sleep", "json.dump", "os.fdopen",
    "subprocess.run", "subprocess.check_output", "os.system",
    "socket.create_connection", "socket.getaddrinfo",
})

#: Blocking socket *methods* flagged on any receiver whose name says
#: it is a socket.
_SOCKET_METHODS = frozenset({"recv", "recv_into", "sendall", "accept",
                             "connect"})

#: Store/cache I/O methods, flagged when the receiver is named like a
#: result store.
_STORE_METHODS = frozenset({"get", "put"})
_STORE_RECEIVERS = frozenset({"cache", "store", "_cache", "_store",
                              "disk"})


class BlockingCallInAsyncRule(BaseRule):
    rule_id = "RPR001"
    title = "blocking call on the event loop"
    explain = (
        "Async bodies in repro/serve/ must never perform blocking I/O "
        "directly: file opens, time.sleep, json.dump to a file handle, "
        "socket operations, or result-store get/put.  Store I/O belongs "
        "on the backend's auxiliary I/O lane (Backend.run_io_async) or "
        "an executor thread — code inside a lambda/def handed to those "
        "seams is exempt because it runs off-loop.  Origin: PR 8 fixed "
        "a cache hit that opened files and decoded JSON on the event-"
        "loop thread, stalling every in-flight request; this rule makes "
        "that regression class unrepresentable at review time.")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_layer("serve"):
            return
        for func in ctx.async_functions():
            for node in direct_body_walk(func):
                if not isinstance(node, ast.Call):
                    continue
                blocked = self._classify(ctx, node)
                if blocked is not None:
                    yield self._finding(
                        ctx, node,
                        f"blocking call {blocked} inside "
                        f"'async def {func.name}'; route it through "
                        f"Backend.run_io_async or an executor seam")

    def _classify(self, ctx: ModuleContext,
                  node: ast.Call) -> Optional[str]:
        name = ctx.resolve_call(node)
        if name is None:
            return None
        if name in _BLOCKING_NAMES:
            return f"{name}()"
        parts = name.split(".")
        if len(parts) >= 2:
            receiver, method = parts[-2], parts[-1]
            if method in _SOCKET_METHODS and "sock" in receiver.lower():
                return f"{receiver}.{method}()"
            if method in _STORE_METHODS and receiver in _STORE_RECEIVERS:
                return f"{receiver}.{method}()"
        return None


# ----------------------------------------------------------------------
# RPR002 — fault-site registry consistency.
# ----------------------------------------------------------------------
#: Helper functions of repro.faults.hooks whose first argument is a
#: registered site name.
_HOOK_FUNCTIONS = frozenset({
    "fire", "should", "sleep", "mutate", "nan_lanes", "pick_lane",
    "delay_duration",
})


def _is_hooks_call(ctx: ModuleContext, node: ast.Call) -> Optional[str]:
    """Site name when ``node`` is a fault-hook call with a literal site."""
    name = ctx.resolve_call(node)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) < 2 or parts[-1] not in _HOOK_FUNCTIONS:
        return None
    if parts[-2] != "hooks" and "faults" not in parts[:-1]:
        return None
    if not node.args:
        return None
    first = node.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


class FaultSiteConsistencyRule(BaseRule):
    rule_id = "RPR002"
    title = "fault-site registry drift"
    explain = (
        "Every repro.faults.hooks call site (fire/should/sleep/mutate/"
        "nan_lanes/pick_lane/delay_duration) must name a site registered "
        "in FAULT_POINTS, and every registered site must be reachable "
        "from at least one call site — an unregistered name is a seam "
        "the campaign can never arm, and a registered-but-orphaned site "
        "is dead coverage the campaign falsely reports as a gate.  "
        "Origin: PR 6 built the 21-site registry exactly so that "
        "coverage accounting is trustworthy; this rule keeps the "
        "registry and the seams from drifting apart silently.")

    def check_project(self, project: Any) -> Iterator[Finding]:
        registry: Dict[str, Tuple[ModuleContext, ast.Call]] = {}
        for ctx in project.modules:
            parts = ctx.repro_parts
            if parts and parts[0] == "faults" and \
                    ctx.basename == "plan.py":
                for node in ast.walk(ctx.tree):
                    if (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Name)
                            and node.func.id == "FaultPoint"
                            and node.args
                            and isinstance(node.args[0], ast.Constant)
                            and isinstance(node.args[0].value, str)):
                        registry[node.args[0].value] = (ctx, node)
        if not registry:
            # No registry in the scanned tree (a partial scan): nothing
            # to reconcile against.
            return
        called: Dict[str, List[Tuple[ModuleContext, ast.Call]]] = {}
        for ctx in project.modules:
            parts = ctx.repro_parts
            if not parts or parts[0] == "faults":
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Call):
                    site = _is_hooks_call(ctx, node)
                    if site is not None:
                        called.setdefault(site, []).append((ctx, node))
        for site, uses in sorted(called.items()):
            if site not in registry:
                for ctx, node in uses:
                    yield self._finding(
                        ctx, node,
                        f"fault hook names unregistered site {site!r}; "
                        f"add a FaultPoint entry to FAULT_POINTS or fix "
                        f"the name")
        for site, (ctx, node) in sorted(registry.items()):
            if site not in called:
                yield self._finding(
                    ctx, node,
                    f"registered fault site {site!r} has no hook call "
                    f"site; delete the registration or wire the seam")


# ----------------------------------------------------------------------
# RPR003 — cache-salt fingerprint drift.
# ----------------------------------------------------------------------
class SaltFingerprintRule(BaseRule):
    rule_id = "RPR003"
    title = "salted module changed without a version bump"
    explain = (
        "The result store replays cached payloads across runs keyed on "
        "repro.__version__ + the engine schema.  The modules that "
        "determine those payloads bytewise (core/kernels.py, "
        "core/evaluate.py, engine/jobs.py) carry a committed AST "
        "fingerprint (src/repro/analysis/salt_fingerprint.json, "
        "docstring-insensitive).  Editing one without bumping "
        "__version__ means stale cache records replay against new "
        "numerics; bumping the version without refreshing the artifact "
        "('repro-lint baseline --update-fingerprint', part of the "
        "release checklist) leaves the gate blind for the next PR.  "
        "Origin: PRs 3/4 each had to remember this bump by hand when "
        "the kernel/evaluator layers landed.")

    def check_project(self, project: Any) -> Iterator[Finding]:
        root = Path(project.root)
        current = _fp.current_fingerprints(root)
        if not current:
            return  # fixture/partial tree without salted modules
        artifact = _fp.load_artifact(root)
        if artifact is None:
            yield Finding(
                rule=self.rule_id, severity=self.severity,
                path=_fp.FINGERPRINT_PATH, line=1, col=0,
                message="salt fingerprint artifact is missing or "
                        "unreadable; run 'repro-lint baseline "
                        "--update-fingerprint'",
                line_text="<artifact>")
            return
        version = _fp.read_version(root)
        schema = _fp.read_engine_schema(root)
        if (artifact.get("version") != version
                or artifact.get("engine_schema") != schema):
            yield Finding(
                rule=self.rule_id, severity=self.severity,
                path=_fp.FINGERPRINT_PATH, line=1, col=0,
                message=f"fingerprint artifact records version "
                        f"{artifact.get('version')!r}/schema "
                        f"{artifact.get('engine_schema')!r} but the tree "
                        f"is {version!r}/{schema!r}; refresh it with "
                        f"'repro-lint baseline --update-fingerprint'",
                line_text="<artifact-version>")
            return
        recorded = artifact.get("modules")
        recorded = recorded if isinstance(recorded, dict) else {}
        for rel, digest in sorted(current.items()):
            if recorded.get(rel) != digest:
                yield Finding(
                    rule=self.rule_id, severity=self.severity,
                    path=rel, line=1, col=0,
                    message=f"salted module {rel} changed but "
                            f"repro.__version__ is still {version!r}; "
                            f"bump the version (salting the result "
                            f"store) and refresh the fingerprint "
                            f"artifact",
                    line_text=f"<fingerprint:{rel}>")
        for rel in sorted(set(recorded) - set(current)):
            yield Finding(
                rule=self.rule_id, severity=self.severity,
                path=_fp.FINGERPRINT_PATH, line=1, col=0,
                message=f"fingerprint artifact lists {rel} which is "
                        f"missing from the tree; refresh the artifact",
                line_text=f"<fingerprint-missing:{rel}>")


# ----------------------------------------------------------------------
# RPR004 — strict JSON in engine/serve payload paths.
# ----------------------------------------------------------------------
class StrictJsonRule(BaseRule):
    rule_id = "RPR004"
    title = "json encode without allow_nan=False"
    explain = (
        "Engine and serve payload paths must encode with "
        "allow_nan=False: Python's json module happily emits NaN/"
        "Infinity tokens, which are not JSON, poison cache records, and "
        "break strict peers.  Origin: PR 6's fault campaign forced "
        "strict encoding onto the serve wire after injected NaN lanes "
        "round-tripped into responses; this rule extends the contract "
        "to every json.dump/json.dumps under repro/engine/ and "
        "repro/serve/.")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.in_layer("engine", "serve"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call(node)
            if name not in ("json.dump", "json.dumps"):
                continue
            strict = any(
                kw.arg == "allow_nan"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords)
            if not strict:
                yield self._finding(
                    ctx, node,
                    f"{name}() in an engine/serve payload path must "
                    f"pass allow_nan=False (strict JSON, no NaN/"
                    f"Infinity tokens)")


# ----------------------------------------------------------------------
# RPR005 — tolerance-ledger discipline in tests/benchmarks.
# ----------------------------------------------------------------------
_TOLERANCE_KEYWORDS = frozenset({"rel", "abs", "rtol", "atol"})


def _numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and \
            isinstance(node.op, (ast.USub, ast.UAdd)):
        return _numeric_literal(node.operand)
    return False


class ToleranceLedgerRule(BaseRule):
    rule_id = "RPR005"
    title = "raw tolerance literal bypasses unit_tolerance()"
    explain = (
        "Test/benchmark modules routed through the tolerance ledger "
        "(they reference repro.verify.unit_tolerance) must route every "
        "rel=/abs=/rtol=/atol= bound through it — a raw float literal "
        "next to ledger lookups is an unaudited bound that silently "
        "escapes review when tolerances tighten.  Modules not yet "
        "adopted are out of scope (they are swept onto the ledger "
        "incrementally), but once a module touches the ledger it may "
        "not backslide.  Origin: PR 2's manual literal sweep, which "
        "this rule makes self-maintaining.")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        top = ctx.top_parts
        if not top or top[0] not in ("tests", "benchmarks"):
            return
        if "unit_tolerance" not in ctx.imports and \
                "unit_tolerance" not in ctx.source:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg in _TOLERANCE_KEYWORDS \
                        and _numeric_literal(kw.value):
                    yield self._finding(
                        ctx, kw.value,
                        f"raw tolerance literal {kw.arg}="
                        f"{ast.unparse(kw.value)} in a ledger-routed "
                        f"module; add a named entry to UNIT_TOLERANCES "
                        f"and call unit_tolerance()")


# ----------------------------------------------------------------------
# RPR006 — lock discipline in store/batcher/metrics.
# ----------------------------------------------------------------------
_LOCK_FILES = frozenset({"store.py", "batcher.py", "metrics.py"})


def _lock_with_items(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
            return True
        if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
            return True
    return False


def _self_attr_target(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


class LockDisciplineRule(BaseRule):
    rule_id = "RPR006"
    title = "lock-guarded attribute accessed outside the lock"
    explain = (
        "In store.py/batcher.py/metrics.py, an instance attribute that "
        "is ever assigned under 'with self._lock' is part of that "
        "lock's protected state: reading or writing it from a method "
        "that holds no lock is a data race (torn counters, budget "
        "invariant violations under concurrent puts).  __init__ is "
        "exempt (no concurrent access before construction completes) "
        "and so are methods named *_locked — the stack's convention "
        "for helpers documented as called-with-lock-held.  Origin: "
        "PR 5's concurrent-writer stress tests exist because exactly "
        "this class of race promoted torn records.")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.basename not in _LOCK_FILES:
            return
        for cls in ctx.classes():
            yield from self._check_class(ctx, cls)

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]
        guarded: set = set()
        for method in methods:
            for node in ast.walk(method):
                if isinstance(node, ast.With) and _lock_with_items(node):
                    for inner in ast.walk(node):
                        guarded.update(self._assigned_attrs(inner))
        if not guarded:
            return
        for method in methods:
            if method.name in ("__init__", "__new__") or \
                    method.name.endswith("_locked"):
                continue
            locked_nodes = self._nodes_under_locks(method)
            for node in ast.walk(method):
                attr = None
                if isinstance(node, ast.Attribute):
                    attr = _self_attr_target(node)
                if attr is None or attr not in guarded:
                    continue
                if id(node) in locked_nodes:
                    continue
                access = ("written" if isinstance(node.ctx,
                                                  (ast.Store, ast.Del))
                          else "read")
                yield self._finding(
                    ctx, node,
                    f"self.{attr} is assigned under a lock elsewhere in "
                    f"{cls.name} but {access} here without one; hold "
                    f"the lock or move the access into a *_locked "
                    f"helper")

    @staticmethod
    def _assigned_attrs(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = _self_attr_target(target)
                if attr is not None:
                    yield attr
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            attr = _self_attr_target(node.target)
            if attr is not None:
                yield attr

    @staticmethod
    def _nodes_under_locks(method: ast.AST) -> set:
        covered: set = set()
        for node in ast.walk(method):
            if isinstance(node, ast.With) and _lock_with_items(node):
                for inner in ast.walk(node):
                    covered.add(id(inner))
        return covered


# ----------------------------------------------------------------------
# RPR007 — swallowed broad exceptions.
# ----------------------------------------------------------------------
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(node: Optional[ast.AST]) -> bool:
    if node is None:
        return True  # bare except:
    if isinstance(node, ast.Name):
        return node.id in _BROAD_NAMES
    if isinstance(node, ast.Tuple):
        return any(_is_broad(el) for el in node.elts)
    return False


def _body_only_passes(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and \
                isinstance(stmt.value, ast.Constant):
            continue  # docstring / ellipsis
        return False
    return True


class SwallowedExceptionRule(BaseRule):
    rule_id = "RPR007"
    title = "broad exception silently swallowed"
    explain = (
        "A bare 'except:' or 'except Exception:' whose body is only "
        "'pass' erases the failure entirely — in the executor, harness "
        "and server accept loops this turned real faults (a dying "
        "drain task, a crashed leader) into silent hangs before the "
        "fault plane made them visible.  Narrow the exception type to "
        "what the seam actually expects, or record/route the failure.  "
        "Deliberate best-effort paths (interpreter teardown, best-"
        "effort close) carry a justified inline suppression instead.  "
        "Origin: PR 6, where a raising metrics hook silently killed "
        "the batcher drain task and orphaned every popped lane.")

    def check_module(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _is_broad(node.type) and _body_only_passes(node.body):
                caught = ("bare except" if node.type is None
                          else f"except {ast.unparse(node.type)}")
                yield self._finding(
                    ctx, node,
                    f"{caught} with a pass-only body swallows every "
                    f"failure; narrow the type or handle/record the "
                    f"exception")


#: The shipped rule set, in catalog order.
ALL_RULES: Tuple[BaseRule, ...] = (
    BlockingCallInAsyncRule(),
    FaultSiteConsistencyRule(),
    SaltFingerprintRule(),
    StrictJsonRule(),
    ToleranceLedgerRule(),
    LockDisciplineRule(),
    SwallowedExceptionRule(),
)

#: Meta-findings the engine itself emits (suppression hygiene).
META_RULES: Dict[str, str] = {
    "RPR900": "malformed suppression comment (bad syntax or empty "
              "justification); the directive must read "
              "'# repro: ignore[RPRxxx] -- <justification>'",
    "RPR901": "unused suppression: the named rule does not fire on the "
              "suppressed line anymore; delete the stale directive",
}


def rule_by_id(rule_id: str) -> Optional[BaseRule]:
    for rule in ALL_RULES:
        if rule.rule_id == rule_id:
            return rule
    return None
