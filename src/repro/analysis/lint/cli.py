"""``repro-lint`` — the static invariant gate of the stack.

Subcommands
-----------
``run``
    Lint the tree (default paths: ``src tests benchmarks``).  Exit 0
    when clean, 1 on findings (or parse failures), 2 on usage errors.
    ``--format json`` emits the full machine-readable report (the CI
    artifact); ``--baseline FILE`` grandfathers recorded findings.
``baseline``
    Record the current findings into a baseline file, and/or refresh
    the cache-salt fingerprint artifact (``--update-fingerprint``) —
    the release-checklist step that re-blesses the salted modules after
    a ``repro.__version__`` bump.
``explain``
    Print a rule's full invariant text (what it enforces and which
    regression it descends from).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import fingerprint as _fp
from .baseline import load_baseline, save_baseline
from .engine import LintEngine
from .rules import ALL_RULES, META_RULES, rule_by_id

DEFAULT_PATHS = ("src", "tests", "benchmarks")

#: Exit codes: clean / findings / usage-or-internal error.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant lint for the repro stack")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="lint the tree and report findings")
    run.add_argument("paths", nargs="*", default=None,
                     help="files or directories relative to --root "
                          "(default: src tests benchmarks)")
    run.add_argument("--root", default=".",
                     help="project root (default: current directory)")
    run.add_argument("--format", choices=("text", "json"),
                     default="text", help="report format")
    run.add_argument("--out", default=None, metavar="FILE",
                     help="also write the JSON report to FILE")
    run.add_argument("--baseline", default=None, metavar="FILE",
                     help="grandfather findings recorded in FILE")

    base = sub.add_parser(
        "baseline",
        help="record current findings and/or refresh the salt "
             "fingerprint artifact")
    base.add_argument("paths", nargs="*", default=None)
    base.add_argument("--root", default=".")
    base.add_argument("--out", default=None, metavar="FILE",
                      help="write a baseline of current findings to "
                           "FILE")
    base.add_argument("--update-fingerprint", action="store_true",
                      help="rewrite src/repro/analysis/"
                           "salt_fingerprint.json from the current "
                           "tree + version (release checklist)")

    explain = sub.add_parser(
        "explain", help="print what a rule enforces and why")
    explain.add_argument("rule", help="rule id, e.g. RPR003")
    return parser


def _resolve_paths(args: argparse.Namespace) -> List[str]:
    if args.paths:
        return list(args.paths)
    root = Path(args.root)
    return [p for p in DEFAULT_PATHS if (root / p).exists()]


def _cmd_run(args: argparse.Namespace) -> int:
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"repro-lint: cannot read baseline: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
    engine = LintEngine(args.root)
    report = engine.run(_resolve_paths(args), baseline=baseline)
    payload = report.to_payload()
    if args.out is not None:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True,
                       allow_nan=False) + "\n", encoding="utf-8")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True,
                         allow_nan=False))
    else:
        print(report.format_text())
    return report.exit_code


def _cmd_baseline(args: argparse.Namespace) -> int:
    if args.out is None and not args.update_fingerprint:
        print("repro-lint baseline: nothing to do; pass --out FILE "
              "and/or --update-fingerprint", file=sys.stderr)
        return EXIT_USAGE
    if args.update_fingerprint:
        path = _fp.write_artifact(Path(args.root).resolve())
        artifact = _fp.load_artifact(Path(args.root).resolve()) or {}
        print(f"fingerprint artifact refreshed: {path} "
              f"(version {artifact.get('version')!r}, "
              f"{len(artifact.get('modules', {}))} modules)")
    if args.out is not None:
        engine = LintEngine(args.root)
        report = engine.run(_resolve_paths(args))
        save_baseline(Path(args.out), report.findings)
        print(f"baseline written: {args.out} "
              f"({len(report.findings)} findings recorded)")
    return EXIT_CLEAN


def _cmd_explain(args: argparse.Namespace) -> int:
    rule = rule_by_id(args.rule)
    if rule is not None:
        print(f"{rule.rule_id} [{rule.severity}] {rule.title}\n")
        print(rule.explain)
        return EXIT_CLEAN
    if args.rule in META_RULES:
        print(f"{args.rule} [error] suppression hygiene\n")
        print(META_RULES[args.rule])
        return EXIT_CLEAN
    known = ", ".join([r.rule_id for r in ALL_RULES]
                      + sorted(META_RULES))
    print(f"repro-lint: unknown rule {args.rule!r}; known: {known}",
          file=sys.stderr)
    return EXIT_USAGE


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "baseline":
        return _cmd_baseline(args)
    return _cmd_explain(args)


if __name__ == "__main__":
    sys.exit(main())
