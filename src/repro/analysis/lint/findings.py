"""Structured findings: what a rule reports and how it is rendered.

A :class:`Finding` is one violation anchored to a file position.  The
engine owns severity aggregation and suppression bookkeeping; rules only
construct findings.  Everything is JSON-serializable so the CI artifact
(``repro-lint run --format json``) carries the full record.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class Severity(enum.Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run (exit code 1); ``WARNING`` findings
    are reported but do not gate.  Every shipped rule is ``ERROR`` —
    the invariants they encode are hard contracts, not style.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source position.

    ``path`` is project-root-relative (posix separators) so reports are
    machine-portable; ``line``/``col`` are 1-based/0-based as in the
    :mod:`ast` convention.  ``line_text`` (the stripped source line)
    feeds the baseline fingerprint, which must survive unrelated line
    drift above the finding.
    """

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""

    def fingerprint(self) -> str:
        """Line-number-independent identity used by baseline files."""
        text = f"{self.rule}:{self.path}:{self.line_text}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]

    def to_payload(self) -> Dict[str, Any]:
        return {"rule": self.rule, "severity": str(self.severity),
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message,
                "fingerprint": self.fingerprint()}

    def format_text(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{str(self.severity).upper()} {self.rule} {self.message}")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: ignore[RPRxxx] -- justification`` comment.

    ``line`` is where the comment sits; ``target_line`` is the code line
    it governs (the same line for a trailing comment, the next code line
    for a standalone one).  A suppression with an empty justification or
    naming a rule that does not fire at its target is itself a finding
    (RPR900 / RPR901) — stale suppressions must not silently accumulate.
    """

    line: int
    target_line: int
    rules: Tuple[str, ...]
    justification: str
    raw: str = field(default="", compare=False)
