"""Repeater-insertion power model and power-constrained optimization.

The paper notes that inductive glitches raise dynamic power and that
repeater insertion itself carries a power/area cost; this module makes
that cost explicit.  Per unit length of a repeated line, the switched
capacitance is

    C' = c  +  (c_0 + c_p) k / h          [F/m]

so the dynamic power per unit length at supply vdd, clock frequency
f_clk and activity factor alpha is  P' = alpha f_clk vdd^2 C'.  The
delay-optimal (h, k) is power-hungry (large k, moderate h);
:func:`optimize_with_power_cap` finds the minimum-delay sizing subject to
a P' budget, exposing the standard energy-delay trade-off on top of the
paper's delay-only optimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from ..core.evaluate import StageEvaluator
from ..core.optimize import RepeaterOptimum, optimize_repeater
from ..core.params import DriverParams, LineParams
from ..errors import OptimizationError, ParameterError


@dataclass(frozen=True)
class PowerReport:
    """Power accounting of one repeated-line design (per unit length)."""

    switched_capacitance_per_length: float   #: F/m
    dynamic_power_per_length: float          #: W/m
    repeater_fraction: float                 #: share of C' from repeaters
    vdd: float
    frequency: float
    activity: float


def switched_capacitance_per_length(line: LineParams, driver: DriverParams,
                                    h: float, k: float) -> float:
    """c + (c_0 + c_p) k / h in F/m."""
    if h <= 0.0 or k <= 0.0:
        raise ParameterError("h and k must be positive")
    return line.c + (driver.c_0 + driver.c_p) * k / h


def power_report(line: LineParams, driver: DriverParams, h: float, k: float,
                 *, vdd: float, frequency: float,
                 activity: float = 0.15) -> PowerReport:
    """Dynamic-power accounting for a (h, k) repeated-line design."""
    if vdd <= 0.0 or frequency <= 0.0:
        raise ParameterError("vdd and frequency must be positive")
    if not 0.0 < activity <= 1.0:
        raise ParameterError(f"activity must be in (0, 1], got {activity}")
    c_prime = switched_capacitance_per_length(line, driver, h, k)
    repeater_part = (driver.c_0 + driver.c_p) * k / h
    return PowerReport(
        switched_capacitance_per_length=c_prime,
        dynamic_power_per_length=activity * frequency * vdd * vdd * c_prime,
        repeater_fraction=repeater_part / c_prime,
        vdd=vdd, frequency=frequency, activity=activity)


@dataclass(frozen=True)
class PowerConstrainedOptimum:
    """Result of the power-capped delay minimization."""

    h_opt: float
    k_opt: float
    tau: float
    delay_per_length: float
    power_per_length: float
    power_budget: float
    constraint_active: bool
    unconstrained: RepeaterOptimum

    @property
    def delay_penalty(self) -> float:
        """Delay-per-length ratio vs the unconstrained optimum (>= 1)."""
        return self.delay_per_length / self.unconstrained.delay_per_length


def optimize_with_power_cap(line: LineParams, driver: DriverParams, *,
                            vdd: float, frequency: float,
                            power_budget_per_length: float,
                            f: float = 0.5, activity: float = 0.15,
                            tol: float = 1e-6) -> PowerConstrainedOptimum:
    """Minimize delay per unit length subject to a dynamic-power budget.

    If the unconstrained optimum already meets the budget it is returned
    unchanged.  Otherwise the constraint is active and the search runs
    along the constraint boundary: the budget fixes the repeater density
    rho = k/h = (C'_max - c) (c_0 + c_p)^-1, leaving a 1-D minimization
    of tau(h, rho h)/h over h (solved by golden-section).

    Raises
    ------
    OptimizationError
        If the budget is below the wire's own switching power (no
        repeater sizing can meet it).
    """
    if power_budget_per_length <= 0.0:
        raise ParameterError("power budget must be positive")
    scale = activity * frequency * vdd * vdd
    c_budget = power_budget_per_length / scale     # allowed C' (F/m)
    if c_budget <= line.c:
        raise OptimizationError(
            f"power budget {power_budget_per_length:.3e} W/m is below the "
            f"bare wire's switching power {scale * line.c:.3e} W/m")

    unconstrained = optimize_repeater(line, driver, f)
    unconstrained_power = scale * switched_capacitance_per_length(
        line, driver, unconstrained.h_opt, unconstrained.k_opt)
    if unconstrained_power <= power_budget_per_length:
        return PowerConstrainedOptimum(
            h_opt=unconstrained.h_opt, k_opt=unconstrained.k_opt,
            tau=unconstrained.tau,
            delay_per_length=unconstrained.delay_per_length,
            power_per_length=unconstrained_power,
            power_budget=power_budget_per_length,
            constraint_active=False, unconstrained=unconstrained)

    density = (c_budget - line.c) / (driver.c_0 + driver.c_p)   # k/h (1/m)

    # All boundary-search delay solves share one kernel-backed evaluator;
    # golden-section re-probes of a bracket endpoint become memo hits.
    evaluator = StageEvaluator(line, driver, f)

    def objective(h: float) -> float:
        return evaluator.delay(h, density * h) / h

    h_best = _golden_section(objective,
                             0.05 * unconstrained.h_opt,
                             20.0 * unconstrained.h_opt, tol)
    k_best = density * h_best
    tau = evaluator.delay(h_best, k_best)
    return PowerConstrainedOptimum(
        h_opt=h_best, k_opt=k_best, tau=tau, delay_per_length=tau / h_best,
        power_per_length=scale * switched_capacitance_per_length(
            line, driver, h_best, k_best),
        power_budget=power_budget_per_length,
        constraint_active=True, unconstrained=unconstrained)


def _golden_section(objective, lo: float, hi: float, tol: float) -> float:
    """Golden-section minimization of a unimodal positive function."""
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(200):
        if (b - a) <= tol * b:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    return 0.5 * (a + b)
