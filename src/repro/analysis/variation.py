"""Statistical delay-variation analysis (Monte Carlo + linearization).

Sec. 3.2 of the paper treats inductance as the uncertain parameter; in a
real process every stage parameter varies.  This module propagates joint
parameter variations to the stage delay two ways:

* **Monte Carlo** — re-solve the exact two-pole delay for each sample
  (ground truth, but many delay solves);
* **Linear (sensitivity) propagation** — first-order estimate from the
  analytic elasticities of :mod:`repro.core.sensitivity`:
  sigma_tau^2 ~= sum_p (dtau/dp sigma_p)^2 for independent parameters.

Comparing the two quantifies how far the linearization holds — the tests
show a few percent agreement for 3-sigma parameter spreads of 10-20%,
which is what makes sensitivity-based corner sign-off meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..core.delay import threshold_delay
from ..core.params import DriverParams, LineParams, Stage
from ..core.sensitivity import PARAMETERS, delay_sensitivities
from ..errors import ParameterError


@dataclass(frozen=True)
class VariationResult:
    """Delay statistics under joint parameter variation."""

    nominal_tau: float
    mean_tau: float
    std_tau: float
    linear_std_tau: float       #: first-order prediction of std_tau
    samples: np.ndarray         #: the Monte Carlo delay samples (s)

    @property
    def three_sigma_fraction(self) -> float:
        """3 sigma_tau / nominal — the classic corner guardband."""
        return 3.0 * self.std_tau / self.nominal_tau

    @property
    def linearization_error(self) -> float:
        """|linear_std - mc_std| / mc_std."""
        if self.std_tau == 0.0:
            return 0.0
        return abs(self.linear_std_tau - self.std_tau) / self.std_tau


def _stage_with(stage: Stage, values: Mapping[str, float]) -> Stage:
    line = LineParams(r=values["r"], l=values["l"], c=values["c"])
    driver = DriverParams(r_s=values["r_s"], c_p=values["c_p"],
                          c_0=values["c_0"])
    return Stage(line=line, driver=driver, h=values["h"], k=values["k"])


def stage_parameter_values(stage: Stage) -> Dict[str, float]:
    """The eight named parameter values of a stage."""
    return {"r": stage.line.r, "l": stage.line.l, "c": stage.line.c,
            "r_s": stage.driver.r_s, "c_p": stage.driver.c_p,
            "c_0": stage.driver.c_0, "h": stage.h, "k": stage.k}


def delay_variation(stage: Stage, sigma_fractions: Mapping[str, float], *,
                    f: float = 0.5, samples: int = 500,
                    seed: int = 12345,
                    rng: Optional[np.random.Generator] = None
                    ) -> VariationResult:
    """Propagate independent Gaussian parameter variations to the delay.

    Parameters
    ----------
    sigma_fractions:
        Map parameter name -> relative 1-sigma spread (e.g. {"l": 0.3,
        "c": 0.1}).  Unlisted parameters are held at nominal.
    samples:
        Monte Carlo sample count.
    seed / rng:
        Reproducibility controls (rng wins if provided).

    Raises
    ------
    ParameterError
        For unknown parameter names or non-positive sample counts.
    """
    unknown = set(sigma_fractions) - set(PARAMETERS)
    if unknown:
        raise ParameterError(f"unknown parameters: {sorted(unknown)}")
    if samples < 2:
        raise ParameterError(f"need at least 2 samples, got {samples}")
    for name, fraction in sigma_fractions.items():
        if fraction < 0.0:
            raise ParameterError(
                f"sigma fraction for {name!r} must be >= 0, got {fraction}")

    generator = rng or np.random.default_rng(seed)
    nominal_values = stage_parameter_values(stage)
    nominal_tau = threshold_delay(stage, f, polish_with_newton=False).tau

    # Linear prediction from analytic sensitivities.
    sens = delay_sensitivities(stage, f)
    linear_variance = 0.0
    for name, fraction in sigma_fractions.items():
        sigma_p = fraction * nominal_values[name]
        linear_variance += (sens.absolute[name] * sigma_p) ** 2
    linear_std = float(np.sqrt(linear_variance))

    # Monte Carlo (truncate draws at +-4 sigma and clip to positive).
    taus = np.empty(samples)
    for i in range(samples):
        values = dict(nominal_values)
        for name, fraction in sigma_fractions.items():
            if fraction == 0.0:
                continue
            draw = generator.standard_normal()
            draw = float(np.clip(draw, -4.0, 4.0))
            scale = 1.0 + fraction * draw
            if name == "l":
                # Inductance may legally reach zero; others must stay > 0.
                values[name] = max(0.0, nominal_values[name] * scale)
            else:
                values[name] = max(1e-3, scale) * nominal_values[name]
        sample_stage = _stage_with(stage, values)
        taus[i] = threshold_delay(sample_stage, f,
                                  polish_with_newton=False).tau

    return VariationResult(nominal_tau=nominal_tau,
                           mean_tau=float(taus.mean()),
                           std_tau=float(taus.std(ddof=1)),
                           linear_std_tau=linear_std,
                           samples=taus)
