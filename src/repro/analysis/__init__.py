"""Measurement and validation utilities.

* :mod:`~repro.analysis.waveform` — crossings, delays, ringing, periods.
* :mod:`~repro.analysis.laplace` — Talbot numerical inverse Laplace
  transform, used to validate the Padé model against the exact H(s).
* :mod:`~repro.analysis.currents` — interconnect current extraction and
  peak/rms current densities (Fig. 12).
* :mod:`~repro.analysis.reliability` — gate-oxide overstress and
  electromigration/Joule-heating screens (Sec. 3.3.2).
* :mod:`~repro.analysis.lint` — the static invariant plane
  (``repro-lint``): stdlib-``ast`` rules enforcing the stack's
  correctness contracts in CI.  Deliberately not re-exported here;
  it is a tool plane, not part of the numerical API.
"""

from .crosstalk import CrosstalkReport, measure_crosstalk
from .glitch import (GlitchReport, compare_activity, switching_rate,
                     transition_count)
from .currents import CurrentDensityReport, current_density_report
from .laplace import step_response_exact, talbot_inverse
from .power import (PowerConstrainedOptimum, PowerReport,
                    optimize_with_power_cap, power_report,
                    switched_capacitance_per_length)
from .reliability import (EM_PEAK_LIMIT, EM_RMS_LIMIT, OxideStressReport,
                          ReliabilityVerdict, assess_current_density,
                          assess_oxide_stress)
from .variation import VariationResult, delay_variation
from .waveform import Waveform

__all__ = [
    "CrosstalkReport", "measure_crosstalk",
    "GlitchReport", "compare_activity", "switching_rate",
    "transition_count",
    "CurrentDensityReport", "current_density_report",
    "step_response_exact", "talbot_inverse",
    "PowerConstrainedOptimum", "PowerReport", "optimize_with_power_cap",
    "power_report", "switched_capacitance_per_length",
    "EM_PEAK_LIMIT", "EM_RMS_LIMIT", "OxideStressReport",
    "ReliabilityVerdict", "assess_current_density", "assess_oxide_stress",
    "VariationResult", "delay_variation",
    "Waveform",
]
