"""Crosstalk noise measurement on a coupled-line bench.

Quantifies the coupled noise at a quiet victim's far end when its
neighbour switches: peak positive/negative excursions, the time of the
peak, and a logic-safety verdict against a receiver threshold.  Used by
the extension experiment that measures how much an RC-only model
underestimates coupled noise on inductive global wires — the motivation
the paper cites from Deutsch et al. [ref. 6].
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.coupled_line import CrosstalkBench
from ..circuits.transient import TransientOptions, simulate
from ..errors import ParameterError
from .waveform import Waveform


@dataclass(frozen=True)
class CrosstalkReport:
    """Noise seen at the victim's far end for one aggressor transition."""

    peak_noise: float          #: max positive excursion (V)
    trough_noise: float        #: max negative excursion magnitude (V)
    peak_time: float           #: time of the positive peak (s)
    victim: Waveform
    aggressor: Waveform

    @property
    def worst_noise(self) -> float:
        """Largest |excursion| in either direction (V)."""
        return max(self.peak_noise, self.trough_noise)

    def threatens_logic(self, threshold: float) -> bool:
        """True when the worst excursion reaches a receiver threshold."""
        if threshold <= 0.0:
            raise ParameterError(f"threshold must be positive, got {threshold}")
        return self.worst_noise >= threshold


def measure_crosstalk(bench: CrosstalkBench, *, t_end: float, dt: float,
                      options: TransientOptions | None = None
                      ) -> CrosstalkReport:
    """Simulate the bench and reduce the victim waveform to a report."""
    result = simulate(bench.circuit, t_end, dt, options=options)
    victim = Waveform(result.time, result.voltage(bench.victim_far_node))
    aggressor = Waveform(result.time,
                         result.voltage(bench.aggressor_far_node))
    values = victim.values
    peak = max(0.0, float(values.max()))
    trough = max(0.0, float(-values.min()))
    peak_index = int(values.argmax())
    return CrosstalkReport(peak_noise=peak, trough_noise=trough,
                           peak_time=float(victim.time[peak_index]),
                           victim=victim, aggressor=aggressor)
