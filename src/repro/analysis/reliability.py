"""Reliability screens: gate-oxide overstress and wire current limits.

Sec. 3.3.2 of the paper raises two reliability channels for inductive
lines:

* **Gate oxide wear-out** — overshoot drives repeater inputs above VDD;
  since DSM supplies are chosen to keep the oxide field just below its
  critical value (Hu [26, 27]), sustained overshoot beyond a small margin
  accelerates oxide breakdown.
* **Electromigration / Joule heating** — after Banerjee et al. [28], wire
  lifetime degrades when rms (self-heating) and peak (EM) current
  densities exceed technology limits.  Fig. 12 shows the densities barely
  move with inductance, so wires remain safe; the screen here lets users
  verify that conclusion quantitatively.

The default density limits are representative late-1990s Cu-interconnect
values from that literature (the paper itself quotes none); both are
parameters of :func:`assess_current_density`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .currents import CurrentDensityReport
from .waveform import Waveform

#: Representative rms current-density limit (A/m^2) for Joule heating,
#: ~2 MA/cm^2 (after Banerjee et al., DAC 1999).
EM_RMS_LIMIT = 2.0e10

#: Representative peak current-density limit (A/m^2) for electromigration
#: under pulsed stress, ~10 MA/cm^2.
EM_PEAK_LIMIT = 1.0e11

#: Fractional overshoot above VDD tolerated before flagging oxide stress.
DEFAULT_OXIDE_MARGIN = 0.10


@dataclass(frozen=True)
class ReliabilityVerdict:
    """Outcome of the wire current-density screen."""

    ok: bool
    rms_utilization: float     #: rms density / limit
    peak_utilization: float    #: peak density / limit

    @property
    def limiting_mechanism(self) -> str:
        """'joule-heating' or 'electromigration', whichever is closer."""
        return ("joule-heating" if self.rms_utilization >=
                self.peak_utilization else "electromigration")


def assess_current_density(report: CurrentDensityReport, *,
                           rms_limit: float = EM_RMS_LIMIT,
                           peak_limit: float = EM_PEAK_LIMIT
                           ) -> ReliabilityVerdict:
    """Compare measured current densities against technology limits."""
    if rms_limit <= 0.0 or peak_limit <= 0.0:
        raise ParameterError("density limits must be positive")
    rms_utilization = report.rms_density / rms_limit
    peak_utilization = report.peak_density / peak_limit
    return ReliabilityVerdict(ok=(rms_utilization <= 1.0
                                  and peak_utilization <= 1.0),
                              rms_utilization=rms_utilization,
                              peak_utilization=peak_utilization)


@dataclass(frozen=True)
class OxideStressReport:
    """Gate-voltage stress seen at a repeater input."""

    max_voltage: float         #: maximum gate voltage observed (V)
    min_voltage: float         #: minimum gate voltage observed (V)
    vdd: float
    overshoot_fraction: float  #: (max - vdd)/vdd, >= 0
    undershoot_fraction: float #: (0 - min)/vdd, >= 0
    violates: bool             #: overshoot beyond the allowed margin


def assess_oxide_stress(gate_waveform: Waveform, vdd: float, *,
                        margin: float = DEFAULT_OXIDE_MARGIN
                        ) -> OxideStressReport:
    """Screen a gate waveform for oxide-overstress overshoot.

    Parameters
    ----------
    vdd:
        Supply voltage; the oxide field budget corresponds to vdd across
        the gate oxide.
    margin:
        Tolerated fractional excursion above vdd (and below ground —
        negative gate-to-channel bias stresses the oxide symmetrically).
    """
    if vdd <= 0.0:
        raise ParameterError(f"vdd must be positive, got {vdd}")
    if margin < 0.0:
        raise ParameterError(f"margin must be >= 0, got {margin}")
    v_max = float(gate_waveform.values.max())
    v_min = float(gate_waveform.values.min())
    overshoot_fraction = max(0.0, (v_max - vdd) / vdd)
    undershoot_fraction = max(0.0, -v_min / vdd)
    violates = (overshoot_fraction > margin
                or undershoot_fraction > margin)
    return OxideStressReport(max_voltage=v_max, min_voltage=v_min, vdd=vdd,
                             overshoot_fraction=overshoot_fraction,
                             undershoot_fraction=undershoot_fraction,
                             violates=violates)
