"""Interconnect current extraction and current densities (Fig. 12).

Given a transient result and the ladder handle of the line of interest,
pull out the current waveform flowing through a chosen segment (the branch
current of its inductor, or the Ohmic current of its resistor for RC
ladders), and reduce it to the peak and rms current *densities* over the
wire cross section — the quantities whose inductance-dependence Fig. 12
shows to be negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuits.rlc_line import RlcLadder
from ..circuits.transient import TransientResult
from ..errors import ParameterError
from .waveform import Waveform


@dataclass(frozen=True)
class CurrentDensityReport:
    """Peak/rms current and density of one line over a measurement window.

    Densities are in A/m^2 (divide by 1e4 for A/cm^2; see the property
    helpers).
    """

    peak_current: float        #: max |i(t)| over the window (A)
    rms_current: float         #: rms of i(t) over the window (A)
    cross_section: float       #: wire cross-sectional area (m^2)
    window_start: float        #: start of the measurement window (s)
    window_end: float          #: end of the measurement window (s)

    @property
    def peak_density(self) -> float:
        """Peak current density (A/m^2)."""
        return self.peak_current / self.cross_section

    @property
    def rms_density(self) -> float:
        """RMS current density (A/m^2)."""
        return self.rms_current / self.cross_section

    @property
    def peak_density_a_per_cm2(self) -> float:
        """Peak current density in A/cm^2 (the paper's unit)."""
        return self.peak_density * 1e-4

    @property
    def rms_density_a_per_cm2(self) -> float:
        """RMS current density in A/cm^2 (the paper's unit)."""
        return self.rms_density * 1e-4


def line_current(result: TransientResult, ladder: RlcLadder,
                 segment: int = 0) -> Waveform:
    """Current waveform through one ladder segment (a -> b direction)."""
    if not 0 <= segment < ladder.segment_count:
        raise ParameterError(
            f"segment {segment} out of range 0..{ladder.segment_count - 1}")
    probe = ladder.current_probe_element(segment)
    section = ladder.sections[segment]
    if section.inductor is not None:
        values = result.branch_current(probe)
    else:
        values = result.resistor_current(probe)
    return Waveform(result.time, values)


def current_density_report(result: TransientResult, ladder: RlcLadder,
                           cross_section: float, *, segment: int = 0,
                           window_start: float | None = None,
                           window_end: float | None = None
                           ) -> CurrentDensityReport:
    """Measure peak and rms current density of a line segment.

    Parameters
    ----------
    cross_section:
        Wire cross-sectional area in m^2 (width x metal thickness).
    window_start, window_end:
        Measurement window in seconds; defaults to the second half of the
        simulation (discarding the start-up transient) through the end.
    """
    if cross_section <= 0.0:
        raise ParameterError(
            f"cross section must be positive, got {cross_section}")
    waveform = line_current(result, ladder, segment)
    t0 = waveform.time[0]
    t1 = waveform.time[-1]
    start = 0.5 * (t0 + t1) if window_start is None else window_start
    end = t1 if window_end is None else window_end
    window = waveform.slice(start, end)
    return CurrentDensityReport(peak_current=window.peak(),
                                rms_current=window.rms(),
                                cross_section=cross_section,
                                window_start=start, window_end=end)
