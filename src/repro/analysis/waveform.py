"""Waveform measurement utilities (delays, crossings, ringing, periods).

Everything the paper measures on simulated waveforms lives here: threshold
crossings with linear interpolation, 50% delays between nodes, overshoot
and undershoot relative to the rails (Figs. 9-10), oscillation-period
extraction for the ring oscillator (Fig. 11), and peak/rms values for the
current-density study (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError

#: Trapezoidal integration: numpy 2 renamed trapz to trapezoid.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz


@dataclass(frozen=True)
class Waveform:
    """A sampled waveform: strictly increasing times and matching values."""

    time: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        time = np.asarray(self.time, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if time.ndim != 1 or values.ndim != 1 or time.size != values.size:
            raise ParameterError("time and values must be 1-D and equal length")
        if time.size < 2:
            raise ParameterError("waveform needs at least two samples")
        if np.any(np.diff(time) <= 0.0):
            raise ParameterError("time samples must be strictly increasing")
        object.__setattr__(self, "time", time)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # Basic queries.
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Total spanned time."""
        return float(self.time[-1] - self.time[0])

    def value_at(self, t: float) -> float:
        """Linearly interpolated value at time t (clamped at the ends)."""
        return float(np.interp(t, self.time, self.values))

    def slice(self, t_start: float, t_end: float) -> "Waveform":
        """Sub-waveform restricted to [t_start, t_end]."""
        if t_end <= t_start:
            raise ParameterError("t_end must exceed t_start")
        mask = (self.time >= t_start) & (self.time <= t_end)
        if int(np.count_nonzero(mask)) < 2:
            raise ParameterError("slice contains fewer than two samples")
        return Waveform(self.time[mask], self.values[mask])

    # ------------------------------------------------------------------
    # Crossings and delays.
    # ------------------------------------------------------------------
    def rising_crossings(self, level: float) -> np.ndarray:
        """Times where the waveform crosses ``level`` going upward."""
        return self._crossings(level, rising=True)

    def falling_crossings(self, level: float) -> np.ndarray:
        """Times where the waveform crosses ``level`` going downward."""
        return self._crossings(level, rising=False)

    def _crossings(self, level: float, *, rising: bool) -> np.ndarray:
        v = self.values - level
        if rising:
            hits = np.nonzero((v[:-1] < 0.0) & (v[1:] >= 0.0))[0]
        else:
            hits = np.nonzero((v[:-1] > 0.0) & (v[1:] <= 0.0))[0]
        if hits.size == 0:
            return np.empty(0)
        t0 = self.time[hits]
        t1 = self.time[hits + 1]
        v0 = v[hits]
        v1 = v[hits + 1]
        return t0 + (t1 - t0) * (-v0) / (v1 - v0)

    def first_crossing(self, level: float, *, rising: bool = True) -> float:
        """First crossing time of ``level``; raises if there is none."""
        crossings = self._crossings(level, rising=rising)
        if crossings.size == 0:
            direction = "rising" if rising else "falling"
            raise ParameterError(
                f"waveform never crosses {level} ({direction})")
        return float(crossings[0])

    def delay_to(self, other: "Waveform", level: float, *,
                 rising: bool = True) -> float:
        """Delay from this waveform's first ``level`` crossing to ``other``'s."""
        return other.first_crossing(level, rising=rising) \
            - self.first_crossing(level, rising=rising)

    # ------------------------------------------------------------------
    # Signal-integrity metrics.
    # ------------------------------------------------------------------
    def overshoot(self, high: float) -> float:
        """Maximum excursion above the high rail (>= 0)."""
        return max(0.0, float(np.max(self.values)) - high)

    def undershoot(self, low: float = 0.0) -> float:
        """Maximum excursion below the low rail (>= 0)."""
        return max(0.0, low - float(np.min(self.values)))

    def peak(self) -> float:
        """Maximum absolute value."""
        return float(np.max(np.abs(self.values)))

    def rms(self) -> float:
        """Root-mean-square value, trapezoidally time-weighted.

        Correct also for non-uniform sampling (the step-halving transient
        solver emits uniform grids, but measured slices may not start on a
        period boundary).
        """
        squared = self.values * self.values
        integral = _trapezoid(squared, self.time)
        return float(np.sqrt(integral / self.duration))

    def average(self) -> float:
        """Time-weighted mean value."""
        return float(_trapezoid(self.values, self.time) / self.duration)

    def rise_time(self, low: float, high: float, *,
                  fractions: tuple[float, float] = (0.1, 0.9)) -> float:
        """10-90% (by default) rise time of the first low-to-high swing.

        ``low``/``high`` are the signal rails; the thresholds are placed
        at low + fractions*(high-low) and the first rising crossings of
        each are differenced.
        """
        f_lo, f_hi = fractions
        if not 0.0 <= f_lo < f_hi <= 1.0:
            raise ParameterError(
                f"fractions must satisfy 0 <= lo < hi <= 1, got {fractions}")
        swing = high - low
        t_lo = self.first_crossing(low + f_lo * swing, rising=True)
        t_hi = self.first_crossing(low + f_hi * swing, rising=True)
        return t_hi - t_lo

    def fall_time(self, low: float, high: float, *,
                  fractions: tuple[float, float] = (0.1, 0.9)) -> float:
        """90-10% (by default) fall time of the first high-to-low swing."""
        f_lo, f_hi = fractions
        if not 0.0 <= f_lo < f_hi <= 1.0:
            raise ParameterError(
                f"fractions must satisfy 0 <= lo < hi <= 1, got {fractions}")
        swing = high - low
        t_hi = self.first_crossing(low + f_hi * swing, rising=False)
        t_lo = self.first_crossing(low + f_lo * swing, rising=False)
        return t_lo - t_hi

    # ------------------------------------------------------------------
    # Oscillation analysis (Fig. 11).
    # ------------------------------------------------------------------
    def oscillation_period(self, level: float, *, skip: int = 2,
                           min_cycles: int = 2) -> float:
        """Median period between successive rising crossings of ``level``.

        Parameters
        ----------
        skip:
            Initial rising crossings to discard (start-up transient).
        min_cycles:
            Minimum number of full periods required after the skip.

        Raises
        ------
        ParameterError
            If the waveform does not contain enough crossings to measure a
            period — i.e. it does not oscillate at that level.
        """
        crossings = self.rising_crossings(level)
        usable = crossings[skip:]
        if usable.size < min_cycles + 1:
            raise ParameterError(
                f"waveform has only {usable.size} usable crossings of "
                f"{level}; cannot measure an oscillation period")
        periods = np.diff(usable)
        return float(np.median(periods))

    def oscillation_frequency(self, level: float, **kwargs) -> float:
        """1 / oscillation_period."""
        return 1.0 / self.oscillation_period(level, **kwargs)
