"""Switching-activity and glitch-power analysis.

The paper's Sec. 1.1: "Glitches increase the dynamic power dissipation
while false transitions can cause logic errors."  Dynamic power is
proportional to the transition rate, so comparing the measured rate of a
node below vs above the false-switching onset puts a number on the
glitch-power cost of inductance: in the Fig. 11 ring, false switching
roughly halves the period, i.e. roughly doubles the dynamic power of
every gate it reaches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .waveform import Waveform


def transition_count(waveform: Waveform, level: float) -> int:
    """Number of full transitions (rising + falling) through ``level``."""
    return int(waveform.rising_crossings(level).size
               + waveform.falling_crossings(level).size)


def switching_rate(waveform: Waveform, level: float) -> float:
    """Transitions per second through ``level`` over the waveform span."""
    return transition_count(waveform, level) / waveform.duration


@dataclass(frozen=True)
class GlitchReport:
    """Activity comparison of a node between two operating conditions."""

    baseline_rate: float       #: transitions/s in the clean condition
    observed_rate: float       #: transitions/s in the glitchy condition
    level: float

    @property
    def activity_multiplier(self) -> float:
        """observed/baseline transition rate = dynamic-power multiplier."""
        if self.baseline_rate == 0.0:
            raise ParameterError("baseline waveform has no transitions")
        return self.observed_rate / self.baseline_rate

    @property
    def glitching(self) -> bool:
        """True when the observed activity exceeds baseline by > 25%."""
        return self.activity_multiplier > 1.25


def compare_activity(baseline: Waveform, observed: Waveform,
                     level: float, *, settle_fraction: float = 0.25
                     ) -> GlitchReport:
    """Compare switching rates of two waveforms after a settling window.

    The first ``settle_fraction`` of each waveform is discarded (ring
    start-up transients would otherwise bias the count).
    """
    if not 0.0 <= settle_fraction < 1.0:
        raise ParameterError(
            f"settle fraction must be in [0, 1), got {settle_fraction}")

    def settled(waveform: Waveform) -> Waveform:
        t0 = waveform.time[0]
        t1 = waveform.time[-1]
        return waveform.slice(t0 + settle_fraction * (t1 - t0), t1)

    base = settled(baseline)
    obs = settled(observed)
    return GlitchReport(baseline_rate=switching_rate(base, level),
                        observed_rate=switching_rate(obs, level),
                        level=level)
