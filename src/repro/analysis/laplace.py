"""Numerical inverse Laplace transform (fixed Talbot method).

Used to invert the *exact* stage transfer function (Eq. 1) — whose
time-domain response the paper calls analytically intractable — so the
two-pole Padé model's delay error can be quantified.  The implementation
follows Abate & Valko's fixed-Talbot rule:

    r = 2 M / (5 t)
    s(theta) = r theta (cot theta + i)
    sigma(theta) = theta + (theta cot theta - 1) cot theta
    f(t) ~= (r/M) [ 1/2 F(r) e^{r t}
                    + sum_{k=1}^{M-1} Re( e^{t s_k} F(s_k) (1 + i sigma_k) ) ]

with theta_k = k pi / M.  Accuracy grows with M (roughly 0.6 M significant
digits in exact arithmetic; M in the 32-64 range is ample at double
precision for the smooth-plus-ringing responses here).
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Sequence

import numpy as np

from ..core.params import Stage
from ..core.transfer import exact_transfer
from ..errors import ParameterError

#: Default number of Talbot contour points.
DEFAULT_TERMS = 48


def talbot_inverse(transform: Callable[[complex], complex], t: float, *,
                   terms: int = DEFAULT_TERMS) -> float:
    """Evaluate the inverse Laplace transform of ``transform`` at time t.

    Parameters
    ----------
    transform:
        F(s), analytic to the right of the Talbot contour (true for the
        stable interconnect transfer functions used here).
    t:
        Time, strictly positive.
    terms:
        Number of contour points M.

    Raises
    ------
    ParameterError
        For non-positive t or fewer than 4 terms.
    """
    if t <= 0.0:
        raise ParameterError(f"Talbot inversion requires t > 0, got {t}")
    if terms < 4:
        raise ParameterError(f"need at least 4 Talbot terms, got {terms}")
    m = terms
    r = 2.0 * m / (5.0 * t)
    total = 0.5 * complex(transform(complex(r))).real * math.exp(r * t)
    for k in range(1, m):
        theta = k * math.pi / m
        cot = math.cos(theta) / math.sin(theta)
        s = r * theta * complex(cot, 1.0)
        sigma = theta + (theta * cot - 1.0) * cot
        value = cmath.exp(s * t) * complex(transform(s)) * complex(1.0, sigma)
        total += value.real
    return (r / m) * total


def inverse_at_times(transform: Callable[[complex], complex],
                     times: Sequence[float], *,
                     terms: int = DEFAULT_TERMS) -> np.ndarray:
    """Vector convenience wrapper around :func:`talbot_inverse`."""
    return np.array([talbot_inverse(transform, float(t), terms=terms)
                     for t in times])


def step_response_exact(stage: Stage, times: Sequence[float], *,
                        terms: int = DEFAULT_TERMS) -> np.ndarray:
    """Unit-step response of the exact stage transfer function (Eq. 1).

    Inverts H(s)/s at each requested time (t = 0 entries return 0 without
    inversion).  This is the reference the Padé-model ablation benchmark
    compares against.
    """
    transfer = exact_transfer(stage)

    def step_transform(s: complex) -> complex:
        return transfer(s) / s

    out = np.empty(len(times))
    for i, t in enumerate(times):
        t_value = float(t)
        out[i] = 0.0 if t_value == 0.0 else talbot_inverse(
            step_transform, t_value, terms=terms)
    return out
