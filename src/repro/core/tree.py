"""RC-tree moment analysis (Elmore and second moments for branched loads).

The driver-line-load stage of the paper is a chain, but real repeater
sinks often hang off branched routing.  This module computes the first
two voltage-transfer moments of any RC tree:

    M1(i) = - sum_k R(i ^ k) C_k                 (Elmore delay, negated)
    M2(i) =   sum_k R(i ^ k) C_k m1(k)

where R(i ^ k) is the resistance of the common path from the root to
nodes i and k, and m1(k) = -M1(k).  The two-pole Padé mapping
b1 = -M1, b2 = M1^2 - M2 then feeds any sink into the same delay solver
(Eq. 3) and step-response machinery the paper uses for the chain — an
upward-compatible generalization of :func:`repro.core.moments`.

Moments are computed with the classic two-pass linear-time traversal:
an upward pass accumulating subtree capacitance (and capacitance-weighted
m1), a downward pass accumulating path quantities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ParameterError
from .delay import threshold_delay
from .response import StepResponse

#: Name of the implicit root (driver output) node.
ROOT = "root"


@dataclass
class _TreeNode:
    name: str
    resistance: float            # resistance from parent to this node
    capacitance: float
    parent: Optional[str]
    children: List[str] = field(default_factory=list)
    # Filled by the moment passes:
    subtree_c: float = 0.0
    subtree_cm1: float = 0.0
    m1: float = 0.0              # positive Elmore delay at this node
    m2: float = 0.0              # positive second moment sum


class RCTree:
    """A grounded-capacitance RC tree driven at its root.

    The root models the driver output; give it the driver's output
    parasitic as ``root_capacitance`` and include the driver resistance
    as the resistance of the first segment(s) if desired.
    """

    def __init__(self, root_capacitance: float = 0.0) -> None:
        if root_capacitance < 0.0:
            raise ParameterError("root capacitance must be >= 0")
        self._nodes: Dict[str, _TreeNode] = {
            ROOT: _TreeNode(name=ROOT, resistance=0.0,
                            capacitance=root_capacitance, parent=None)}
        self._dirty = True

    # ------------------------------------------------------------------
    def add(self, name: str, parent: str, resistance: float,
            capacitance: float) -> None:
        """Add a node connected to ``parent`` through ``resistance``."""
        if name in self._nodes:
            raise ParameterError(f"duplicate tree node {name!r}")
        if parent not in self._nodes:
            raise ParameterError(f"unknown parent node {parent!r}")
        if resistance <= 0.0:
            raise ParameterError(
                f"segment resistance must be positive, got {resistance}")
        if capacitance < 0.0:
            raise ParameterError(
                f"node capacitance must be >= 0, got {capacitance}")
        self._nodes[name] = _TreeNode(name=name, resistance=resistance,
                                      capacitance=capacitance, parent=parent)
        self._nodes[parent].children.append(name)
        self._dirty = True

    def add_chain(self, parent: str, prefix: str, segments: int,
                  total_resistance: float, total_capacitance: float) -> str:
        """Add a uniform ``segments``-section chain; returns the leaf name."""
        if segments < 1:
            raise ParameterError("need at least one segment")
        r_seg = total_resistance / segments
        c_seg = total_capacitance / segments
        current = parent
        for i in range(segments):
            name = f"{prefix}.{i + 1}"
            self.add(name, current, r_seg, c_seg)
            current = name
        return current

    @property
    def nodes(self) -> List[str]:
        """All node names including the root."""
        return list(self._nodes)

    def total_capacitance(self) -> float:
        """Sum of all node capacitances (farads)."""
        return sum(n.capacitance for n in self._nodes.values())

    # ------------------------------------------------------------------
    def _topological_order(self) -> List[str]:
        order: List[str] = []
        stack = [ROOT]
        while stack:
            name = stack.pop()
            order.append(name)
            stack.extend(self._nodes[name].children)
        return order

    def _compute_moments(self) -> None:
        if not self._dirty:
            return
        order = self._topological_order()

        # Pass A (leaves -> root): subtree capacitance, then Elmore m1 via
        # a root -> leaves pass: m1(i) = m1(parent) + R_i * C_subtree(i).
        for name in reversed(order):
            node = self._nodes[name]
            node.subtree_c = node.capacitance + sum(
                self._nodes[ch].subtree_c for ch in node.children)
        for name in order:
            node = self._nodes[name]
            if node.parent is None:
                node.m1 = 0.0
            else:
                parent = self._nodes[node.parent]
                node.m1 = parent.m1 + node.resistance * node.subtree_c

        # Pass B: m2(i) = sum_k R(i^k) C_k m1(k).  Same structure with the
        # capacitance replaced by C_k m1(k):
        for name in reversed(order):
            node = self._nodes[name]
            node.subtree_cm1 = node.capacitance * node.m1 + sum(
                self._nodes[ch].subtree_cm1 for ch in node.children)
        for name in order:
            node = self._nodes[name]
            if node.parent is None:
                node.m2 = 0.0
            else:
                parent = self._nodes[node.parent]
                node.m2 = parent.m2 + node.resistance * node.subtree_cm1
        self._dirty = False

    # ------------------------------------------------------------------
    def elmore_delay(self, node: str) -> float:
        """Elmore delay (first moment) from the root to ``node``."""
        self._compute_moments()
        return self._node(node).m1

    def second_moment(self, node: str) -> float:
        """Second transfer moment M2 = sum R(i^k) C_k m1(k) at ``node``."""
        self._compute_moments()
        return self._node(node).m2

    def pade_moments(self, node: str) -> tuple[float, float]:
        """(b1, b2) of the two-pole model at ``node``.

        b1 = m1, b2 = m1^2 - M2.  At sink (downstream) nodes of an RC tree
        b2 > 0 and the two-pole model applies; at nodes far upstream of
        large subtrees the [0/2] Padé can degenerate (b2 <= 0, reflecting
        the strong zero in the local transfer), in which case
        :meth:`delay` falls back to the dominant-pole closed form.
        """
        self._compute_moments()
        tree_node = self._node(node)
        b1 = tree_node.m1
        b2 = b1 * b1 - tree_node.m2
        return b1, b2

    def delay(self, node: str, f: float = 0.5) -> float:
        """f*100% delay at ``node`` from the two-pole model.

        Falls back to the single-pole closed form when b2 is numerically
        zero (a perfectly lumped sink).
        """
        import math
        b1, b2 = self.pade_moments(node)
        if b1 <= 0.0:
            raise ParameterError(f"node {node!r} has zero Elmore delay")
        if b2 <= 1e-12 * b1 * b1:
            return b1 * math.log(1.0 / (1.0 - f))
        from .moments import Moments
        moments = Moments(b1=b1, b2=b2, db1_dh=0.0, db1_dk=0.0,
                          db2_dh=0.0, db2_dk=0.0)
        response = StepResponse.from_moments(moments)
        return threshold_delay(response, f, polish_with_newton=False).tau

    def _node(self, name: str) -> _TreeNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ParameterError(f"unknown tree node {name!r}") from None
