"""Analytic delay sensitivities of the two-pole stage model.

The paper's Sec. 3.2 studies delay under inductance *variation* because
the effective l of a real wire is input-pattern dependent.  This module
generalizes that study: implicit differentiation of the delay equation
(Eq. 3) gives dtau/dp in closed form for every stage parameter

    p in { r, l, c, r_s, c_p, c_0, h, k }

via the chain  p -> (b1, b2) -> (s1, s2) -> tau.  Writing
F(tau, p) = (1-f)(s2-s1) - s2 e^{s1 tau} + s1 e^{s2 tau} = 0,

    dtau/dp = - (dF/dp) / (dF/dtau),
    dF/dtau = s1 s2 (e^{s2 tau} - e^{s1 tau}),
    dF/dp   = (1-f)(s2' - s1') - s2' e^{s1 tau} - s2 tau s1' e^{s1 tau}
              + s1' e^{s2 tau} + s1 tau s2' e^{s2 tau},

with s' obtained from (b1', b2') by differentiating the quadratic-root
formula.  At the repeater optimum these sensitivities recover the
optimizer's stationarity conditions exactly: dtau/dk = 0 and
dtau/dh = tau/h — which the test suite asserts.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ParameterError
from .delay import threshold_delay
from .moments import compute_moments
from .params import Stage
from .poles import compute_poles
from .response import StepResponse

#: Parameters a sensitivity can be requested for.
PARAMETERS = ("r", "l", "c", "r_s", "c_p", "c_0", "h", "k")


@dataclass(frozen=True)
class DelaySensitivities:
    """dtau/dp for every stage parameter, plus tau itself.

    ``absolute[p]`` is dtau/dp in SI units; ``relative[p]`` is the
    dimensionless elasticity (p/tau) dtau/dp — the % delay change per %
    parameter change — with entries for p = 0 (e.g. l on an RC line)
    reported as 0.
    """

    tau: float
    threshold: float
    absolute: Dict[str, float]
    relative: Dict[str, float]

    def dominant(self) -> str:
        """Parameter with the largest |relative| sensitivity."""
        return max(self.relative, key=lambda p: abs(self.relative[p]))


def moment_parameter_derivatives(stage: Stage) -> Dict[str, Tuple[float, float]]:
    """(db1/dp, db2/dp) for every parameter p of the stage.

    Closed-form partial derivatives of

        b1 = r_s(c_p+c_0) + r c h^2/2 + r_s c h / k + c_0 r h k
        b2 = l c h^2/2 + r^2 c^2 h^4/24 + r_s(c_p+c_0) r c h^2/2
             + (r_s c h/k + c_0 r h k) r c h^2/6 + c_0 k l h
             + r_s c_p c_0 k r h
    """
    r, l, c = stage.line.r, stage.line.l, stage.line.c
    r_s, c_p, c_0 = stage.driver.r_s, stage.driver.c_p, stage.driver.c_0
    h, k = stage.h, stage.k
    moments = compute_moments(stage)

    h2, h3, h4 = h * h, h ** 3, h ** 4
    rc = r * c
    mixed = r_s * c / k + c_0 * r * k          # the (R_S c + C_L r) density

    db1 = {
        "r": 0.5 * c * h2 + c_0 * h * k,
        "l": 0.0,
        "c": 0.5 * r * h2 + r_s * h / k,
        "r_s": (c_p + c_0) + c * h / k,
        "c_p": r_s,
        "c_0": r_s + r * h * k,
        "h": moments.db1_dh,
        "k": moments.db1_dk,
    }
    db2 = {
        "r": (2.0 * r * c * c * h4 / 24.0
              + 0.5 * r_s * (c_p + c_0) * c * h2
              + (c_0 * k) * rc * h3 / 6.0 + mixed * c * h3 / 6.0
              + r_s * c_p * c_0 * k * h),
        "l": 0.5 * c * h2 + c_0 * k * h,
        "c": (0.5 * l * h2
              + 2.0 * c * r * r * h4 / 24.0
              + 0.5 * r_s * (c_p + c_0) * r * h2
              + (r_s / k) * rc * h3 / 6.0 + mixed * r * h3 / 6.0),
        "r_s": ((c_p + c_0) * 0.5 * rc * h2
                + (c / k) * rc * h3 / 6.0
                + c_p * c_0 * k * r * h),
        "c_p": r_s * 0.5 * rc * h2 + r_s * c_0 * k * r * h,
        "c_0": (r_s * 0.5 * rc * h2
                + (r * k) * rc * h3 / 6.0
                + k * l * h
                + r_s * c_p * k * r * h),
        "h": moments.db2_dh,
        "k": moments.db2_dk,
    }
    return {p: (db1[p], db2[p]) for p in PARAMETERS}


def _pole_derivative(b1: float, b2: float, s: complex, sign: float,
                     db1: float, db2: float) -> complex:
    """d/dp of (-b1 + sign sqrt(b1^2-4b2))/(2 b2) at fixed damping branch."""
    sqrt_disc = cmath.sqrt(complex(b1 * b1 - 4.0 * b2))
    two_b2 = 2.0 * b2
    if sqrt_disc == 0.0:
        return -db1 / two_b2 + b1 * db2 / (two_b2 * b2)
    numerator = -db1 + sign * (b1 * db1 - 2.0 * db2) / sqrt_disc
    return numerator / two_b2 - s * db2 / b2


def delay_sensitivities(stage: Stage, f: float = 0.5) -> DelaySensitivities:
    """Analytic dtau/dp for every stage parameter at threshold f."""
    if not 0.0 < f < 1.0:
        raise ParameterError(f"threshold must be in (0, 1), got {f}")
    moments = compute_moments(stage)
    poles = compute_poles(moments)
    response = StepResponse.from_poles(poles)
    tau = threshold_delay(response, f, polish_with_newton=False).tau

    s1, s2 = poles.s1, poles.s2
    e1 = cmath.exp(s1 * tau)
    e2 = cmath.exp(s2 * tau)
    df_dtau = s1 * s2 * (e2 - e1)

    parameter_values = {
        "r": stage.line.r, "l": stage.line.l, "c": stage.line.c,
        "r_s": stage.driver.r_s, "c_p": stage.driver.c_p,
        "c_0": stage.driver.c_0, "h": stage.h, "k": stage.k,
    }
    absolute: Dict[str, float] = {}
    relative: Dict[str, float] = {}
    for p, (db1, db2) in moment_parameter_derivatives(stage).items():
        ds1 = _pole_derivative(moments.b1, moments.b2, s1, +1.0, db1, db2)
        ds2 = _pole_derivative(moments.b1, moments.b2, s2, -1.0, db1, db2)
        df_dp = ((1.0 - f) * (ds2 - ds1)
                 - ds2 * e1 - s2 * tau * ds1 * e1
                 + ds1 * e2 + s1 * tau * ds2 * e2)
        dtau_dp = complex(-df_dp / df_dtau)
        absolute[p] = dtau_dp.real
        value = parameter_values[p]
        relative[p] = (value / tau) * dtau_dp.real if value != 0.0 else 0.0
    return DelaySensitivities(tau=tau, threshold=f, absolute=absolute,
                              relative=relative)
