"""Poles of the two-pole transfer function and their sizing derivatives.

The Padé-approximated transfer function H(s) = 1/(1 + s b1 + s^2 b2) has
poles

    s_{1,2} = (-b1 +- sqrt(b1^2 - 4 b2)) / (2 b2)

which are real (overdamped), coincident (critically damped) or complex
conjugate (underdamped) depending on the sign of the discriminant
b1^2 - 4 b2.  The optimizer additionally needs d s_{1,2} / d{h,k}, which the
paper gives as

    ds/dx = 1/(2 b2) [ -db1/dx +- (b1 db1/dx - 2 db2/dx)/sqrt(b1^2-4b2) ]
            - (s_{1,2} / b2) db2/dx

All pole arithmetic here is complex so that the same code path covers all
three damping regimes; physically real results are recovered downstream by
taking real parts (the residual imaginary parts are checked in tests).
"""

from __future__ import annotations

import cmath
import enum
from dataclasses import dataclass

from ..errors import ParameterError
from .moments import Moments


class Damping(enum.Enum):
    """Damping regime of the two-pole system."""

    OVERDAMPED = "overdamped"
    CRITICALLY_DAMPED = "critically_damped"
    UNDERDAMPED = "underdamped"


#: Relative tolerance on the discriminant used to declare critical damping.
CRITICAL_RTOL = 1e-9


def classify_damping(b1: float, b2: float, *,
                     rtol: float = CRITICAL_RTOL) -> Damping:
    """Classify the damping regime from the moments.

    The discriminant is compared against ``rtol * b1**2`` so that the
    classification is scale invariant (b1 and sqrt(b2) share units of time).
    """
    disc = b1 * b1 - 4.0 * b2
    if abs(disc) <= rtol * b1 * b1:
        return Damping.CRITICALLY_DAMPED
    return Damping.OVERDAMPED if disc > 0.0 else Damping.UNDERDAMPED


@dataclass(frozen=True)
class PolePair:
    """Pole pair of the two-pole model with h/k sensitivities.

    ``s1`` carries the ``+sqrt`` branch and ``s2`` the ``-sqrt`` branch of
    the quadratic formula; for an overdamped system ``s1`` is therefore the
    slow (dominant) pole.  All poles have negative real part for physical
    (positive) b1, b2.
    """

    s1: complex
    s2: complex
    ds1_dh: complex
    ds1_dk: complex
    ds2_dh: complex
    ds2_dk: complex
    damping: Damping

    @property
    def natural_frequency(self) -> float:
        """Undamped natural frequency omega_n = 1/sqrt(b2) = |s1 s2|^0.5."""
        return abs(self.s1 * self.s2) ** 0.5

    @property
    def damping_ratio(self) -> float:
        """Damping ratio zeta = b1 / (2 sqrt(b2)) of the two-pole system."""
        s1s2 = self.s1 * self.s2          # = 1/b2
        s1_plus_s2 = self.s1 + self.s2    # = -b1/b2
        return (-s1_plus_s2 / (2.0 * cmath.sqrt(s1s2))).real


def compute_poles(moments: Moments, *,
                  critical_rtol: float = CRITICAL_RTOL) -> PolePair:
    """Compute s1, s2 and their h/k derivatives from the Padé moments.

    Raises
    ------
    ParameterError
        If b2 is not positive (the two-pole model needs a genuine second
        order system; b2 > 0 holds for any physical stage).
    """
    b1, b2 = moments.b1, moments.b2
    if b2 <= 0.0:
        raise ParameterError(f"two-pole model requires b2 > 0, got {b2}")
    if b1 <= 0.0:
        raise ParameterError(f"two-pole model requires b1 > 0, got {b1}")

    disc = complex(b1 * b1 - 4.0 * b2)
    sqrt_disc = cmath.sqrt(disc)
    two_b2 = 2.0 * b2
    s1 = (-b1 + sqrt_disc) / two_b2
    s2 = (-b1 - sqrt_disc) / two_b2

    def branch_derivative(sign: float, s: complex, db1: float,
                          db2: float) -> complex:
        """d/dx of (-b1 +- sqrt(disc))/(2 b2) by the chain rule."""
        if sqrt_disc == 0.0:
            # Exactly critically damped: the +-sqrt term is singular.  Use
            # the derivative of the double root -b1/(2 b2) instead; callers
            # that need to optimize *through* the critical point fall back
            # to direct minimization (see repro.core.optimize).
            return -db1 / two_b2 + b1 * db2 / (two_b2 * b2)
        numerator = -db1 + sign * (b1 * db1 - 2.0 * db2) / sqrt_disc
        return numerator / two_b2 - s * db2 / b2

    ds1_dh = branch_derivative(+1.0, s1, moments.db1_dh, moments.db2_dh)
    ds1_dk = branch_derivative(+1.0, s1, moments.db1_dk, moments.db2_dk)
    ds2_dh = branch_derivative(-1.0, s2, moments.db1_dh, moments.db2_dh)
    ds2_dk = branch_derivative(-1.0, s2, moments.db1_dk, moments.db2_dk)

    return PolePair(s1=s1, s2=s2,
                    ds1_dh=ds1_dh, ds1_dk=ds1_dk,
                    ds2_dh=ds2_dh, ds2_dk=ds2_dk,
                    damping=classify_damping(b1, b2, rtol=critical_rtol))
