"""Transmission-line quantities of a uniform RLC line.

The paper frames the inductance problem in transmission-line terms: the
line's characteristic impedance Z0(s) = sqrt((r + s l)/(s c)) and
propagation constant gamma(s) = sqrt((r + s l) s c) decide whether a wire
behaves like a diffusive RC net or a wave-carrying LC line.  This module
evaluates those quantities, their classical asymptotes, and the standard
regime diagnostics:

* attenuation alpha(omega) and phase beta(omega) per metre,
* phase velocity and time of flight,
* the RC/LC transition frequency omega_LC = r/l where the reactive part
  of the series impedance overtakes the resistance,
* the "transmission-line effects matter" length window of Deutsch et
  al. [6]:  t_flight > rise_time/2  together with  attenuated swing
  still significant (R_total < ~2 Z0).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

from ..errors import ParameterError
from .params import LineParams


def characteristic_impedance(line: LineParams, omega: float) -> complex:
    """Z0(j omega) = sqrt((r + j omega l)/(j omega c)), ohms."""
    _check_omega(omega)
    s = 1j * omega
    return cmath.sqrt((line.r + s * line.l) / (s * line.c))


def propagation_constant(line: LineParams, omega: float) -> complex:
    """gamma(j omega) = alpha + j beta = sqrt((r + j omega l) j omega c).

    alpha is attenuation (Np/m), beta the phase constant (rad/m); the
    principal square root keeps both non-negative.
    """
    _check_omega(omega)
    s = 1j * omega
    return cmath.sqrt((line.r + s * line.l) * (s * line.c))


def attenuation(line: LineParams, omega: float) -> float:
    """alpha(omega) in nepers per metre."""
    return propagation_constant(line, omega).real


def phase_velocity(line: LineParams, omega: float) -> float:
    """omega / beta(omega) in m/s; approaches 1/sqrt(l c) at high omega."""
    beta = propagation_constant(line, omega).imag
    if beta == 0.0:
        raise ParameterError("phase constant vanished; omega too small")
    return omega / beta


def lc_transition_frequency(line: LineParams) -> float:
    """omega at which |j omega l| = r, i.e. omega_LC = r/l (rad/s).

    Below it the line is RC-diffusive; above it inductance dominates the
    series impedance.  Infinite for a zero-inductance line.
    """
    if line.l == 0.0:
        return math.inf
    return line.r / line.l


@dataclass(frozen=True)
class LineRegime:
    """Diagnostics of one (line, length, rise-time) operating point."""

    time_of_flight: float          #: h sqrt(l c), seconds
    total_resistance: float        #: r h, ohms
    z0_lossless: float             #: sqrt(l/c), ohms
    flight_criterion: bool         #: t_flight > rise_time / 2
    attenuation_criterion: bool    #: r h < 2 sqrt(l/c)

    @property
    def transmission_line_effects(self) -> bool:
        """Both Deutsch-style criteria met: reflections will be visible."""
        return self.flight_criterion and self.attenuation_criterion


def classify_regime(line: LineParams, length: float,
                    rise_time: float) -> LineRegime:
    """Apply the classical 'when do transmission-line effects matter' test.

    After Deutsch et al. [paper ref. 6]: inductance matters when the line
    is long enough that the signal edge resolves the flight time
    (t_flight > t_rise/2) yet short/fat enough that resistive attenuation
    has not already killed the wave (R_total < 2 Z0).
    """
    if length <= 0.0:
        raise ParameterError(f"length must be positive, got {length}")
    if rise_time <= 0.0:
        raise ParameterError(f"rise time must be positive, got {rise_time}")
    if line.l == 0.0:
        return LineRegime(time_of_flight=0.0,
                          total_resistance=line.r * length,
                          z0_lossless=0.0, flight_criterion=False,
                          attenuation_criterion=False)
    t_flight = length * line.time_of_flight_per_length
    z0 = line.characteristic_impedance_lossless
    return LineRegime(
        time_of_flight=t_flight,
        total_resistance=line.r * length,
        z0_lossless=z0,
        flight_criterion=t_flight > 0.5 * rise_time,
        attenuation_criterion=line.r * length < 2.0 * z0)


def critical_length_window(line: LineParams, rise_time: float
                           ) -> tuple[float, float]:
    """(h_min, h_max) between which transmission-line effects matter.

    h_min comes from the flight criterion, h_max from the attenuation
    criterion; an empty window (h_min >= h_max) means the wire never shows
    visible reflections at this rise time.
    """
    if line.l == 0.0:
        return (math.inf, math.inf)
    h_min = 0.5 * rise_time / line.time_of_flight_per_length
    h_max = 2.0 * line.characteristic_impedance_lossless / line.r
    return (h_min, h_max)


def _check_omega(omega: float) -> None:
    if omega <= 0.0:
        raise ParameterError(f"omega must be positive, got {omega}")
