"""Inductance sweeps of the repeater-insertion optimum (Figs. 4-8).

Every results figure in the paper is a sweep of the line inductance per
unit length l over [0, 5) nH/mm with everything else fixed.  This module
runs the optimizer across such a sweep with warm starting (each optimum
seeds the next l point, which keeps the Newton solver in its convergence
basin) and collects all derived quantities the figures need:

* h_optRLC, k_optRLC, tau, tau/h               (Figs. 5, 6)
* ratios against the closed-form RC optimum    (Figs. 5, 6, 7)
* l_crit evaluated at the RLC optimum          (Fig. 4)
* delay of the *RC-sized* stage at each l      (Fig. 8)

Each sweep point is submitted through the batch engine
(:mod:`repro.engine`) as one ``OptimizeJob``; the derived columns are
array-first: l_crit is one :func:`repro.core.kernels.critical_inductance_v`
call and the RC-sized delay column is one ``BatchDelayJob`` (a single
cache entry covering all n points).  The default backend is the serial
in-process executor, which preserves the warm-start chain (point i seeds
point i+1, so the evaluation order is inherently sequential) and bitwise
determinism; passing an executor with a result cache makes repeated
sweeps replay from disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import OptimizationError
from .elmore import RCOptimum, rc_optimum
from .kernels import StageBatch, critical_inductance_v
from .optimize import OptimizerMethod, RepeaterOptimum, optimize_repeater
from .params import DriverParams, LineParams


@dataclass(frozen=True)
class InductanceSweep:
    """Optimizer results across a line-inductance sweep (SI units).

    All arrays are indexed by the sweep points ``l_values`` (H/m).
    ``methods`` and ``traces`` carry the per-point solver diagnostics
    (solver name and serialized
    :class:`~repro.core.evaluate.OptimizationTrace` payload), so a sweep
    can report exactly where Newton stalled and the direct fallback took
    over — see :attr:`fallback_points` and :meth:`fallback_report`.
    """

    l_values: np.ndarray
    h_opt: np.ndarray
    k_opt: np.ndarray
    tau: np.ndarray
    delay_per_length: np.ndarray
    l_crit: np.ndarray
    rc_reference: RCOptimum
    threshold: float
    rc_sized_delay_per_length: np.ndarray
    methods: Optional[Tuple[str, ...]] = field(default=None, compare=False)
    traces: Optional[Tuple[dict, ...]] = field(default=None, repr=False,
                                               compare=False)

    @property
    def fallback_points(self) -> list:
        """Sweep indices where the direct method produced the optimum."""
        if self.methods is None:
            return []
        return [i for i, name in enumerate(self.methods)
                if name == OptimizerMethod.DIRECT.value]

    @property
    def backtrack_steps(self) -> int:
        """Total Newton backtracking halvings across all sweep points."""
        if self.traces is None:
            return 0
        return sum(int(step.get("backtracks", 0))
                   for trace in self.traces if trace
                   for step in trace.get("steps", []))

    def fallback_report(self) -> str:
        """Human-readable account of per-point solver behaviour."""
        if self.methods is None:
            return "no per-point traces recorded"
        lines = []
        for i in self.fallback_points:
            detail = ""
            if self.traces and self.traces[i]:
                for event in self.traces[i].get("events", []):
                    if event.get("kind") == "fallback":
                        detail = f": {event.get('detail', '')}"
                        break
            lines.append(f"point {i} (l = {self.l_values[i]:.4g} H/m) "
                         f"fell back to direct{detail}")
        if not lines:
            lines.append(
                f"all {len(self.methods)} points converged via newton")
        lines.append(f"total backtracking steps: {self.backtrack_steps}")
        return "\n".join(lines)

    @property
    def h_ratio(self) -> np.ndarray:
        """h_optRLC / h_optRC (Fig. 5)."""
        return self.h_opt / self.rc_reference.h_opt

    @property
    def k_ratio(self) -> np.ndarray:
        """k_optRLC / k_optRC (Fig. 6)."""
        return self.k_opt / self.rc_reference.k_opt

    @property
    def delay_ratio_vs_rc(self) -> np.ndarray:
        """(tau/h)_RLC(l) / (tau/h)_RLC(l=0) (Fig. 7).

        The paper normalizes the optimized RLC delay per unit length by the
        corresponding value without inductance, i.e. the same two-pole
        optimization at l = 0 (which is slightly below the Elmore optimum,
        see Fig. 5 discussion).  The sweep must therefore include l = 0 (or
        a point close to it) as its first entry.
        """
        return self.delay_per_length / self.delay_per_length[0]

    @property
    def mistuning_penalty(self) -> np.ndarray:
        """Delay ratio of the RC-sized stage over the RLC optimum (Fig. 8)."""
        return self.rc_sized_delay_per_length / self.delay_per_length

    @property
    def damping_margin(self) -> np.ndarray:
        """l / l_crit at the optimum; > 1 means the optimum is underdamped."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.l_crit > 0.0, self.l_values / self.l_crit,
                            np.inf)


def sweep_inductance(line_zero_l: LineParams, driver: DriverParams,
                     l_values, f: float = 0.5, *,
                     method: OptimizerMethod = OptimizerMethod.AUTO,
                     executor=None) -> InductanceSweep:
    """Run the repeater optimizer for each inductance in ``l_values``.

    Parameters
    ----------
    line_zero_l:
        Line parameters whose inductance field is replaced by each sweep
        value in turn (its own ``l`` is ignored).
    driver:
        Minimum-repeater parameters.
    l_values:
        Iterable of inductances per unit length in H/m, in ascending order
        for effective warm starting.
    f:
        Delay threshold fraction.
    executor:
        Optional :class:`repro.engine.executor.BatchExecutor` the per-point
        jobs are submitted through.  Defaults to a fresh serial in-process
        executor (no cache); attach a cached executor to make repeated
        sweeps replay from disk.  Because each point warm-starts the next,
        points are submitted one at a time regardless of the executor's
        worker count.
    """
    from ..engine.executor import BatchExecutor
    from ..engine.jobs import BatchDelayJob, OptimizeJob

    l_array = np.asarray(list(l_values), dtype=float)
    if l_array.size == 0:
        raise ValueError("l_values must be non-empty")
    if executor is None:
        executor = BatchExecutor(jobs=1)

    rc_ref = rc_optimum(line_zero_l, driver)
    n = l_array.size
    h_opt = np.empty(n)
    k_opt = np.empty(n)
    tau = np.empty(n)
    dpl = np.empty(n)

    methods: list = []
    traces: list = []
    warm_start = (rc_ref.h_opt, rc_ref.k_opt)
    for i, l in enumerate(l_array):
        line = line_zero_l.with_inductance(float(l))
        # OptimizeJob retries once from the RC optimum when the warm
        # start fails — the recovery this loop used to apply inline.
        outcome = executor.run_one(OptimizeJob(
            line=line, driver=driver, f=f, method=method,
            initial=warm_start))
        if not outcome.ok:
            raise OptimizationError(
                f"sweep point {i} (l = {l:.4g} H/m) failed: "
                f"{outcome.error_type}: {outcome.error}")
        optimum = outcome.result
        warm_start = (optimum["h_opt"], optimum["k_opt"])
        h_opt[i] = optimum["h_opt"]
        k_opt[i] = optimum["k_opt"]
        tau[i] = optimum["tau"]
        dpl[i] = optimum["delay_per_length"]
        methods.append(optimum["method"])
        traces.append(optimum.get("trace"))

    # l_crit at each RLC optimum (Fig. 4) — one vectorized kernel call.
    optima = StageBatch.from_arrays(
        r=line_zero_l.r, l=l_array, c=line_zero_l.c,
        r_s=driver.r_s, c_p=driver.c_p, c_0=driver.c_0, h=h_opt, k=k_opt)
    l_crit = critical_inductance_v(optima)

    # Delay of the RC-sized stage at each l (Fig. 8) — one batched,
    # cacheable job instead of n per-point DelayJobs.
    rc_sized = executor.run_one(BatchDelayJob.from_inductance_sweep(
        line_zero_l, driver, l_array, h=rc_ref.h_opt, k=rc_ref.k_opt, f=f))
    if not rc_sized.ok:
        raise OptimizationError(
            f"RC-sized delay column failed for sweep of {n} points "
            f"(l = {l_array[0]:.4g}..{l_array[-1]:.4g} H/m, "
            f"h = {rc_ref.h_opt:.4g} m, k = {rc_ref.k_opt:.4g}): "
            f"{rc_sized.error_type}: {rc_sized.error}")
    rc_sized_dpl = np.asarray(rc_sized.result["delay_per_length"],
                              dtype=float)

    return InductanceSweep(l_values=l_array, h_opt=h_opt, k_opt=k_opt,
                           tau=tau, delay_per_length=dpl, l_crit=l_crit,
                           rc_reference=rc_ref, threshold=f,
                           rc_sized_delay_per_length=rc_sized_dpl,
                           methods=tuple(methods), traces=tuple(traces))


def single_optimum(line: LineParams, driver: DriverParams, f: float = 0.5,
                   **kwargs) -> RepeaterOptimum:
    """Optimize a single configuration (thin convenience wrapper)."""
    return optimize_repeater(line, driver, f, **kwargs)
