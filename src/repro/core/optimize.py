"""Repeater-insertion optimizer for distributed RLC lines (paper Sec. 2.2).

A long line of length L is split into L/h buffered segments; the total
delay is (L/h) tau(h, k), so the optimizer minimizes the *delay per unit
length* tau/h over the segment length h and the repeater size k.  Setting
the gradient to zero gives d tau/d h = tau/h and d tau/d k = 0; inserting
these into the differentiated delay equation (Eq. 3 multiplied by
(s2 - s1)) yields the paper's stationarity residuals

  g1 = (1-f)(s2_h - s1_h) - s2_h e^{s1 tau} + s1_h e^{s2 tau}
       - s2 tau (s1_h + s1/h) e^{s1 tau} + s1 tau (s2_h + s2/h) e^{s2 tau}
  g2 = (1-f)(s2_k - s1_k) - s2_k e^{s1 tau} - s2 tau s1_k e^{s1 tau}
       + s1_k e^{s2 tau} + s1 tau s2_k e^{s2 tau}

(subscripts denote partial derivatives).  The paper drives (g1, g2) to zero
with a 2-D Newton method; we implement exactly that (analytic pole
derivatives, finite-difference outer Jacobian, damped steps) and add a
derivative-free direct minimization of tau/h as a fallback and as an
independent validator: the pole-derivative terms contain 1/sqrt(b1^2-4b2),
which blows up where the optimum rides close to critical damping — there
the direct method takes over automatically.

Since the kernel-layer refactor every residual evaluation is served by a
shared :class:`repro.core.evaluate.StageEvaluator`: one Newton iteration's
base point and both finite-difference probes run as a single 3-lane
kernel batch, backtracking trials are memoized, and the direct fallback's
simplex reuses the same cache.  The convergence path — and therefore the
returned (h_opt, k_opt, tau) — is bitwise identical to the scalar
implementation, which is preserved below as
:func:`stationarity_residuals` (the reference oracle the equivalence
tests and benchmarks compare against).  Every run also records an
:class:`~repro.core.evaluate.OptimizationTrace` on the returned optimum.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np
from scipy.optimize import minimize

from ..errors import DelaySolverError, OptimizationError, ParameterError
from .delay import threshold_delay
from .elmore import rc_optimum
from .evaluate import (OptimizationTrace, StageEvaluator, TraceStep,
                       damping_name, prime_pairs)
from .kernels import DAMPING_BY_CODE
from .moments import compute_moments
from .params import DriverParams, LineParams, Stage
from .poles import Damping, compute_poles
from .response import StepResponse


class OptimizerMethod(enum.Enum):
    """Which solver produced (or should produce) the optimum."""

    NEWTON = "newton"
    DIRECT = "direct"
    AUTO = "auto"


@dataclass(frozen=True)
class RepeaterOptimum:
    """Optimal repeater insertion for one (line, driver, f) configuration.

    Attributes
    ----------
    h_opt:
        Optimal segment length in metres.
    k_opt:
        Optimal repeater size (multiple of minimum size).
    tau:
        f*100% delay of one optimal segment in seconds.
    delay_per_length:
        tau / h_opt in s/m — the minimized objective.
    damping:
        Damping regime of the two-pole model at the optimum.
    method:
        Solver that produced the result (NEWTON or DIRECT).
    iterations:
        Outer iterations used by that solver.
    trace:
        Per-iteration :class:`~repro.core.evaluate.OptimizationTrace` of
        the run (seed + accepted iterates, backtracking counts, fallback
        events, kernel-lane accounting).
    """

    h_opt: float
    k_opt: float
    tau: float
    delay_per_length: float
    damping: Damping
    method: OptimizerMethod
    iterations: int
    trace: Optional[OptimizationTrace] = field(
        default=None, repr=False, compare=False)


def stage_delay_per_length(line: LineParams, driver: DriverParams,
                           h: float, k: float, f: float) -> float:
    """Objective tau(h, k)/h for given segment length and repeater size."""
    stage = Stage(line=line, driver=driver, h=h, k=k)
    return threshold_delay(stage, f, polish_with_newton=False).tau / h


def stationarity_residuals(line: LineParams, driver: DriverParams,
                           h: float, k: float, f: float
                           ) -> tuple[float, float, float]:
    """Evaluate the paper's residuals (g1, g2) and the delay tau at (h, k).

    This is the scalar reference evaluation — one full walk of the
    moments -> poles -> response -> delay chain.  The optimizer itself
    now evaluates through the batched
    :class:`~repro.core.evaluate.StageEvaluator`, whose lanes are
    verified bitwise against this function; it is kept as the oracle for
    those equivalence tests and the pre-refactor benchmark baseline.

    The residuals are returned normalized by (s2 - s1) and
    nondimensionalized by h (g1) and k (g2).  The normalization matters:
    g1 and g2 come from differentiating Eq. 3 *multiplied by (s2 - s1)*, so
    for conjugate poles they are purely imaginary while for real poles they
    are purely real.  Dividing by (s2 - s1) — itself imaginary for
    conjugate poles and real otherwise — recovers a real residual
    d(phi)/d{h,k} in every damping regime without moving its zero (phi is
    the real left-hand side of Eq. 3; the identity dF/dx = (s2-s1) dphi/dx
    holds on the solution manifold phi(tau) = 0).
    """
    stage = Stage(line=line, driver=driver, h=h, k=k)
    moments = compute_moments(stage)
    poles = compute_poles(moments)
    response = StepResponse.from_poles(poles)
    tau = threshold_delay(response, f, polish_with_newton=False).tau

    s1, s2 = poles.s1, poles.s2
    e1 = np.exp(s1 * tau)
    e2 = np.exp(s2 * tau)
    one_minus_f = 1.0 - f

    g1 = (one_minus_f * (poles.ds2_dh - poles.ds1_dh)
          - poles.ds2_dh * e1 + poles.ds1_dh * e2
          - s2 * tau * (poles.ds1_dh + s1 / h) * e1
          + s1 * tau * (poles.ds2_dh + s2 / h) * e2)
    g2 = (one_minus_f * (poles.ds2_dk - poles.ds1_dk)
          - poles.ds2_dk * e1 - s2 * tau * poles.ds1_dk * e1
          + poles.ds1_dk * e2 + s1 * tau * poles.ds2_dk * e2)

    pole_gap = s2 - s1
    g1_real = complex(g1 / pole_gap).real
    g2_real = complex(g2 / pole_gap).real
    return g1_real * h, g2_real * k, tau


def _fail(message: str, *, iteration: int, norm: float,
          trace: OptimizationTrace) -> OptimizationError:
    """Build an OptimizationError carrying the trace's failure context."""
    worse = trace.accepted_worse_total
    if worse:
        message += (f" (accepted {worse} worse iterate"
                    f"{'s' if worse != 1 else ''} during backtracking)")
    trace.record_event("newton_error", message)
    error = OptimizationError(message, iterations=iteration, residual=norm)
    error.trace = trace
    error.accepted_worse = worse
    return error


def _newton_optimize(line: LineParams, driver: DriverParams, f: float,
                     h0: float, k0: float, *, tol: float,
                     max_iterations: int,
                     evaluator: Optional[StageEvaluator] = None,
                     trace: Optional[OptimizationTrace] = None
                     ) -> RepeaterOptimum:
    """Damped 2-D Newton on (g1, g2) with a finite-difference Jacobian.

    Each iteration evaluates the base point and both probes as one
    3-lane kernel batch (the base is a memo hit after iteration 1);
    backtracking trials are memoized too, so a re-probed (h, k) is never
    recomputed.  The iterate sequence is bitwise identical to the scalar
    implementation's.
    """
    evaluator = evaluator or StageEvaluator(line, driver, f)
    trace = trace if trace is not None else OptimizationTrace()
    h, k = h0, k0
    g1, g2, tau, damping_code = evaluator.evaluate(h, k)
    norm = math.hypot(g1, g2)
    trace.record_step(TraceStep(
        iteration=trace.next_iteration, h=float(h), k=float(k),
        g1=g1, g2=g2, tau=tau, residual_norm=norm,
        damping=damping_name(damping_code), step_scale=None,
        backtracks=0, accepted_worse=False))

    for iteration in range(1, max_iterations + 1):
        # Finite-difference Jacobian of the scaled residual vector — the
        # base point and both probes as one 3-lane batch (base: memo hit).
        eps_h = 1e-6 * h
        eps_k = 1e-6 * k
        _, probe_h, probe_k = evaluator.evaluate_many(
            [(h, k), (h + eps_h, k), (h, k + eps_k)])
        g1_h, g2_h = probe_h[0], probe_h[1]
        g1_k, g2_k = probe_k[0], probe_k[1]
        jac = np.array([[(g1_h - g1) / eps_h, (g1_k - g1) / eps_k],
                        [(g2_h - g2) / eps_h, (g2_k - g2) / eps_k]])
        rhs = np.array([g1, g2])
        try:
            step = np.linalg.solve(jac, rhs)
        except np.linalg.LinAlgError as exc:
            raise _fail(f"singular Jacobian at iteration {iteration}",
                        iteration=iteration, norm=norm, trace=trace) from exc
        if not np.all(np.isfinite(step)):
            raise _fail(f"non-finite Newton step at iteration {iteration}",
                        iteration=iteration, norm=norm, trace=trace)

        # Damped update with positivity backtracking.
        scale = 1.0
        backtracks = 0
        for _ in range(40):
            h_new = h - scale * step[0]
            k_new = k - scale * step[1]
            if h_new > 0.0 and k_new > 0.0:
                try:
                    g1_new, g2_new, tau_new, damping_code = \
                        evaluator.evaluate(h_new, k_new)
                except (DelaySolverError, ParameterError):
                    scale *= 0.5
                    backtracks += 1
                    continue
                norm_new = math.hypot(g1_new, g2_new)
                if norm_new < norm or scale < 1e-3:
                    break
            scale *= 0.5
            backtracks += 1
        else:
            raise _fail(f"Newton backtracking failed at iteration "
                        f"{iteration}", iteration=iteration, norm=norm,
                        trace=trace)

        accepted_worse = not norm_new < norm
        if accepted_worse:
            trace.record_event(
                "accepted_worse",
                f"iteration {iteration}: accepted residual {norm_new:.6g} "
                f">= {norm:.6g} at step scale {scale:.3g}")
        moved = max(abs(h_new - h) / h, abs(k_new - k) / k)
        h, k, g1, g2, tau, norm = h_new, k_new, g1_new, g2_new, tau_new, \
            norm_new
        trace.record_step(TraceStep(
            iteration=trace.next_iteration, h=float(h), k=float(k),
            g1=g1, g2=g2, tau=tau, residual_norm=norm,
            damping=damping_name(damping_code), step_scale=scale,
            backtracks=backtracks, accepted_worse=accepted_worse))
        if moved < tol:
            trace.attach_counters(evaluator)
            return RepeaterOptimum(h_opt=h, k_opt=k, tau=tau,
                                   delay_per_length=tau / h,
                                   damping=DAMPING_BY_CODE[damping_code],
                                   method=OptimizerMethod.NEWTON,
                                   iterations=iteration, trace=trace)

    raise _fail(f"Newton optimizer did not converge in {max_iterations} "
                f"iterations", iteration=max_iterations, norm=norm,
                trace=trace)


def _direct_optimize(line: LineParams, driver: DriverParams, f: float,
                     h0: float, k0: float, *, tol: float,
                     max_iterations: int,
                     evaluator: Optional[StageEvaluator] = None,
                     trace: Optional[OptimizationTrace] = None
                     ) -> RepeaterOptimum:
    """Nelder-Mead on log(h), log(k) — derivative-free and damping-agnostic."""
    evaluator = evaluator or StageEvaluator(line, driver, f)
    trace = trace if trace is not None else OptimizationTrace()

    def objective(x: np.ndarray) -> float:
        h = h0 * math.exp(x[0])
        k = k0 * math.exp(x[1])
        try:
            return evaluator.delay(h, k) / h
        except (DelaySolverError, ParameterError):
            return float("inf")

    result = minimize(objective, x0=np.zeros(2), method="Nelder-Mead",
                      options={"xatol": tol * 0.1, "fatol": 0.0,
                               "maxiter": max_iterations,
                               "maxfev": 4 * max_iterations})
    iterations = int(result.get("nit", 0))
    if not result.success and result.status != 2:
        # status 2 = max iterations; anything else is a genuine failure.
        trace.record_event("direct_error", str(result.message))
        error = OptimizationError(
            f"direct optimizer failed: {result.message}",
            iterations=iterations)
        error.trace = trace
        raise error
    h = h0 * math.exp(result.x[0])
    k = k0 * math.exp(result.x[1])
    g1, g2, tau, damping_code = evaluator.evaluate(h, k)
    trace.record_event(
        "direct", f"nelder-mead converged in {iterations} iterations, "
        f"{int(result.get('nfev', 0))} evaluations")
    trace.record_step(TraceStep(
        iteration=trace.next_iteration, h=float(h), k=float(k),
        g1=g1, g2=g2, tau=tau, residual_norm=math.hypot(g1, g2),
        damping=damping_name(damping_code), step_scale=None,
        backtracks=0, accepted_worse=False))
    trace.attach_counters(evaluator)
    return RepeaterOptimum(h_opt=h, k_opt=k, tau=tau,
                           delay_per_length=tau / h,
                           damping=DAMPING_BY_CODE[damping_code],
                           method=OptimizerMethod.DIRECT,
                           iterations=iterations, trace=trace)


def optimize_repeater(line: LineParams, driver: DriverParams,
                      f: float = 0.5, *,
                      method: OptimizerMethod = OptimizerMethod.AUTO,
                      initial: Optional[tuple[float, float]] = None,
                      tol: float = 1e-9,
                      max_iterations: int = 200,
                      evaluator: Optional[StageEvaluator] = None
                      ) -> RepeaterOptimum:
    """Find (h_optRLC, k_optRLC) minimizing the f*100% delay per unit length.

    Parameters
    ----------
    line, driver:
        Interconnect and minimum-repeater parameters (SI units).
    f:
        Delay threshold fraction; the paper's plots use f = 0.5.
    method:
        NEWTON runs only the paper's 2-D Newton solve; DIRECT runs only the
        Nelder-Mead fallback; AUTO (default) tries Newton first and falls
        back when it stalls (typically near critical damping), then keeps
        whichever candidate achieves the lower objective.
    initial:
        Optional (h, k) starting point.  Defaults to the closed-form RC
        optimum, which is exact at l = 0 and an excellent warm start
        elsewhere; inductance sweeps should pass the previous optimum.
    evaluator:
        Optional pre-warmed :class:`~repro.core.evaluate.StageEvaluator`
        for this exact (line, driver, f) configuration — the engine's
        ``BatchOptimizeJob`` passes one whose memo already holds the
        batch-evaluated seed.  Leave ``None`` for standalone calls.

    Returns
    -------
    RepeaterOptimum
        With a populated :attr:`~RepeaterOptimum.trace`.

    Raises
    ------
    OptimizationError
        If the requested solver(s) fail to converge.
    """
    if not 0.0 < f < 1.0:
        raise ParameterError(f"threshold fraction must be in (0, 1), got {f}")
    if initial is None:
        rc_opt = rc_optimum(line, driver)
        h0, k0 = rc_opt.h_opt, rc_opt.k_opt
    else:
        h0, k0 = initial
        if h0 <= 0.0 or k0 <= 0.0:
            raise ParameterError("initial (h, k) must be positive")

    if evaluator is None:
        evaluator = StageEvaluator(line, driver, f)
    trace = OptimizationTrace()

    if method is OptimizerMethod.NEWTON:
        return _newton_optimize(line, driver, f, h0, k0, tol=tol,
                                max_iterations=max_iterations,
                                evaluator=evaluator, trace=trace)
    if method is OptimizerMethod.DIRECT:
        return _direct_optimize(line, driver, f, h0, k0, tol=tol,
                                max_iterations=max_iterations,
                                evaluator=evaluator, trace=trace)

    # AUTO: paper's Newton first, robust fallback second.  The fallback
    # shares the evaluator (its simplex reuses Newton's memoized lanes)
    # and the trace, which records exactly one fallback event.
    newton_result: Optional[RepeaterOptimum] = None
    try:
        newton_result = _newton_optimize(line, driver, f, h0, k0, tol=tol,
                                         max_iterations=max_iterations,
                                         evaluator=evaluator, trace=trace)
    except OptimizationError as exc:
        trace.record_event("fallback", f"newton failed: {exc}")
    if newton_result is not None:
        return newton_result
    return _direct_optimize(line, driver, f, h0, k0, tol=tol,
                            max_iterations=max_iterations,
                            evaluator=evaluator, trace=trace)


class _NewtonLane:
    """Mutable per-lane state of the lockstep Newton driver."""

    __slots__ = ("index", "line", "driver", "h", "k", "tol",
                 "max_iterations", "evaluator", "trace", "g1", "g2", "tau",
                 "damping_code", "norm", "probes", "eps_h", "eps_k", "step",
                 "scale", "backtracks", "accept")

    def __init__(self, index, line, driver, h0, k0, tol, max_iterations,
                 evaluator, trace):
        self.index = index
        self.line = line
        self.driver = driver
        self.h = h0
        self.k = k0
        self.tol = tol
        self.max_iterations = max_iterations
        self.evaluator = evaluator
        self.trace = trace


def _newton_optimize_lockstep(lanes: List[_NewtonLane],
                              outcomes: List) -> None:
    """Run N independent Newton solves with pooled kernel batches.

    All lanes advance one iteration per round; every round pools the
    lanes' base/probe points — and then each backtracking wave's trial
    points — into single multi-configuration kernel batches via
    :func:`~repro.core.evaluate.prime_pairs`.  Because lane values are
    batch-size invariant and each lane's own evaluator replays its
    memoized points, every lane walks *exactly* the iterate sequence of
    a solo :func:`_newton_optimize` run: results, traces and failure
    modes are bitwise identical; only the pooling changes.

    Outcomes (a :class:`RepeaterOptimum` or the exception the solo run
    would have raised) are written into ``outcomes`` at each lane's
    ``index``.
    """
    # Seed evaluations: one pooled batch, then per-lane bookkeeping.
    prime_pairs([(lane.evaluator, [(lane.h, lane.k)]) for lane in lanes])
    active: List[_NewtonLane] = []
    for lane in lanes:
        try:
            g1, g2, tau, code = lane.evaluator.evaluate(lane.h, lane.k)
        except (DelaySolverError, ParameterError) as exc:
            outcomes[lane.index] = exc
            continue
        lane.g1, lane.g2, lane.tau, lane.damping_code = g1, g2, tau, code
        lane.norm = math.hypot(g1, g2)
        lane.trace.record_step(TraceStep(
            iteration=lane.trace.next_iteration, h=float(lane.h),
            k=float(lane.k), g1=g1, g2=g2, tau=tau,
            residual_norm=lane.norm, damping=damping_name(code),
            step_scale=None, backtracks=0, accepted_worse=False))
        active.append(lane)

    iteration = 0
    while active:
        iteration += 1
        still: List[_NewtonLane] = []
        for lane in active:
            if iteration > lane.max_iterations:
                outcomes[lane.index] = _fail(
                    f"Newton optimizer did not converge in "
                    f"{lane.max_iterations} iterations",
                    iteration=lane.max_iterations, norm=lane.norm,
                    trace=lane.trace)
            else:
                still.append(lane)
        active = still
        if not active:
            break

        # Probe wave: every lane's base + both FD probes, one batch.
        for lane in active:
            lane.eps_h = 1e-6 * lane.h
            lane.eps_k = 1e-6 * lane.k
            lane.probes = [(lane.h, lane.k),
                           (lane.h + lane.eps_h, lane.k),
                           (lane.h, lane.k + lane.eps_k)]
        prime_pairs([(lane.evaluator, lane.probes) for lane in active])
        stepped: List[_NewtonLane] = []
        for lane in active:
            try:
                _, probe_h, probe_k = lane.evaluator.evaluate_many(
                    lane.probes)
            except (DelaySolverError, ParameterError) as exc:
                outcomes[lane.index] = exc
                continue
            jac = np.array([
                [(probe_h[0] - lane.g1) / lane.eps_h,
                 (probe_k[0] - lane.g1) / lane.eps_k],
                [(probe_h[1] - lane.g2) / lane.eps_h,
                 (probe_k[1] - lane.g2) / lane.eps_k]])
            rhs = np.array([lane.g1, lane.g2])
            try:
                lane.step = np.linalg.solve(jac, rhs)
            except np.linalg.LinAlgError:
                outcomes[lane.index] = _fail(
                    f"singular Jacobian at iteration {iteration}",
                    iteration=iteration, norm=lane.norm, trace=lane.trace)
                continue
            if not np.all(np.isfinite(lane.step)):
                outcomes[lane.index] = _fail(
                    f"non-finite Newton step at iteration {iteration}",
                    iteration=iteration, norm=lane.norm, trace=lane.trace)
                continue
            lane.scale = 1.0
            lane.backtracks = 0
            stepped.append(lane)

        # Backtracking waves: pool each wave's positive trial points.
        pending = list(stepped)
        accepted: List[_NewtonLane] = []
        for _ in range(40):
            if not pending:
                break
            prime_pairs([
                (lane.evaluator,
                 [(lane.h - lane.scale * lane.step[0],
                   lane.k - lane.scale * lane.step[1])])
                for lane in pending
                if (lane.h - lane.scale * lane.step[0]) > 0.0
                and (lane.k - lane.scale * lane.step[1]) > 0.0])
            retrying: List[_NewtonLane] = []
            for lane in pending:
                h_new = lane.h - lane.scale * lane.step[0]
                k_new = lane.k - lane.scale * lane.step[1]
                if h_new > 0.0 and k_new > 0.0:
                    try:
                        g1n, g2n, taun, coden = lane.evaluator.evaluate(
                            h_new, k_new)
                    except (DelaySolverError, ParameterError):
                        lane.scale *= 0.5
                        lane.backtracks += 1
                        retrying.append(lane)
                        continue
                    norm_new = math.hypot(g1n, g2n)
                    if norm_new < lane.norm or lane.scale < 1e-3:
                        lane.accept = (h_new, k_new, g1n, g2n, taun,
                                       coden, norm_new)
                        accepted.append(lane)
                        continue
                lane.scale *= 0.5
                lane.backtracks += 1
                retrying.append(lane)
            pending = retrying
        for lane in pending:
            outcomes[lane.index] = _fail(
                f"Newton backtracking failed at iteration {iteration}",
                iteration=iteration, norm=lane.norm, trace=lane.trace)

        # Acceptance bookkeeping (identical to the solo loop).
        active = []
        for lane in accepted:
            h_new, k_new, g1n, g2n, taun, coden, norm_new = lane.accept
            accepted_worse = not norm_new < lane.norm
            if accepted_worse:
                lane.trace.record_event(
                    "accepted_worse",
                    f"iteration {iteration}: accepted residual "
                    f"{norm_new:.6g} >= {lane.norm:.6g} at step scale "
                    f"{lane.scale:.3g}")
            moved = max(abs(h_new - lane.h) / lane.h,
                        abs(k_new - lane.k) / lane.k)
            lane.h, lane.k = h_new, k_new
            lane.g1, lane.g2, lane.tau, lane.norm = g1n, g2n, taun, norm_new
            lane.damping_code = coden
            lane.trace.record_step(TraceStep(
                iteration=lane.trace.next_iteration, h=float(lane.h),
                k=float(lane.k), g1=g1n, g2=g2n, tau=taun,
                residual_norm=norm_new, damping=damping_name(coden),
                step_scale=lane.scale, backtracks=lane.backtracks,
                accepted_worse=accepted_worse))
            if moved < lane.tol:
                lane.trace.attach_counters(lane.evaluator)
                outcomes[lane.index] = RepeaterOptimum(
                    h_opt=lane.h, k_opt=lane.k, tau=lane.tau,
                    delay_per_length=lane.tau / lane.h,
                    damping=DAMPING_BY_CODE[lane.damping_code],
                    method=OptimizerMethod.NEWTON, iterations=iteration,
                    trace=lane.trace)
            else:
                active.append(lane)


def optimize_repeater_many(lines: Sequence[LineParams],
                           driver: DriverParams, f: float = 0.5, *,
                           method: OptimizerMethod = OptimizerMethod.AUTO,
                           initials: Optional[Sequence[
                               Optional[tuple]]] = None,
                           tol: float = 1e-9,
                           max_iterations: int = 200,
                           evaluators: Optional[Sequence[
                               StageEvaluator]] = None
                           ) -> List[Union[RepeaterOptimum, Exception]]:
    """N independent repeater optimizations with a lockstep Newton phase.

    The batch equivalent of calling :func:`optimize_repeater` once per
    line: per-lane results — optima, traces, convergence paths,
    exceptions — are bitwise identical to the solo calls, but all lanes'
    Newton inner loops advance together so each iteration's probe and
    backtracking evaluations pool into single multi-configuration kernel
    batches (see :func:`_newton_optimize_lockstep`).  Lanes that need
    the direct method (requested or AUTO fallback) finish individually
    on their own evaluator/trace, exactly like the solo AUTO path.

    Returns one entry per line: a :class:`RepeaterOptimum` on success,
    or the exception the solo call would have raised (not raised here —
    callers own per-lane fault handling).
    """
    n = len(lines)
    if not 0.0 < f < 1.0:
        return [ParameterError(f"threshold fraction must be in (0, 1), "
                               f"got {f}") for _ in range(n)]
    if evaluators is None:
        evaluators = [StageEvaluator(line, driver, f) for line in lines]
    outcomes: List[Union[RepeaterOptimum, Exception, None]] = [None] * n
    traces = [OptimizationTrace() for _ in range(n)]

    lanes: List[_NewtonLane] = []
    seeds: List[Optional[tuple]] = [None] * n
    for i, line in enumerate(lines):
        initial = initials[i] if initials is not None else None
        if initial is None:
            rc_opt = rc_optimum(line, driver)
            h0, k0 = rc_opt.h_opt, rc_opt.k_opt
        else:
            h0, k0 = initial
            if h0 <= 0.0 or k0 <= 0.0:
                outcomes[i] = ParameterError(
                    "initial (h, k) must be positive")
                continue
        seeds[i] = (h0, k0)
        if method is not OptimizerMethod.DIRECT:
            lanes.append(_NewtonLane(i, line, driver, h0, k0, tol,
                                     max_iterations, evaluators[i],
                                     traces[i]))

    if lanes:
        _newton_optimize_lockstep(lanes, outcomes)

    for i, line in enumerate(lines):
        if seeds[i] is None or isinstance(outcomes[i], RepeaterOptimum):
            continue
        h0, k0 = seeds[i]
        if method is OptimizerMethod.DIRECT:
            try:
                outcomes[i] = _direct_optimize(
                    line, driver, f, h0, k0, tol=tol,
                    max_iterations=max_iterations, evaluator=evaluators[i],
                    trace=traces[i])
            except Exception as exc:  # noqa: BLE001 — per-lane isolation
                outcomes[i] = exc
        elif method is OptimizerMethod.AUTO and \
                isinstance(outcomes[i], OptimizationError):
            traces[i].record_event("fallback",
                                   f"newton failed: {outcomes[i]}")
            try:
                outcomes[i] = _direct_optimize(
                    line, driver, f, h0, k0, tol=tol,
                    max_iterations=max_iterations, evaluator=evaluators[i],
                    trace=traces[i])
            except Exception as exc:  # noqa: BLE001 — per-lane isolation
                outcomes[i] = exc
    return outcomes
