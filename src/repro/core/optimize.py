"""Repeater-insertion optimizer for distributed RLC lines (paper Sec. 2.2).

A long line of length L is split into L/h buffered segments; the total
delay is (L/h) tau(h, k), so the optimizer minimizes the *delay per unit
length* tau/h over the segment length h and the repeater size k.  Setting
the gradient to zero gives d tau/d h = tau/h and d tau/d k = 0; inserting
these into the differentiated delay equation (Eq. 3 multiplied by
(s2 - s1)) yields the paper's stationarity residuals

  g1 = (1-f)(s2_h - s1_h) - s2_h e^{s1 tau} + s1_h e^{s2 tau}
       - s2 tau (s1_h + s1/h) e^{s1 tau} + s1 tau (s2_h + s2/h) e^{s2 tau}
  g2 = (1-f)(s2_k - s1_k) - s2_k e^{s1 tau} - s2 tau s1_k e^{s1 tau}
       + s1_k e^{s2 tau} + s1 tau s2_k e^{s2 tau}

(subscripts denote partial derivatives).  The paper drives (g1, g2) to zero
with a 2-D Newton method; we implement exactly that (analytic pole
derivatives, finite-difference outer Jacobian, damped steps) and add a
derivative-free direct minimization of tau/h as a fallback and as an
independent validator: the pole-derivative terms contain 1/sqrt(b1^2-4b2),
which blows up where the optimum rides close to critical damping — there
the direct method takes over automatically.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import DelaySolverError, OptimizationError, ParameterError
from .delay import threshold_delay
from .elmore import rc_optimum
from .moments import compute_moments
from .params import DriverParams, LineParams, Stage
from .poles import Damping, compute_poles
from .response import StepResponse


class OptimizerMethod(enum.Enum):
    """Which solver produced (or should produce) the optimum."""

    NEWTON = "newton"
    DIRECT = "direct"
    AUTO = "auto"


@dataclass(frozen=True)
class RepeaterOptimum:
    """Optimal repeater insertion for one (line, driver, f) configuration.

    Attributes
    ----------
    h_opt:
        Optimal segment length in metres.
    k_opt:
        Optimal repeater size (multiple of minimum size).
    tau:
        f*100% delay of one optimal segment in seconds.
    delay_per_length:
        tau / h_opt in s/m — the minimized objective.
    damping:
        Damping regime of the two-pole model at the optimum.
    method:
        Solver that produced the result (NEWTON or DIRECT).
    iterations:
        Outer iterations used by that solver.
    """

    h_opt: float
    k_opt: float
    tau: float
    delay_per_length: float
    damping: Damping
    method: OptimizerMethod
    iterations: int


def stage_delay_per_length(line: LineParams, driver: DriverParams,
                           h: float, k: float, f: float) -> float:
    """Objective tau(h, k)/h for given segment length and repeater size."""
    stage = Stage(line=line, driver=driver, h=h, k=k)
    return threshold_delay(stage, f, polish_with_newton=False).tau / h


def stationarity_residuals(line: LineParams, driver: DriverParams,
                           h: float, k: float, f: float
                           ) -> tuple[float, float, float]:
    """Evaluate the paper's residuals (g1, g2) and the delay tau at (h, k).

    The residuals are returned normalized by (s2 - s1) and
    nondimensionalized by h (g1) and k (g2).  The normalization matters:
    g1 and g2 come from differentiating Eq. 3 *multiplied by (s2 - s1)*, so
    for conjugate poles they are purely imaginary while for real poles they
    are purely real.  Dividing by (s2 - s1) — itself imaginary for
    conjugate poles and real otherwise — recovers a real residual
    d(phi)/d{h,k} in every damping regime without moving its zero (phi is
    the real left-hand side of Eq. 3; the identity dF/dx = (s2-s1) dphi/dx
    holds on the solution manifold phi(tau) = 0).
    """
    stage = Stage(line=line, driver=driver, h=h, k=k)
    moments = compute_moments(stage)
    poles = compute_poles(moments)
    response = StepResponse.from_poles(poles)
    tau = threshold_delay(response, f, polish_with_newton=False).tau

    s1, s2 = poles.s1, poles.s2
    e1 = np.exp(s1 * tau)
    e2 = np.exp(s2 * tau)
    one_minus_f = 1.0 - f

    g1 = (one_minus_f * (poles.ds2_dh - poles.ds1_dh)
          - poles.ds2_dh * e1 + poles.ds1_dh * e2
          - s2 * tau * (poles.ds1_dh + s1 / h) * e1
          + s1 * tau * (poles.ds2_dh + s2 / h) * e2)
    g2 = (one_minus_f * (poles.ds2_dk - poles.ds1_dk)
          - poles.ds2_dk * e1 - s2 * tau * poles.ds1_dk * e1
          + poles.ds1_dk * e2 + s1 * tau * poles.ds2_dk * e2)

    pole_gap = s2 - s1
    g1_real = complex(g1 / pole_gap).real
    g2_real = complex(g2 / pole_gap).real
    return g1_real * h, g2_real * k, tau


def _newton_optimize(line: LineParams, driver: DriverParams, f: float,
                     h0: float, k0: float, *, tol: float,
                     max_iterations: int) -> RepeaterOptimum:
    """Damped 2-D Newton on (g1, g2) with a finite-difference Jacobian."""
    h, k = h0, k0
    g1, g2, tau = stationarity_residuals(line, driver, h, k, f)
    norm = math.hypot(g1, g2)

    for iteration in range(1, max_iterations + 1):
        # Finite-difference Jacobian of the scaled residual vector.
        eps_h = 1e-6 * h
        eps_k = 1e-6 * k
        g1_h, g2_h, _ = stationarity_residuals(line, driver, h + eps_h, k, f)
        g1_k, g2_k, _ = stationarity_residuals(line, driver, h, k + eps_k, f)
        jac = np.array([[(g1_h - g1) / eps_h, (g1_k - g1) / eps_k],
                        [(g2_h - g2) / eps_h, (g2_k - g2) / eps_k]])
        rhs = np.array([g1, g2])
        try:
            step = np.linalg.solve(jac, rhs)
        except np.linalg.LinAlgError as exc:
            raise OptimizationError(
                f"singular Jacobian at iteration {iteration}",
                iterations=iteration, residual=norm) from exc
        if not np.all(np.isfinite(step)):
            raise OptimizationError(
                f"non-finite Newton step at iteration {iteration}",
                iterations=iteration, residual=norm)

        # Damped update with positivity backtracking.
        scale = 1.0
        for _ in range(40):
            h_new = h - scale * step[0]
            k_new = k - scale * step[1]
            if h_new > 0.0 and k_new > 0.0:
                try:
                    g1_new, g2_new, tau_new = stationarity_residuals(
                        line, driver, h_new, k_new, f)
                except (DelaySolverError, ParameterError):
                    scale *= 0.5
                    continue
                norm_new = math.hypot(g1_new, g2_new)
                if norm_new < norm or scale < 1e-3:
                    break
            scale *= 0.5
        else:
            raise OptimizationError(
                f"Newton backtracking failed at iteration {iteration}",
                iterations=iteration, residual=norm)

        moved = max(abs(h_new - h) / h, abs(k_new - k) / k)
        h, k, g1, g2, tau, norm = h_new, k_new, g1_new, g2_new, tau_new, norm_new
        if moved < tol:
            stage = Stage(line=line, driver=driver, h=h, k=k)
            damping = compute_poles(compute_moments(stage)).damping
            return RepeaterOptimum(h_opt=h, k_opt=k, tau=tau,
                                   delay_per_length=tau / h,
                                   damping=damping,
                                   method=OptimizerMethod.NEWTON,
                                   iterations=iteration)

    raise OptimizationError(
        f"Newton optimizer did not converge in {max_iterations} iterations",
        iterations=max_iterations, residual=norm)


def _direct_optimize(line: LineParams, driver: DriverParams, f: float,
                     h0: float, k0: float, *, tol: float,
                     max_iterations: int) -> RepeaterOptimum:
    """Nelder-Mead on log(h), log(k) — derivative-free and damping-agnostic."""
    from scipy.optimize import minimize

    def objective(x: np.ndarray) -> float:
        h = h0 * math.exp(x[0])
        k = k0 * math.exp(x[1])
        try:
            return stage_delay_per_length(line, driver, h, k, f)
        except (DelaySolverError, ParameterError):
            return float("inf")

    result = minimize(objective, x0=np.zeros(2), method="Nelder-Mead",
                      options={"xatol": tol * 0.1, "fatol": 0.0,
                               "maxiter": max_iterations,
                               "maxfev": 4 * max_iterations})
    if not result.success and result.status != 2:
        # status 2 = max iterations; anything else is a genuine failure.
        raise OptimizationError(
            f"direct optimizer failed: {result.message}",
            iterations=int(result.get("nit", 0)))
    h = h0 * math.exp(result.x[0])
    k = k0 * math.exp(result.x[1])
    stage = Stage(line=line, driver=driver, h=h, k=k)
    tau = threshold_delay(stage, f, polish_with_newton=False).tau
    damping = compute_poles(compute_moments(stage)).damping
    return RepeaterOptimum(h_opt=h, k_opt=k, tau=tau,
                           delay_per_length=tau / h, damping=damping,
                           method=OptimizerMethod.DIRECT,
                           iterations=int(result.nit))


def optimize_repeater(line: LineParams, driver: DriverParams,
                      f: float = 0.5, *,
                      method: OptimizerMethod = OptimizerMethod.AUTO,
                      initial: Optional[tuple[float, float]] = None,
                      tol: float = 1e-9,
                      max_iterations: int = 200) -> RepeaterOptimum:
    """Find (h_optRLC, k_optRLC) minimizing the f*100% delay per unit length.

    Parameters
    ----------
    line, driver:
        Interconnect and minimum-repeater parameters (SI units).
    f:
        Delay threshold fraction; the paper's plots use f = 0.5.
    method:
        NEWTON runs only the paper's 2-D Newton solve; DIRECT runs only the
        Nelder-Mead fallback; AUTO (default) tries Newton first and falls
        back when it stalls (typically near critical damping), then keeps
        whichever candidate achieves the lower objective.
    initial:
        Optional (h, k) starting point.  Defaults to the closed-form RC
        optimum, which is exact at l = 0 and an excellent warm start
        elsewhere; inductance sweeps should pass the previous optimum.

    Returns
    -------
    RepeaterOptimum

    Raises
    ------
    OptimizationError
        If the requested solver(s) fail to converge.
    """
    if not 0.0 < f < 1.0:
        raise ParameterError(f"threshold fraction must be in (0, 1), got {f}")
    if initial is None:
        rc_opt = rc_optimum(line, driver)
        h0, k0 = rc_opt.h_opt, rc_opt.k_opt
    else:
        h0, k0 = initial
        if h0 <= 0.0 or k0 <= 0.0:
            raise ParameterError("initial (h, k) must be positive")

    if method is OptimizerMethod.NEWTON:
        return _newton_optimize(line, driver, f, h0, k0, tol=tol,
                                max_iterations=max_iterations)
    if method is OptimizerMethod.DIRECT:
        return _direct_optimize(line, driver, f, h0, k0, tol=tol,
                                max_iterations=max_iterations)

    # AUTO: paper's Newton first, robust fallback second.
    newton_result: Optional[RepeaterOptimum] = None
    try:
        newton_result = _newton_optimize(line, driver, f, h0, k0, tol=tol,
                                         max_iterations=max_iterations)
    except OptimizationError:
        pass
    if newton_result is not None:
        return newton_result
    return _direct_optimize(line, driver, f, h0, k0, tol=tol,
                            max_iterations=max_iterations)
