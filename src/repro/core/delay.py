"""Threshold-crossing delay of the two-pole step response (paper Eq. 3).

The f*100% delay tau solves

    1 - f - s2/(s2-s1) exp(s1 tau) + s1/(s2-s1) exp(s2 tau) = 0

i.e. v(tau) = f with v the unit-step response.  The paper solves this with
Newton-Raphson and reports convergence in under four iterations; for an
underdamped response however v(t) crosses a high threshold several times,
so a robust production implementation must return the *first* crossing.
This module therefore brackets the first upward crossing on a sample grid
matched to the pole time scales, refines it with Brent's method, and then
(optionally) polishes with Newton exactly as in the paper.  The pure-Newton
path is also exposed for the convergence study reproduced in the benchmark
suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from ..errors import DelaySolverError, ParameterError
from .kernels import (GRID_PER_TIMESCALE, MAX_HORIZON_FACTOR,
                      ResponseBatch, threshold_delay_v)
from .moments import Moments
from .params import Stage
from .poles import Damping
from .response import StepResponse
from . import moments as _moments_mod

#: Samples per characteristic time when hunting for the first crossing.
#: (Aliases of the kernel-layer constants — the scalar reference path and
#: the batched solver must hunt on identical grids.)
_GRID_PER_TIMESCALE = GRID_PER_TIMESCALE

#: Hard cap on the bracket search horizon, in units of the slow time scale.
_MAX_HORIZON_FACTOR = MAX_HORIZON_FACTOR


@dataclass(frozen=True)
class DelayResult:
    """Outcome of a threshold-delay computation.

    Attributes
    ----------
    tau:
        First time at which the response reaches f (seconds).
    threshold:
        The threshold fraction f that was solved for.
    damping:
        Damping regime of the underlying two-pole system.
    newton_iterations:
        Newton iterations used in the polish step (0 when Brent alone
        already met the tolerance).
    """

    tau: float
    threshold: float
    damping: Damping
    newton_iterations: int


def _characteristic_times(response: StepResponse) -> tuple[float, float]:
    """Return (fast, slow) time scales of the pole pair."""
    s1, s2 = response.s1, response.s2
    omega_n = math.sqrt(abs(s1 * s2))
    fast = 1.0 / omega_n
    slow = 1.0 / response.decay_rate
    return fast, slow


def _bracket_first_crossing(response: StepResponse, f: float
                            ) -> tuple[float, float]:
    """Find (t_lo, t_hi) with v(t_lo) < f <= v(t_hi) at the first crossing."""
    fast, slow = _characteristic_times(response)
    dt = fast / _GRID_PER_TIMESCALE
    horizon = _MAX_HORIZON_FACTOR * max(fast, slow)
    chunk = 512
    t_start = 0.0
    while t_start < horizon:
        t = t_start + dt * np.arange(1, chunk + 1)
        v = response(t)
        above = np.nonzero(v >= f)[0]
        if above.size:
            i = int(above[0])
            t_lo = t[i - 1] if i > 0 else t_start
            return float(t_lo), float(t[i])
        t_start = float(t[-1])
        # Far beyond the slow time scale the response is monotone within
        # (1 - f); stretch the step to reach the asymptote faster.
        if t_start > 10.0 * slow:
            dt *= 2.0
    raise DelaySolverError(
        f"step response never reached threshold {f} within t < {horizon:.3e}s "
        f"(final sampled value {float(response(t_start)):.6f})")


def _brent(response: StepResponse, f: float, t_lo: float, t_hi: float,
           rtol: float) -> float:
    """Refine the bracketed crossing with Brent's method."""
    if response(t_lo) >= f:          # crossing exactly at grid point
        return t_lo
    xtol = max(rtol, 4.0 * np.finfo(float).eps) * max(t_hi, 1e-30)
    return float(brentq(lambda t: response(t) - f, t_lo, t_hi,
                        xtol=xtol, rtol=max(rtol, 4.0 * np.finfo(float).eps)))


def newton_delay(response: StepResponse, f: float, tau0: float, *,
                 rtol: float = 1e-12, max_iterations: int = 60
                 ) -> tuple[float, int]:
    """Paper's Newton-Raphson iteration on Eq. 3 from an initial guess.

    Returns
    -------
    (tau, iterations)

    Raises
    ------
    DelaySolverError
        If the iteration stalls on a zero derivative or fails to converge
        within ``max_iterations``.
    """
    tau = tau0
    for iteration in range(1, max_iterations + 1):
        residual = response(tau) - f
        slope = response.derivative(tau)
        if slope == 0.0:
            raise DelaySolverError(
                "Newton iteration hit a stationary point of the response",
                iterations=iteration, residual=abs(residual))
        step = residual / slope
        tau_next = tau - step
        if tau_next <= 0.0:
            tau_next = 0.5 * tau
        if abs(tau_next - tau) <= rtol * abs(tau_next):
            return tau_next, iteration
        tau = tau_next
    raise DelaySolverError(
        f"Newton delay solve did not converge in {max_iterations} iterations",
        iterations=max_iterations, residual=abs(response(tau) - f))


def threshold_delay(source, f: float = 0.5, *, rtol: float = 1e-12,
                    polish_with_newton: bool = True) -> DelayResult:
    """Compute the f*100% delay of a stage, moments or response.

    This is a batch-of-1 shim over the vectorized solver
    (:func:`repro.core.kernels.threshold_delay_v`): the bracketing and the
    masked Newton/bisection refinement run through the same kernels as a
    full sweep, so a scalar call and a batch lane agree bitwise.  The
    optional polish step still runs the module-level :func:`newton_delay`
    (the paper's iteration) and is accepted only when it stays on the
    first-crossing bracket, exactly as the legacy Brent path did.

    Parameters
    ----------
    source:
        A :class:`~repro.core.params.Stage`, a :class:`Moments` pair or a
        :class:`StepResponse`.
    f:
        Threshold fraction in [0, 1), e.g. 0.5 for the 50% delay.
    rtol:
        Relative tolerance on tau.
    polish_with_newton:
        When true (default), polish the kernel solution with the paper's
        Newton iteration and report the iteration count.

    Returns
    -------
    DelayResult
        The *first* time the response reaches f — this is the physically
        meaningful arrival time even when an underdamped waveform later
        rings back below the threshold.
    """
    if not 0.0 <= f < 1.0:
        raise ParameterError(f"threshold fraction must be in [0, 1), got {f}")
    response = _as_response(source)
    if f == 0.0:
        return DelayResult(tau=0.0, threshold=0.0, damping=response.damping,
                           newton_iterations=0)
    batch = ResponseBatch.from_s1s2(response.s1, response.s2)
    solved = threshold_delay_v(batch, f, rtol=rtol)
    tau = float(solved.tau[0])
    t_lo = float(solved.bracket_lo[0])
    t_hi = float(solved.bracket_hi[0])
    iterations = 0
    if polish_with_newton:
        try:
            tau_newton, iterations = newton_delay(response, f, tau, rtol=rtol)
        except DelaySolverError:
            # Keep the kernel solution; the bracket guarantees its validity.
            tau_newton = tau
        # Accept the polish only if it stayed on the same crossing.
        if t_lo * (1.0 - 1e-9) <= tau_newton <= t_hi * (1.0 + 1e-9):
            tau = tau_newton
        else:
            iterations = 0
    return DelayResult(tau=tau, threshold=f, damping=response.damping,
                       newton_iterations=iterations)


def brent_threshold_delay(source, f: float = 0.5, *, rtol: float = 1e-12,
                          polish_with_newton: bool = True) -> DelayResult:
    """Reference scalar solver: grid bracket + Brent + guarded Newton polish.

    This is the pre-kernel implementation, retained verbatim as the
    independent per-point oracle for the scalar-vs-vector equivalence
    property tests and the solver-ablation benchmarks.  Production call
    sites should use :func:`threshold_delay` (scalar) or
    :func:`repro.core.kernels.threshold_delay_v` (batched).
    """
    if not 0.0 <= f < 1.0:
        raise ParameterError(f"threshold fraction must be in [0, 1), got {f}")
    response = _as_response(source)
    if f == 0.0:
        return DelayResult(tau=0.0, threshold=0.0, damping=response.damping,
                           newton_iterations=0)
    t_lo, t_hi = _bracket_first_crossing(response, f)
    tau = _brent(response, f, t_lo, t_hi, rtol)
    iterations = 0
    if polish_with_newton:
        try:
            tau_newton, iterations = newton_delay(response, f, tau, rtol=rtol)
        except DelaySolverError:
            # Keep the Brent solution; the bracket guarantees its validity.
            tau_newton = tau
        # Accept the polish only if it stayed on the same crossing.
        if t_lo * (1.0 - 1e-9) <= tau_newton <= t_hi * (1.0 + 1e-9):
            tau = tau_newton
        else:
            iterations = 0
    return DelayResult(tau=tau, threshold=f, damping=response.damping,
                       newton_iterations=iterations)


def stage_delay(stage: Stage, f: float = 0.5, **kwargs) -> DelayResult:
    """Convenience wrapper: threshold delay of a driver-line-load stage."""
    return threshold_delay(stage, f, **kwargs)


def _as_response(source) -> StepResponse:
    if isinstance(source, StepResponse):
        return source
    if isinstance(source, Moments):
        return StepResponse.from_moments(source)
    if isinstance(source, Stage):
        return StepResponse.from_moments(_moments_mod.compute_moments(source))
    raise TypeError(
        f"expected Stage, Moments or StepResponse, got {type(source).__name__}")
