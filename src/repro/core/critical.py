"""Critical line inductance l_crit (paper Eq. 4).

For fixed segment length h and driver size k the two-pole system is
critically damped when b1^2 - 4 b2 = 0.  Since b1 does not depend on the
line inductance l while b2 is affine in it,

    b2 = l (c h^2/2 + C_L h) + b2_rest,

the critical inductance has the closed form

    l_crit = (b1^2/4 - b2_rest) / (c h^2/2 + C_L h)

with b2_rest collecting every l-independent term of b2.  The system is
overdamped for l < l_crit and underdamped for l > l_crit.  Figure 4 of the
paper evaluates l_crit at the RLC-optimal (h, k) and shows it is of the
same order as practical line inductances — which is precisely why the
Kahng-Muddu closed-form delay (valid only far from critical damping) cannot
drive the optimization.
"""

from __future__ import annotations

from .kernels import critical_inductance_terms
from .params import Stage


def critical_inductance(stage: Stage) -> float:
    """Line inductance per unit length that makes the stage critically damped.

    The stage's own ``line.l`` is ignored: the returned value is the
    inductance that *would* make this (h, k) configuration critically
    damped.  The result can be negative when the configuration is
    underdamped even with zero inductance (does not occur for physical
    driver/line parameters, but the formula is returned unclamped so that
    callers can detect it).
    """
    driver = stage.sized_driver
    return critical_inductance_terms(
        stage.line.r, stage.line.c, driver.r_series, driver.c_parasitic,
        driver.c_load, stage.h)


def damping_margin(stage: Stage) -> float:
    """Ratio l / l_crit for the stage's actual inductance.

    Values below one mean overdamped, above one underdamped.  Useful as a
    quick signal-integrity screen before running the full response.
    """
    l_crit = critical_inductance(stage)
    if l_crit <= 0.0:
        return float("inf")
    return stage.line.l / l_crit
