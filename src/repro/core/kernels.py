"""Array-first numeric kernels: the batched moments→poles→response→delay
pipeline.

Every figure in the paper is a sweep and the verification matrix evaluates
dozens of cases, so the natural unit of evaluation is a *batch* of stages,
not a single point.  This module is the vectorized core the rest of the
library routes through:

* :class:`StageBatch` — N driver-line-load stages as parallel arrays,
* :func:`compute_moments_v` — Padé moments b1, b2 + sizing partials,
* :func:`poles_v` — pole pairs with vectorized damping classification,
* :func:`response_v` / :class:`ResponseBatch` — two-pole step responses
  evaluated on shared or per-lane time grids,
* :func:`threshold_delay_v` — the f*100% first-crossing delay of all N
  lanes at once: a shared (per-lane scaled) sample grid brackets the
  first upward crossing, then a masked Newton/bisection hybrid with
  per-lane convergence tracking refines it — no per-point
  ``scipy.brentq`` calls,
* :func:`critical_inductance_v` — Eq. 4's l_crit for a whole sweep.

The scalar entry points (:func:`repro.core.moments.compute_moments`,
:func:`repro.core.delay.threshold_delay`,
:meth:`repro.core.response.StepResponse.__call__`) are thin shims over
these kernels, sharing the *same* elementwise expression graph, so a
batch lane is bitwise identical to the corresponding scalar evaluation —
batch size and lane order never change results.

Numeric contract: every lane is computed independently (no cross-lane
reductions feed back into a lane's value), which is what makes the
permutation- and singleton-invariance properties in
``tests/test_kernels_properties.py`` exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from ..errors import DelaySolverError, ParameterError
from ..faults import hooks as _faults
from .moments import Moments
from .params import DriverParams, LineParams, Stage
from .poles import CRITICAL_RTOL, Damping
from . import moments as _moments_mod

#: Samples per characteristic time when hunting for the first crossing.
GRID_PER_TIMESCALE = 64

#: Hard cap on the bracket search horizon, in units of the slow time scale.
MAX_HORIZON_FACTOR = 400.0

#: Grid points evaluated per bracketing round (per active lane).
BRACKET_CHUNK = 512

#: Poles closer (relatively) than this are treated as coincident.
COINCIDENT_RTOL = 1e-9

#: Integer damping codes used by the batched classification.
DAMPING_OVERDAMPED = 0
DAMPING_CRITICAL = 1
DAMPING_UNDERDAMPED = 2

#: Code -> :class:`~repro.core.poles.Damping` lookup (index = code).
DAMPING_BY_CODE: Tuple[Damping, ...] = (
    Damping.OVERDAMPED, Damping.CRITICALLY_DAMPED, Damping.UNDERDAMPED)


def _as_lane_array(name: str, values: Any) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim > 1:
        raise ParameterError(
            f"batch field {name!r} must be scalar or 1-D, got shape "
            f"{arr.shape}")
    return arr


# ----------------------------------------------------------------------
# Batch containers.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageBatch:
    """N driver-line-load stages as parallel 1-D arrays (SI units).

    The fields mirror :class:`~repro.core.params.LineParams` (``r``,
    ``l``, ``c``), :class:`~repro.core.params.DriverParams` (``r_s``,
    ``c_p``, ``c_0``) and :class:`~repro.core.params.Stage` (``h``,
    ``k``); validation matches their ``__post_init__`` checks but names
    the offending lane.
    """

    r: np.ndarray
    l: np.ndarray
    c: np.ndarray
    r_s: np.ndarray
    c_p: np.ndarray
    c_0: np.ndarray
    h: np.ndarray
    k: np.ndarray

    _FIELDS = ("r", "l", "c", "r_s", "c_p", "c_0", "h", "k")

    def __post_init__(self) -> None:
        arrays = [getattr(self, name) for name in self._FIELDS]
        sizes = {arr.shape for arr in arrays}
        if len(sizes) != 1:
            raise ParameterError(
                f"StageBatch fields must share one shape, got {sizes}")
        if arrays[0].size == 0:
            raise ParameterError("StageBatch must hold at least one stage")
        for name, positive in (("r", True), ("l", False), ("c", True),
                               ("r_s", True), ("c_p", False),
                               ("c_0", True), ("h", True), ("k", True)):
            arr = getattr(self, name)
            bad = (arr <= 0.0) if positive else (arr < 0.0)
            if np.any(bad):
                lane = int(np.nonzero(bad)[0][0])
                bound = "positive" if positive else ">= 0"
                raise ParameterError(
                    f"stage batch lane {lane}: {name} must be {bound}, "
                    f"got {arr[lane]}")

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(cls, *, r, l, c, r_s, c_p, c_0, h, k) -> "StageBatch":
        """Build a batch from arrays/scalars, broadcasting to one length."""
        fields = {"r": r, "l": l, "c": c, "r_s": r_s, "c_p": c_p,
                  "c_0": c_0, "h": h, "k": k}
        arrays = {name: _as_lane_array(name, value)
                  for name, value in fields.items()}
        broadcast = np.broadcast_arrays(*arrays.values())
        return cls(**{name: np.ascontiguousarray(arr, dtype=float)
                      for name, arr in zip(arrays, broadcast)})

    @classmethod
    def from_stages(cls, stages: Sequence[Stage]) -> "StageBatch":
        """Pack a sequence of :class:`Stage` objects into one batch."""
        stages = list(stages)
        if not stages:
            raise ParameterError("StageBatch must hold at least one stage")
        return cls.from_arrays(
            r=[s.line.r for s in stages], l=[s.line.l for s in stages],
            c=[s.line.c for s in stages],
            r_s=[s.driver.r_s for s in stages],
            c_p=[s.driver.c_p for s in stages],
            c_0=[s.driver.c_0 for s in stages],
            h=[s.h for s in stages], k=[s.k for s in stages])

    @classmethod
    def from_inductance_sweep(cls, line_zero_l: LineParams,
                              driver: DriverParams, l_values, *,
                              h, k) -> "StageBatch":
        """One fixed (h, k) sizing swept across an inductance grid."""
        return cls.from_arrays(
            r=line_zero_l.r, l=l_values, c=line_zero_l.c,
            r_s=driver.r_s, c_p=driver.c_p, c_0=driver.c_0, h=h, k=k)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.h.size)

    def stage(self, index: int) -> Stage:
        """Materialize lane ``index`` back into a scalar :class:`Stage`."""
        return Stage(
            line=LineParams(r=float(self.r[index]), l=float(self.l[index]),
                            c=float(self.c[index])),
            driver=DriverParams(r_s=float(self.r_s[index]),
                                c_p=float(self.c_p[index]),
                                c_0=float(self.c_0[index])),
            h=float(self.h[index]), k=float(self.k[index]))


@dataclass(frozen=True)
class MomentsBatch:
    """Padé moments b1, b2 and sizing partials for N lanes."""

    b1: np.ndarray
    b2: np.ndarray
    db1_dh: np.ndarray
    db1_dk: np.ndarray
    db2_dh: np.ndarray
    db2_dk: np.ndarray

    @property
    def discriminant(self) -> np.ndarray:
        """b1^2 - 4 b2 per lane: sign selects over- vs under-damped."""
        return self.b1 * self.b1 - 4.0 * self.b2

    def __len__(self) -> int:
        return int(self.b1.size)

    def moments(self, index: int) -> Moments:
        """Materialize lane ``index`` back into a scalar :class:`Moments`."""
        return Moments(
            b1=float(self.b1[index]), b2=float(self.b2[index]),
            db1_dh=float(self.db1_dh[index]),
            db1_dk=float(self.db1_dk[index]),
            db2_dh=float(self.db2_dh[index]),
            db2_dk=float(self.db2_dk[index]))


def compute_moments_v(stages: StageBatch) -> MomentsBatch:
    """Batched Padé moments — the array form of ``compute_moments``.

    Shares :func:`repro.core.moments.moments_terms` with the scalar path,
    so lane ``i`` is bitwise identical to
    ``compute_moments(stages.stage(i))``.  The helper is resolved through
    the moments module at call time so a (test-injected) perturbation of
    the formula reaches the batched path too.
    """
    b1, b2, db1_dh, db1_dk, db2_dh, db2_dk = _moments_mod.moments_terms(
        stages.r, stages.l, stages.c, stages.r_s, stages.c_p, stages.c_0,
        stages.h, stages.k)
    return MomentsBatch(b1=b1, b2=b2, db1_dh=db1_dh, db1_dk=db1_dk,
                        db2_dh=db2_dh, db2_dk=db2_dk)


# ----------------------------------------------------------------------
# Damping classification and poles.
# ----------------------------------------------------------------------
def classify_damping_v(b1, b2, *, rtol: float = CRITICAL_RTOL) -> np.ndarray:
    """Vectorized damping classification; returns int8 codes.

    Mirrors :func:`repro.core.poles.classify_damping`: the discriminant
    is compared against ``rtol * b1**2`` so the classification is scale
    invariant, and the critical band takes precedence over the sign.
    """
    b1 = np.asarray(b1, dtype=float)
    b2 = np.asarray(b2, dtype=float)
    disc = b1 * b1 - 4.0 * b2
    codes = np.where(disc > 0.0, DAMPING_OVERDAMPED, DAMPING_UNDERDAMPED)
    codes = np.where(np.abs(disc) <= rtol * b1 * b1, DAMPING_CRITICAL,
                     codes)
    return codes.astype(np.int8)


@dataclass(frozen=True)
class PoleBatch:
    """Pole pairs of N two-pole systems.

    ``s1`` carries the ``+sqrt`` branch and ``s2`` the ``-sqrt`` branch,
    as in :class:`~repro.core.poles.PolePair`.  ``damping`` holds the
    moments-based classification codes (see :data:`DAMPING_BY_CODE`).
    """

    s1: np.ndarray
    s2: np.ndarray
    damping: np.ndarray

    def __len__(self) -> int:
        return int(self.s1.size)


def poles_v(moments: MomentsBatch, *,
            critical_rtol: float = CRITICAL_RTOL) -> PoleBatch:
    """Batched pole pairs with vectorized damping classification.

    Raises :class:`~repro.errors.ParameterError` naming the first lane
    whose moments are outside the two-pole model's domain (b1, b2 > 0).
    """
    b1 = np.asarray(moments.b1, dtype=float)
    b2 = np.asarray(moments.b2, dtype=float)
    for name, arr in (("b2", b2), ("b1", b1)):
        bad = arr <= 0.0
        if np.any(bad):
            lane = int(np.nonzero(bad)[0][0])
            raise ParameterError(
                f"two-pole model requires {name} > 0, got {arr[lane]} "
                f"(batch lane {lane})")
    disc = b1 * b1 - 4.0 * b2
    # The discriminant is exactly real, so take the (correctly rounded)
    # real sqrt of |disc| and place it on the real or imaginary axis —
    # bitwise identical to cmath.sqrt on the scalar path, which
    # np.sqrt(complex) is not guaranteed to be.  Likewise divide by
    # 2 b2 per component: complex-by-real division in numpy can differ
    # from CPython's in the last ulp.
    sqrt_abs = np.sqrt(np.abs(disc))
    overdamped = disc >= 0.0
    sqrt_re = np.where(overdamped, sqrt_abs, 0.0)
    sqrt_im = np.where(overdamped, 0.0, sqrt_abs)
    two_b2 = 2.0 * b2
    s1 = (-b1 + sqrt_re) / two_b2 + 1j * (sqrt_im / two_b2)
    s2 = (-b1 - sqrt_re) / two_b2 + 1j * (-sqrt_im / two_b2)
    return PoleBatch(s1=s1, s2=s2,
                     damping=classify_damping_v(b1, b2, rtol=critical_rtol))


# ----------------------------------------------------------------------
# Step-response evaluation.
# ----------------------------------------------------------------------
def two_pole_values(s1, s2, t):
    """Unit-step response v(t) of two-pole systems, elementwise.

    ``s1``/``s2`` and ``t`` broadcast against each other, so the same
    kernel serves a scalar :class:`~repro.core.response.StepResponse`
    (0-d poles, any-shape t) and a batch ((n, 1) poles against a shared
    (T,) grid or per-lane (n, T)/(n,) times).  Coincident pole pairs use
    the degenerate critically-damped form.
    """
    s1 = np.asarray(s1, dtype=complex)
    s2 = np.asarray(s2, dtype=complex)
    t = np.asarray(t, dtype=float)
    coincident = np.abs(s1 - s2) <= COINCIDENT_RTOL * np.abs(s1)
    if not np.any(coincident):
        denom = s2 - s1
        v = (1.0
             - (s2 / denom) * np.exp(s1 * t)
             + (s1 / denom) * np.exp(s2 * t))
        return np.real(v)
    denom = np.where(coincident, 1.0, s2 - s1)
    v = (1.0
         - (s2 / denom) * np.exp(s1 * t)
         + (s1 / denom) * np.exp(s2 * t))
    p = 0.5 * (s1 + s2)
    vc = 1.0 - (1.0 - p * t) * np.exp(p * t)
    return np.real(np.where(coincident, vc, v))


def two_pole_derivative(s1, s2, t):
    """dv/dt of two-pole step responses, elementwise (see
    :func:`two_pole_values` for the broadcasting contract)."""
    s1 = np.asarray(s1, dtype=complex)
    s2 = np.asarray(s2, dtype=complex)
    t = np.asarray(t, dtype=float)
    coincident = np.abs(s1 - s2) <= COINCIDENT_RTOL * np.abs(s1)
    if not np.any(coincident):
        denom = s2 - s1
        s1s2 = s1 * s2
        dv = (s1s2 / denom) * (np.exp(s2 * t) - np.exp(s1 * t))
        return np.real(dv)
    denom = np.where(coincident, 1.0, s2 - s1)
    s1s2 = s1 * s2
    dv = (s1s2 / denom) * (np.exp(s2 * t) - np.exp(s1 * t))
    p = 0.5 * (s1 + s2)
    dvc = (p * p) * t * np.exp(p * t)
    return np.real(np.where(coincident, dvc, dv))


@dataclass(frozen=True)
class ResponseBatch:
    """Normalized step responses of N two-pole systems.

    ``damping`` is the pole-derived classification (the moments are
    reconstructed from s1, s2 exactly as
    :attr:`repro.core.response.StepResponse.damping` does), so a batch
    lane reports the same regime as the scalar response it mirrors.
    """

    s1: np.ndarray
    s2: np.ndarray
    damping: np.ndarray

    @classmethod
    def from_s1s2(cls, s1, s2) -> "ResponseBatch":
        s1 = np.atleast_1d(np.asarray(s1, dtype=complex))
        s2 = np.atleast_1d(np.asarray(s2, dtype=complex))
        b2 = (1.0 / (s1 * s2)).real
        b1 = (-(s1 + s2) * b2).real
        return cls(s1=s1, s2=s2, damping=classify_damping_v(b1, b2))

    @classmethod
    def from_poles(cls, poles: PoleBatch) -> "ResponseBatch":
        return cls.from_s1s2(poles.s1, poles.s2)

    @classmethod
    def from_moments(cls, moments: MomentsBatch) -> "ResponseBatch":
        return cls.from_poles(poles_v(moments))

    @classmethod
    def from_stages(cls, stages: StageBatch) -> "ResponseBatch":
        return cls.from_moments(compute_moments_v(stages))

    @classmethod
    def from_responses(cls, responses: Sequence[Any]) -> "ResponseBatch":
        """Pack objects exposing ``s1``/``s2`` (e.g. StepResponse)."""
        return cls.from_s1s2([r.s1 for r in responses],
                             [r.s2 for r in responses])

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.s1.size)

    def values(self, t_grid) -> np.ndarray:
        """v(t) on a shared (T,) grid or per-lane (n, T) grids -> (n, T)."""
        t = np.asarray(t_grid, dtype=float)
        return two_pole_values(self.s1[:, None], self.s2[:, None], t)

    def values_at(self, t) -> np.ndarray:
        """v(t_i) at one time per lane, (n,) -> (n,)."""
        return two_pole_values(self.s1, self.s2, np.asarray(t, dtype=float))

    def derivative_at(self, t) -> np.ndarray:
        """dv/dt at one time per lane, (n,) -> (n,)."""
        return two_pole_derivative(self.s1, self.s2,
                                   np.asarray(t, dtype=float))


def as_response_batch(source) -> ResponseBatch:
    """Coerce any batched (or sequence-of-scalar) source to responses.

    Accepts :class:`ResponseBatch`, :class:`PoleBatch`,
    :class:`MomentsBatch`, :class:`StageBatch`, or a sequence of
    :class:`Stage` / :class:`Moments` / response-like (``s1``/``s2``)
    objects.
    """
    if isinstance(source, ResponseBatch):
        return source
    if isinstance(source, PoleBatch):
        return ResponseBatch.from_poles(source)
    if isinstance(source, MomentsBatch):
        return ResponseBatch.from_moments(source)
    if isinstance(source, StageBatch):
        return ResponseBatch.from_stages(source)
    if isinstance(source, (list, tuple)):
        if not source:
            raise ParameterError("batch source must be non-empty")
        first = source[0]
        if isinstance(first, Stage):
            return ResponseBatch.from_stages(StageBatch.from_stages(source))
        if isinstance(first, Moments):
            return ResponseBatch.from_moments(MomentsBatch(
                b1=np.array([m.b1 for m in source], dtype=float),
                b2=np.array([m.b2 for m in source], dtype=float),
                db1_dh=np.array([m.db1_dh for m in source], dtype=float),
                db1_dk=np.array([m.db1_dk for m in source], dtype=float),
                db2_dh=np.array([m.db2_dh for m in source], dtype=float),
                db2_dk=np.array([m.db2_dk for m in source], dtype=float)))
        if hasattr(first, "s1") and hasattr(first, "s2"):
            return ResponseBatch.from_responses(source)
    raise TypeError(
        "expected StageBatch, MomentsBatch, PoleBatch, ResponseBatch or a "
        f"sequence of Stage/Moments/StepResponse, got "
        f"{type(source).__name__}")


def response_v(source, t_grid) -> np.ndarray:
    """Evaluate all lanes of ``source`` on ``t_grid`` -> (n, T) array."""
    return as_response_batch(source).values(t_grid)


# ----------------------------------------------------------------------
# Batched first-crossing threshold delay.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DelayBatchResult:
    """Outcome of a batched threshold-delay solve.

    Attributes
    ----------
    tau:
        First time each lane's response reaches its threshold (s).
    threshold:
        Per-lane threshold fractions that were solved for.
    damping:
        Pole-derived damping codes (see :data:`DAMPING_BY_CODE`).
    newton_iterations:
        Accepted Newton steps of the masked hybrid per lane (bisection
        fallbacks are not counted, matching the paper's iteration
        metric).
    bracket_lo, bracket_hi:
        The first-crossing bracket each refined root lies in (0 for
        f = 0 lanes).  The scalar shim uses these to guard its optional
        Newton polish, exactly as the legacy Brent path did.
    """

    tau: np.ndarray
    threshold: np.ndarray
    damping: np.ndarray
    newton_iterations: np.ndarray
    bracket_lo: np.ndarray
    bracket_hi: np.ndarray

    def __len__(self) -> int:
        return int(self.tau.size)

    def damping_values(self) -> List[Damping]:
        """Per-lane :class:`~repro.core.poles.Damping` members."""
        return [DAMPING_BY_CODE[int(code)] for code in self.damping]


def _bracket_first_crossing_v(resp: ResponseBatch, lanes: np.ndarray,
                              f: np.ndarray
                              ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized first-crossing bracketing on per-lane scaled grids.

    Mirrors the legacy scalar hunt exactly — per-lane step
    ``fast / GRID_PER_TIMESCALE``, 512-sample chunks, step doubling far
    past the slow time scale — but advances every active lane per round,
    so lane ``i`` samples the identical grid the scalar path would.
    Returns ``(t_lo, t_hi)`` aligned with ``lanes``.
    """
    s1 = resp.s1[lanes]
    s2 = resp.s2[lanes]
    omega_n = np.sqrt(np.abs(s1 * s2))
    fast = 1.0 / omega_n
    decay = np.minimum(np.abs(s1.real), np.abs(s2.real))
    slow = 1.0 / decay
    dt = fast / GRID_PER_TIMESCALE
    horizon = MAX_HORIZON_FACTOR * np.maximum(fast, slow)

    m = lanes.size
    t_lo = np.zeros(m)
    t_hi = np.zeros(m)
    t_start = np.zeros(m)
    v_last = np.zeros(m)
    fb = f[lanes]
    steps = np.arange(1, BRACKET_CHUNK + 1, dtype=float)
    active = np.arange(m)
    while active.size:
        t = t_start[active][:, None] + dt[active][:, None] * steps
        v = two_pole_values(s1[active][:, None], s2[active][:, None], t)
        above = v >= fb[active][:, None]
        hit = above.any(axis=1)
        if hit.any():
            rows = np.nonzero(hit)[0]
            cols = above[rows].argmax(axis=1)
            found = active[rows]
            t_hi[found] = t[rows, cols]
            t_lo[found] = np.where(cols > 0,
                                   t[rows, np.maximum(cols - 1, 0)],
                                   t_start[found])
        miss = np.nonzero(~hit)[0]
        adv = active[miss]
        t_start[adv] = t[miss, -1]
        v_last[adv] = v[miss, -1]
        # Far beyond the slow time scale the response is monotone within
        # (1 - f); stretch the step to reach the asymptote faster.
        dt[adv] = np.where(t_start[adv] > 10.0 * slow[adv],
                           dt[adv] * 2.0, dt[adv])
        alive = t_start[adv] < horizon[adv]
        if not alive.all():
            dead = adv[~alive]
            first = int(dead[0])
            error = DelaySolverError(
                f"step response never reached its threshold in "
                f"{dead.size} of {m} batch lanes (first: lane "
                f"{int(lanes[first])}, f = {fb[first]:g}, "
                f"t < {horizon[first]:.3e}s, final sampled value "
                f"{v_last[first]:.6f})")
            error.lanes = [int(lanes[i]) for i in dead]
            raise error
        active = adv[alive]
    return t_lo, t_hi


def _refine_first_crossing_v(resp: ResponseBatch, lanes: np.ndarray,
                             f: np.ndarray, t_lo: np.ndarray,
                             t_hi: np.ndarray, rtol: float,
                             max_iterations: int = 120
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Masked Newton/bisection hybrid inside the first-crossing brackets.

    Each lane keeps the invariant ``v(lo) < f <= v(hi)``; a Newton step
    is accepted only when it lands strictly inside the lane's current
    bracket, otherwise the lane bisects.  Lanes freeze as soon as their
    step satisfies the relative tolerance (or the bracket collapses to
    the Brent-style ``xtol``), so converged lanes cost nothing while
    stragglers finish.  Returns ``(tau, accepted_newton_steps)`` aligned
    with ``lanes``.
    """
    s1 = resp.s1[lanes]
    s2 = resp.s2[lanes]
    fb = f[lanes]
    lo = t_lo.copy()
    hi = t_hi.copy()
    m = lanes.size
    tau = np.empty(m)
    iterations = np.zeros(m, dtype=np.int64)

    v_lo = two_pole_values(s1, s2, lo)
    v_hi = two_pole_values(s1, s2, hi)
    # Crossing exactly at the lower grid point (legacy Brent-path quirk).
    at_lo = v_lo >= fb
    tau[at_lo] = lo[at_lo]

    with np.errstate(divide="ignore", invalid="ignore"):
        secant = lo + (fb - v_lo) * (hi - lo) / (v_hi - v_lo)
    inside = np.isfinite(secant) & (secant > lo) & (secant < hi)
    start = np.where(inside, secant, 0.5 * (lo + hi))
    active = np.nonzero(~at_lo)[0]
    tau[active] = start[active]

    xtol = np.maximum(rtol, 4.0 * np.finfo(float).eps) \
        * np.maximum(hi, 1e-30)
    for _ in range(max_iterations):
        if active.size == 0:
            break
        a = active
        ta = tau[a]
        va = two_pole_values(s1[a], s2[a], ta)
        residual = va - fb[a]
        reached = residual >= 0.0
        hi[a] = np.where(reached, ta, hi[a])
        lo[a] = np.where(reached, lo[a], ta)
        slope = two_pole_derivative(s1[a], s2[a], ta)
        with np.errstate(divide="ignore", invalid="ignore"):
            newton = ta - residual / slope
        take = np.isfinite(newton) & (newton > lo[a]) & (newton < hi[a])
        nxt = np.where(take, newton, 0.5 * (lo[a] + hi[a]))
        exact = residual == 0.0
        nxt = np.where(exact, ta, nxt)
        iterations[a] += (take & ~exact).astype(np.int64)
        done = exact | (np.abs(nxt - ta) <= rtol * np.abs(nxt)) \
            | ((hi[a] - lo[a]) <= xtol[a])
        tau[a] = nxt
        active = a[~done]
    else:
        if active.size:
            error = DelaySolverError(
                f"batched delay refinement did not converge in "
                f"{max_iterations} iterations for {active.size} lanes "
                f"(first: lane {int(lanes[active[0]])})",
                iterations=max_iterations)
            error.lanes = [int(lanes[i]) for i in active]
            raise error
    return tau, iterations


def threshold_delay_v(source, f=0.5, *, rtol: float = 1e-12
                      ) -> DelayBatchResult:
    """Batched f*100% first-crossing delay of N two-pole responses.

    Parameters
    ----------
    source:
        Anything :func:`as_response_batch` accepts — a
        :class:`StageBatch`, :class:`MomentsBatch`, :class:`PoleBatch`,
        :class:`ResponseBatch` or a sequence of scalar stage/moments/
        response objects.
    f:
        Threshold fraction(s) in [0, 1) — a scalar applied to every
        lane, or one value per lane.
    rtol:
        Relative tolerance on each lane's tau.

    Returns
    -------
    DelayBatchResult
        Per-lane first-crossing times, damping codes, accepted-Newton
        iteration counts and the brackets the roots were refined in.
        Lane values are independent of batch size and order.
    """
    resp = as_response_batch(source)
    n = len(resp)
    f_arr = np.asarray(f, dtype=float)
    if f_arr.ndim == 0:
        f_arr = np.full(n, float(f_arr))
    if f_arr.shape != (n,):
        raise ParameterError(
            f"threshold array shape {f_arr.shape} does not match batch "
            f"size {n}")
    bad = (f_arr < 0.0) | (f_arr >= 1.0)
    if np.any(bad):
        lane = int(np.nonzero(bad)[0][0])
        raise ParameterError(
            f"threshold fraction must be in [0, 1), got {f_arr[lane]} "
            f"(batch lane {lane})")

    tau = np.zeros(n)
    iterations = np.zeros(n, dtype=np.int64)
    bracket_lo = np.zeros(n)
    bracket_hi = np.zeros(n)
    lanes = np.nonzero(f_arr > 0.0)[0]
    if lanes.size:
        t_lo, t_hi = _bracket_first_crossing_v(resp, lanes, f_arr)
        tau_l, iter_l = _refine_first_crossing_v(resp, lanes, f_arr,
                                                 t_lo, t_hi, rtol)
        tau[lanes] = tau_l
        iterations[lanes] = iter_l
        bracket_lo[lanes] = t_lo
        bracket_hi[lanes] = t_hi
    if _faults.ACTIVE is not None:
        # Named fault site: one lane's solve silently produced NaN (the
        # shape a masked-solver regression would take).  Consumers must
        # fail that lane alone, never serialize the NaN.
        tau = _faults.nan_lanes("kernels.threshold_delay.nan_lane", tau)
    return DelayBatchResult(tau=tau, threshold=f_arr, damping=resp.damping,
                            newton_iterations=iterations,
                            bracket_lo=bracket_lo, bracket_hi=bracket_hi)


# ----------------------------------------------------------------------
# Critical inductance (Eq. 4), batched.
# ----------------------------------------------------------------------
def critical_inductance_terms(r, c, r_series, c_parasitic, c_load, h):
    """Eq. 4's l_crit from lumped element values; elementwise-polymorphic.

    Works identically on plain floats (the scalar
    :func:`repro.core.critical.critical_inductance` path) and on
    parallel arrays (:func:`critical_inductance_v`), so the two paths
    cannot drift apart.
    """
    rc = r * c
    h2 = h * h
    b1 = (r_series * (c_parasitic + c_load)
          + 0.5 * rc * h2
          + r_series * c * h
          + c_load * r * h)
    b2_rest = (rc * rc * h2 * h2 / 24.0
               + 0.5 * r_series * (c_parasitic + c_load) * rc * h2
               + (r_series * c * h + c_load * r * h) * rc * h2 / 6.0
               + r_series * c_parasitic * c_load * r * h)
    l_coefficient = 0.5 * c * h2 + c_load * h
    return (0.25 * b1 * b1 - b2_rest) / l_coefficient


def critical_inductance_v(stages: StageBatch) -> np.ndarray:
    """l_crit of every lane (the stages' own ``l`` fields are ignored)."""
    return critical_inductance_terms(
        stages.r, stages.c, stages.r_s / stages.k, stages.c_p * stages.k,
        stages.c_0 * stages.k, stages.h)
