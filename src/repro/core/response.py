"""Time-domain step response of the two-pole model.

For distinct poles the unit-step response (paper, Sec. 2.1) is

    v(t) = 1 - s2/(s2 - s1) exp(s1 t) + s1/(s2 - s1) exp(s2 t)

and for a coincident (critically damped) pole p it degenerates to

    v(t) = 1 - (1 - p t) exp(p t).

The evaluation is done in complex arithmetic and is exactly real for
conjugate pole pairs; tiny imaginary round-off is discarded.  The class also
measures overshoot and undershoot, the quantities the paper links to
reliability and logic failures (Sec. 3.3).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass

import numpy as np

from .kernels import COINCIDENT_RTOL, two_pole_derivative, two_pole_values
from .moments import Moments
from .poles import Damping, PolePair, classify_damping, compute_poles

#: Poles closer (relatively) than this are treated as coincident.
#: (Alias of the kernel-layer constant; evaluation happens in
#: :mod:`repro.core.kernels` so scalar and batched paths agree bitwise.)
_COINCIDENT_RTOL = COINCIDENT_RTOL


@dataclass(frozen=True)
class StepResponse:
    """Normalized (V0 = 1) step response of a two-pole system."""

    s1: complex
    s2: complex

    @classmethod
    def from_moments(cls, moments: Moments) -> "StepResponse":
        """Build the response from Padé moments b1, b2."""
        poles = compute_poles(moments)
        return cls(s1=poles.s1, s2=poles.s2)

    @classmethod
    def from_poles(cls, poles: PolePair) -> "StepResponse":
        """Build the response from a precomputed pole pair."""
        return cls(s1=poles.s1, s2=poles.s2)

    @property
    def _coincident(self) -> bool:
        return abs(self.s1 - self.s2) <= _COINCIDENT_RTOL * abs(self.s1)

    @property
    def damping(self) -> Damping:
        """Damping regime implied by the pole pair."""
        # b1 = -(s1+s2) b2, b2 = 1/(s1 s2); classification only needs signs.
        b2 = (1.0 / (self.s1 * self.s2)).real
        b1 = (-(self.s1 + self.s2) * b2).real
        return classify_damping(b1, b2)

    @property
    def damped_frequency(self) -> float:
        """Oscillation (damped) angular frequency; zero unless underdamped."""
        return abs(self.s1.imag)

    @property
    def decay_rate(self) -> float:
        """Slowest decay rate min |Re(s)| governing the settling tail."""
        return min(abs(self.s1.real), abs(self.s2.real))

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def __call__(self, t):
        """Evaluate v(t); accepts a scalar or a numpy array, t >= 0.

        Thin shim over :func:`repro.core.kernels.two_pole_values` — a
        batch-of-1 lane of the vectorized kernel, so scalar and batched
        evaluation are bitwise identical.
        """
        t_arr = np.asarray(t, dtype=float)
        v = two_pole_values(self.s1, self.s2, t_arr)
        if np.isscalar(t) or t_arr.ndim == 0:
            return float(v)
        return v

    def derivative(self, t):
        """Evaluate dv/dt; accepts a scalar or a numpy array.

        Shim over :func:`repro.core.kernels.two_pole_derivative` (see
        :meth:`__call__`).
        """
        t_arr = np.asarray(t, dtype=float)
        dv = two_pole_derivative(self.s1, self.s2, t_arr)
        if np.isscalar(t) or t_arr.ndim == 0:
            return float(dv)
        return dv

    # ------------------------------------------------------------------
    # Waveform-quality metrics (Sec. 3.3).
    # ------------------------------------------------------------------
    def peak_time(self) -> float:
        """Time of the first response extremum after the initial rise.

        For an underdamped system this is pi/omega_d (first overshoot peak);
        for critically/overdamped systems the response is monotonic and
        ``math.inf`` is returned.
        """
        if self.damping is not Damping.UNDERDAMPED:
            return math.inf
        return math.pi / self.damped_frequency

    def overshoot(self) -> float:
        """Peak overshoot max(v) - 1, or 0 for a monotonic response.

        For conjugate poles sigma +- j omega the closed form is
        exp(sigma pi / omega) (note sigma < 0).
        """
        if self.damping is not Damping.UNDERDAMPED:
            return 0.0
        sigma = self.s1.real
        omega = self.damped_frequency
        return math.exp(sigma * math.pi / omega)

    def undershoot(self) -> float:
        """Depth of the first undershoot below the final value, >= 0.

        The first minimum after the overshoot peak occurs at 2 pi/omega_d
        and lies exp(2 sigma pi / omega) below the final value.  This is the
        dip that can falsely switch a downstream gate (Sec. 3.3.1).
        """
        if self.damping is not Damping.UNDERDAMPED:
            return 0.0
        sigma = self.s1.real
        omega = self.damped_frequency
        return math.exp(2.0 * sigma * math.pi / omega)

    def settling_time(self, tolerance: float = 0.02) -> float:
        """Conservative time for |v - 1| to stay below ``tolerance``.

        Uses the exact residual envelope: for distinct poles
        |v(t) - 1| <= A exp(-decay t) with A = (|s1| + |s2|)/|s1 - s2|
        (which equals 1/sqrt(1 - zeta^2) for a conjugate pair), and for a
        coincident pole |v(t) - 1| = (1 + |p| t) exp(-|p| t).
        """
        if not 0.0 < tolerance < 1.0:
            raise ValueError("tolerance must be in (0, 1)")
        if self._coincident:
            # Solve (1 + x) exp(-x) = tolerance.
            x = max(1.0, 2.0 * math.log(1.0 / tolerance))
            for _ in range(60):
                value = (1.0 + x) * math.exp(-x) - tolerance
                slope = -x * math.exp(-x)
                step = value / slope
                x -= step
                if abs(step) < 1e-12 * x:
                    break
            return x / abs(self.s1.real)
        amplitude = (abs(self.s1) + abs(self.s2)) / abs(self.s1 - self.s2)
        return math.log(max(amplitude, 1.0) / tolerance) / self.decay_rate

    def rise_time(self, fractions: tuple[float, float] = (0.1, 0.9)
                  ) -> float:
        """Time between the first crossings of the two threshold fractions.

        The 10-90% rise time by default — the signal-slew metric the
        paper links to inductance (faster edges excite more ringing).
        Computed with the same first-crossing solver as the delay.
        """
        from .delay import threshold_delay
        f_lo, f_hi = fractions
        if not 0.0 <= f_lo < f_hi < 1.0:
            raise ValueError(
                f"fractions must satisfy 0 <= lo < hi < 1, got {fractions}")
        t_lo = threshold_delay(self, f_lo, polish_with_newton=False).tau
        t_hi = threshold_delay(self, f_hi, polish_with_newton=False).tau
        return t_hi - t_lo

    def sample(self, t_end: float, num: int = 1000) -> tuple[np.ndarray, np.ndarray]:
        """Return (t, v) arrays of the response on [0, t_end]."""
        t = np.linspace(0.0, t_end, num)
        return t, self(t)


def canonical_response(damping_ratio: float, omega_n: float) -> StepResponse:
    """Build a StepResponse from (zeta, omega_n) — used by the Fig. 2 study.

    The corresponding moments are b1 = 2 zeta / omega_n, b2 = 1/omega_n^2.
    """
    if damping_ratio <= 0.0 or omega_n <= 0.0:
        raise ValueError("damping ratio and natural frequency must be positive")
    zeta, wn = damping_ratio, omega_n
    disc = complex(zeta * zeta - 1.0)
    root = cmath.sqrt(disc)
    s1 = wn * (-zeta + root)
    s2 = wn * (-zeta - root)
    return StepResponse(s1=s1, s2=s2)
