"""Robust repeater insertion under inductance uncertainty (minimax).

Sec. 3.2 of the paper observes that the effective l cannot be targeted,
and prices one specific hedge: sizing at the Elmore optimum.  The natural
completion is the *minimax* design — choose (h, k) minimizing the worst
delay per unit length over the whole plausible inductance interval:

    minimize_{h,k}  max_{l in [l_min, l_max]}  tau(h, k, l) / h.

Because tau is monotone increasing in l at fixed (h, k) (b2 is affine and
increasing in l while b1 is l-independent; see the test suite), the inner
maximum is attained at l_max, so the minimax design equals the nominal
optimum at l_max.  What the robust framing adds is the *regret* analysis:
how much that hedge costs when the inductance actually lands lower, and
how it compares to the RC-blind and mid-point sizings.  This module
computes the minimax optimum, verifies the monotonicity assumption on a
grid (falling back to an explicit grid-minimax if it ever failed), and
reports the worst-case regret of any candidate sizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ParameterError
from .delay import threshold_delay
from .evaluate import delay_per_length_grid
from .optimize import RepeaterOptimum, optimize_repeater
from .params import DriverParams, LineParams, Stage


@dataclass(frozen=True)
class RobustOptimum:
    """Minimax repeater sizing over an inductance interval."""

    h_opt: float
    k_opt: float
    l_min: float
    l_max: float
    worst_delay_per_length: float      #: the minimax objective value
    worst_case_l: float                #: arg max of the inner problem
    nominal_at_lmax: RepeaterOptimum   #: the anchoring nominal optimum

    def delay_per_length_at(self, line_zero_l: LineParams,
                            driver: DriverParams, l: float,
                            f: float = 0.5) -> float:
        """Objective of this sizing at a specific inductance."""
        stage = Stage(line=line_zero_l.with_inductance(l), driver=driver,
                      h=self.h_opt, k=self.k_opt)
        return threshold_delay(stage, f, polish_with_newton=False).tau \
            / self.h_opt


def worst_case_delay_per_length(line_zero_l: LineParams,
                                driver: DriverParams, h: float, k: float,
                                l_grid: Sequence[float], f: float = 0.5
                                ) -> tuple[float, float]:
    """(max objective, argmax l) of a fixed sizing over an l grid.

    The grid is evaluated as one kernel batch
    (:func:`repro.core.evaluate.delay_per_length_grid`); each lane is
    bitwise identical to the scalar per-point solve this used to run, so
    the (max, argmax) pair is unchanged (first strict maximum wins).
    """
    values = delay_per_length_grid(line_zero_l, driver, l_grid, h, k, f)
    worst = -1.0
    worst_l = float(l_grid[0])
    for i, l in enumerate(l_grid):
        value = values[i]
        if value > worst:
            worst = value
            worst_l = float(l)
    return worst, worst_l


def optimize_robust(line_zero_l: LineParams, driver: DriverParams, *,
                    l_min: float, l_max: float, f: float = 0.5,
                    grid_points: int = 7) -> RobustOptimum:
    """Minimax sizing over l in [l_min, l_max].

    Exploits the monotonicity of tau in l: the minimax design is the
    nominal optimum at l_max.  The monotonicity is *checked* on a grid
    for the returned sizing; if it ever failed (it does not for physical
    parameters), the reported worst case would simply move to the true
    grid argmax, keeping the result honest.
    """
    if l_min < 0.0 or l_max <= l_min:
        raise ParameterError(
            f"need 0 <= l_min < l_max, got [{l_min}, {l_max}]")
    nominal = optimize_repeater(line_zero_l.with_inductance(l_max), driver,
                                f)
    grid = np.linspace(l_min, l_max, grid_points)
    worst, worst_l = worst_case_delay_per_length(
        line_zero_l, driver, nominal.h_opt, nominal.k_opt, grid, f)
    return RobustOptimum(h_opt=nominal.h_opt, k_opt=nominal.k_opt,
                         l_min=l_min, l_max=l_max,
                         worst_delay_per_length=worst, worst_case_l=worst_l,
                         nominal_at_lmax=nominal)


@dataclass(frozen=True)
class RegretRow:
    """Worst-case performance of one candidate sizing over the interval."""

    label: str
    h: float
    k: float
    worst_delay_per_length: float
    worst_regret: float       #: max over l of (candidate / best-at-l) - 1


def regret_analysis(line_zero_l: LineParams, driver: DriverParams, *,
                    l_min: float, l_max: float, f: float = 0.5,
                    grid_points: int = 7) -> list[RegretRow]:
    """Compare sizings: RC-blind, nominal at l_min/mid/l_max (= minimax).

    For each candidate, the *regret* at l is its objective divided by the
    true optimum at that l; the worst regret over the interval is the
    price of committing to that sizing under uncertainty.
    """
    from .elmore import rc_optimum

    grid = np.linspace(l_min, l_max, grid_points)
    best_at = {}
    warm = None
    for l in grid:
        optimum = optimize_repeater(line_zero_l.with_inductance(float(l)),
                                    driver, f, initial=warm)
        warm = (optimum.h_opt, optimum.k_opt)
        best_at[float(l)] = optimum.delay_per_length

    rc = rc_optimum(line_zero_l, driver)
    candidates = [("rc-blind", rc.h_opt, rc.k_opt)]
    for label, l_design in (("nominal@l_min", l_min),
                            ("nominal@mid", 0.5 * (l_min + l_max)),
                            ("minimax (=nominal@l_max)", l_max)):
        optimum = optimize_repeater(
            line_zero_l.with_inductance(l_design), driver, f)
        candidates.append((label, optimum.h_opt, optimum.k_opt))

    rows = []
    for label, h, k in candidates:
        # One kernel batch per candidate; lanes match the scalar
        # per-point evaluations bitwise.
        values = delay_per_length_grid(line_zero_l, driver, grid, h, k, f)
        worst_value = -1.0
        worst_regret = -1.0
        for i, l in enumerate(grid):
            value = values[i]
            worst_value = max(worst_value, value)
            worst_regret = max(worst_regret,
                               value / best_at[float(l)] - 1.0)
        rows.append(RegretRow(label=label, h=h, k=k,
                              worst_delay_per_length=worst_value,
                              worst_regret=worst_regret))
    return rows
