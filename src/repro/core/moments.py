"""Second-order Padé moments of the driver-interconnect-load stage.

The paper (following Kahng & Muddu [23]) approximates the exact transfer
function (Eq. 1) by the two-pole form

    H(s) ~= 1 / (1 + s b1 + s^2 b2)                                 (Eq. 2)

with

    b1 = R_S (C_P + C_L) + r c h^2 / 2 + R_S c h + C_L r h
    b2 = l c h^2 / 2 + r^2 c^2 h^4 / 24 + R_S (C_P + C_L) r c h^2 / 2
         + (R_S c h + C_L r h) r c h^2 / 6 + C_L l h + R_S C_P C_L r h

For the repeater-insertion optimizer the paper additionally needs the
partial derivatives of b1 and b2 with respect to the segment length ``h``
and the repeater size ``k`` (with R_S = r_s/k, C_P = c_p k, C_L = c_0 k).
These derivatives are computed here in closed form; the test suite checks
them against central finite differences.
"""

from __future__ import annotations

from dataclasses import dataclass

from .params import Stage


@dataclass(frozen=True)
class Moments:
    """Padé moments b1, b2 of a stage and their h/k partial derivatives.

    ``b1`` has units of seconds and equals the Elmore delay of the stage;
    ``b2`` has units of seconds squared and carries the entire inductance
    dependence of the two-pole model.
    """

    b1: float
    b2: float
    db1_dh: float
    db1_dk: float
    db2_dh: float
    db2_dk: float

    @property
    def discriminant(self) -> float:
        """b1^2 - 4 b2: sign selects over- (>0) vs under-damped (<0)."""
        return self.b1 * self.b1 - 4.0 * self.b2


def moments_terms(r, l, c, r_s, c_p, c_0, h, k):
    """Evaluate (b1, b2, db1_dh, db1_dk, db2_dh, db2_dk) elementwise.

    Every operation is elementwise ``+ - * /`` (integer powers are spelled
    as explicit products), so the same expression graph serves plain
    floats (:func:`compute_moments`) and parallel numpy arrays
    (:func:`repro.core.kernels.compute_moments_v`) with bitwise-identical
    results — the scalar API and a batch lane cannot drift apart.
    """
    # b1 = r_s (c_p + c_0) + r c h^2/2 + (r_s c / k) h + c_0 r k h
    b1 = (r_s * (c_p + c_0)
          + 0.5 * r * c * h * h
          + r_s * c * h / k
          + c_0 * r * h * k)

    # b2 = l c h^2/2 + r^2 c^2 h^4/24 + r_s (c_p + c_0) r c h^2/2
    #      + (r_s c h/k + c_0 r h k) r c h^2/6 + c_0 k l h + r_s c_p c_0 k r h
    rc = r * c
    h2 = h * h
    b2 = (0.5 * l * c * h * h
          + rc * rc * (h2 * h2) / 24.0
          + 0.5 * r_s * (c_p + c_0) * rc * h * h
          + (r_s * c / k + c_0 * r * k) * rc * (h2 * h) / 6.0
          + c_0 * k * l * h
          + r_s * c_p * c_0 * k * r * h)

    db1_dh = rc * h + r_s * c / k + c_0 * r * k
    db1_dk = -r_s * c * h / (k * k) + c_0 * r * h

    db2_dh = (l * c * h
              + rc * rc * (h2 * h) / 6.0
              + r_s * (c_p + c_0) * rc * h
              + (r_s * c / k + c_0 * r * k) * rc * h * h / 2.0
              + c_0 * k * l
              + r_s * c_p * c_0 * k * r)
    db2_dk = ((-r_s * c / (k * k) + c_0 * r) * rc * (h2 * h) / 6.0
              + c_0 * l * h
              + r_s * c_p * c_0 * r * h)
    return b1, b2, db1_dh, db1_dk, db2_dh, db2_dk


def compute_moments(stage: Stage) -> Moments:
    """Evaluate b1, b2 and their partial derivatives for a stage.

    Parameters
    ----------
    stage:
        Driver-interconnect-load configuration (SI units).

    Returns
    -------
    Moments
        b1 (s), b2 (s^2) and the four partials w.r.t. h (m) and k
        (dimensionless size).
    """
    b1, b2, db1_dh, db1_dk, db2_dh, db2_dk = moments_terms(
        stage.line.r, stage.line.l, stage.line.c,
        stage.driver.r_s, stage.driver.c_p, stage.driver.c_0,
        stage.h, stage.k)
    return Moments(b1=b1, b2=b2, db1_dh=db1_dh, db1_dk=db1_dk,
                   db2_dh=db2_dh, db2_dk=db2_dk)


def moments_from_lumped(*, r_series: float, c_parasitic: float,
                        c_load: float, r: float, l: float, c: float,
                        h: float) -> tuple[float, float]:
    """Evaluate (b1, b2) from explicit lumped driver values.

    This variant does not assume the ``r_s/k`` / ``c_p k`` / ``c_0 k``
    sizing law, so it can describe a stage whose load is *not* an identical
    repeater (e.g. a fixed receiver capacitance).  It returns only the
    moments, not the sizing derivatives.
    """
    rs, cp, cl = r_series, c_parasitic, c_load
    rc = r * c
    b1 = rs * (cp + cl) + 0.5 * rc * h * h + rs * c * h + cl * r * h
    b2 = (0.5 * l * c * h * h
          + rc * rc * h ** 4 / 24.0
          + 0.5 * rs * (cp + cl) * rc * h * h
          + (rs * c * h + cl * r * h) * rc * h * h / 6.0
          + cl * l * h
          + rs * cp * cl * r * h)
    return b1, b2
