"""Core analysis and optimization of distributed RLC interconnects.

This package implements the paper's primary contribution:

* :mod:`~repro.core.params` — stage parameter containers,
* :mod:`~repro.core.moments` — second-order Padé moments b1, b2,
* :mod:`~repro.core.poles` — pole pair and sizing derivatives,
* :mod:`~repro.core.response` — two-pole step response and SI metrics,
* :mod:`~repro.core.delay` — threshold-crossing delay solver (Eq. 3),
* :mod:`~repro.core.kernels` — array-first batched kernels: the
  vectorized moments→poles→response→delay pipeline,
* :mod:`~repro.core.critical` — critical inductance l_crit (Eq. 4),
* :mod:`~repro.core.elmore` — RC/Elmore baselines and closed-form optima,
* :mod:`~repro.core.abcd`, :mod:`~repro.core.transfer` — exact H(s) (Eq. 1),
* :mod:`~repro.core.evaluate` — kernel-backed stage evaluation: the
  memoizing :class:`~repro.core.evaluate.StageEvaluator`, batched
  stationarity residuals, and optimizer traces,
* :mod:`~repro.core.optimize` — repeater-insertion optimizer (Eqs. 7-8),
* :mod:`~repro.core.sweep` — inductance sweeps powering Figs. 4-8.
"""

from .critical import critical_inductance, damping_margin
from .delay import (DelayResult, brent_threshold_delay, newton_delay,
                    stage_delay, threshold_delay)
from .kernels import (DAMPING_BY_CODE, DelayBatchResult, MomentsBatch,
                      PoleBatch, ResponseBatch, StageBatch,
                      classify_damping_v, compute_moments_v,
                      critical_inductance_v, poles_v, response_v,
                      threshold_delay_v, two_pole_derivative,
                      two_pole_values)
from .elmore import (RCOptimum, driver_from_rc_optimum, elmore_stage_delay,
                     elmore_total_delay, rc_optimum)
from .evaluate import (OptimizationTrace, ScalarSemantics, StageEvaluator,
                       TraceEvent, TraceStep, delay_per_length_grid,
                       prime_evaluators, stationarity_residuals_v)
from .line_theory import (LineRegime, attenuation, characteristic_impedance,
                          classify_regime, critical_length_window,
                          lc_transition_frequency, phase_velocity,
                          propagation_constant)
from .staging import StagingPlan, plan_staging
from .wire_sizing import (WireSizingResult, line_from_geometry,
                          optimize_wire_width)
from .moments import Moments, compute_moments, moments_from_lumped
from .optimize import (OptimizerMethod, RepeaterOptimum, optimize_repeater,
                       stage_delay_per_length, stationarity_residuals)
from .params import DriverParams, LineParams, SizedDriver, Stage
from .poles import Damping, PolePair, classify_damping, compute_poles
from .response import StepResponse, canonical_response
from .sensitivity import DelaySensitivities, delay_sensitivities
from .sweep import InductanceSweep, single_optimum, sweep_inductance
from .tree import ROOT, RCTree
from .transfer import (exact_transfer, exact_transfer_via_abcd,
                       pade_transfer, transfer_error_at)

__all__ = [
    "critical_inductance", "damping_margin",
    "DelayResult", "brent_threshold_delay", "newton_delay", "stage_delay",
    "threshold_delay",
    "DAMPING_BY_CODE", "DelayBatchResult", "MomentsBatch", "PoleBatch",
    "ResponseBatch", "StageBatch", "classify_damping_v",
    "compute_moments_v", "critical_inductance_v", "poles_v", "response_v",
    "threshold_delay_v", "two_pole_derivative", "two_pole_values",
    "RCOptimum", "driver_from_rc_optimum", "elmore_stage_delay",
    "elmore_total_delay", "rc_optimum",
    "OptimizationTrace", "ScalarSemantics", "StageEvaluator", "TraceEvent",
    "TraceStep", "delay_per_length_grid", "prime_evaluators",
    "stationarity_residuals_v",
    "Moments", "compute_moments", "moments_from_lumped",
    "OptimizerMethod", "RepeaterOptimum", "optimize_repeater",
    "stage_delay_per_length", "stationarity_residuals",
    "DriverParams", "LineParams", "SizedDriver", "Stage",
    "Damping", "PolePair", "classify_damping", "compute_poles",
    "StepResponse", "canonical_response",
    "DelaySensitivities", "delay_sensitivities",
    "InductanceSweep", "single_optimum", "sweep_inductance",
    "ROOT", "RCTree",
    "LineRegime", "attenuation", "characteristic_impedance",
    "classify_regime", "critical_length_window",
    "lc_transition_frequency", "phase_velocity", "propagation_constant",
    "StagingPlan", "plan_staging",
    "WireSizingResult", "line_from_geometry", "optimize_wire_width",
    "exact_transfer", "exact_transfer_via_abcd", "pade_transfer",
    "transfer_error_at",
]
