"""Wire-width co-optimization on top of the repeater optimizer.

At fixed routing pitch, widening a wire lowers its resistance (r ~ 1/w t)
but raises both its plate capacitance (~ w) and its lateral coupling
(the spacing s = pitch - w shrinks).  Feeding the extraction closed forms
into the paper's exact repeater optimizer therefore yields a genuine
optimum width: minimize over w the already-(h, k)-minimized delay per
unit length.  This is the classic wire-sizing co-optimization, driven
here entirely by this repository's own substrates (extraction models +
RLC optimizer), with the inductance either held fixed (the paper's
worst-case framing) or re-estimated per geometry from the loop-inductance
model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from ..errors import ParameterError
from ..extraction.capacitance import total_capacitance
from ..extraction.geometry import COPPER_RESISTIVITY, Wire
from ..extraction.inductance import loop_inductance_over_plane
from .optimize import optimize_repeater
from .params import DriverParams, LineParams


@dataclass(frozen=True)
class WireSizingResult:
    """Outcome of the width/(h, k) co-optimization."""

    width: float                 #: optimal wire width (m)
    line: LineParams             #: extracted line parameters at that width
    h_opt: float
    k_opt: float
    delay_per_length: float
    evaluations: int             #: golden-section objective evaluations
    solver_iterations: int = 0   #: inner-optimizer iterations, all widths
    fallbacks: int = 0           #: inner runs that fell back to direct


def line_from_geometry(reference: Wire, width: float, pitch: float,
                       epsilon_r: float, *,
                       inductance: float | None = None,
                       resistivity: float = COPPER_RESISTIVITY,
                       miller_factor: float = 1.0) -> LineParams:
    """Extract LineParams for a wire of the given width at fixed pitch.

    ``reference`` supplies thickness and height; ``inductance`` fixes l
    per unit length (paper-style), or ``None`` re-estimates the
    substrate-return loop inductance for each geometry.
    """
    if width <= 0.0:
        raise ParameterError(f"width must be positive, got {width}")
    spacing = pitch - width
    if spacing <= 0.0:
        raise ParameterError(
            f"width {width} leaves no spacing at pitch {pitch}")
    wire = replace(reference, width=width, spacing=spacing)
    r = wire.resistance_per_length(resistivity)
    c = total_capacitance(wire, epsilon_r,
                          miller_factor=miller_factor).total
    l = loop_inductance_over_plane(wire) if inductance is None else inductance
    return LineParams(r=r, l=l, c=c)


def optimize_wire_width(reference: Wire, pitch: float, epsilon_r: float,
                        driver: DriverParams, *, f: float = 0.5,
                        inductance: float | None = None,
                        miller_factor: float = 1.0,
                        width_bounds: Optional[tuple[float, float]] = None,
                        tol: float = 1e-3) -> WireSizingResult:
    """Minimize delay/length over wire width (outer) and (h, k) (inner).

    Parameters
    ----------
    reference:
        Wire template providing thickness and dielectric height.
    pitch:
        Fixed centre-to-centre routing pitch (m); spacing = pitch - w.
    inductance:
        Fixed l per unit length (H/m), or None to re-extract the loop
        inductance per candidate geometry.
    width_bounds:
        Search interval; defaults to (0.1, 0.9) x pitch.

    Returns
    -------
    WireSizingResult

    Raises
    ------
    OptimizationError
        If the inner repeater optimization fails across the interval.
    """
    lo, hi = width_bounds or (0.1 * pitch, 0.9 * pitch)
    if not 0.0 < lo < hi < pitch:
        raise ParameterError(
            f"width bounds ({lo}, {hi}) must satisfy 0 < lo < hi < pitch")

    evaluations = 0
    solver_iterations = 0
    fallbacks = 0
    cache: dict[float, tuple[float, LineParams, float, float]] = {}

    def objective(width: float) -> float:
        nonlocal evaluations, solver_iterations, fallbacks
        if width in cache:
            return cache[width][0]
        line = line_from_geometry(reference, width, pitch, epsilon_r,
                                  inductance=inductance,
                                  miller_factor=miller_factor)
        optimum = optimize_repeater(line, driver, f)
        evaluations += 1
        solver_iterations += optimum.iterations
        if optimum.trace is not None and optimum.trace.fallback:
            fallbacks += 1
        cache[width] = (optimum.delay_per_length, line, optimum.h_opt,
                        optimum.k_opt)
        return optimum.delay_per_length

    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = objective(c), objective(d)
    for _ in range(100):
        if (b - a) <= tol * b:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = objective(d)
    best_width = c if fc < fd else d
    dpl, line, h_opt, k_opt = cache[best_width]
    return WireSizingResult(width=best_width, line=line, h_opt=h_opt,
                            k_opt=k_opt, delay_per_length=dpl,
                            evaluations=evaluations,
                            solver_iterations=solver_iterations,
                            fallbacks=fallbacks)
