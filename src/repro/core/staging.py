"""Integer repeater staging for a fixed total net length.

The paper minimizes delay *per unit length* with continuous (h, k); a
real net of length L needs an integer number of stages N = L/h.  This
module quantizes the continuous optimum: it evaluates the true total
delay N tau(L/N, k_N) for the integer stage counts bracketing the
continuous solution (re-optimizing k at each candidate N), picks the
best, and reports the quantization penalty — which the tests show is
second-order, as the flat optimum of Figs. 5-6 suggests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import OptimizationError, ParameterError
from .evaluate import StageEvaluator
from .optimize import OptimizerMethod, optimize_repeater
from .params import DriverParams, LineParams


@dataclass(frozen=True)
class StagingPlan:
    """Discrete repeater plan for a net of fixed total length."""

    total_length: float
    n_stages: int
    segment_length: float
    k_opt: float
    stage_delay: float
    total_delay: float
    continuous_bound: float     #: L x (tau/h) of the continuous optimum

    @property
    def quantization_penalty(self) -> float:
        """total_delay / continuous_bound (>= 1)."""
        return self.total_delay / self.continuous_bound


def _best_k_for_segment(line: LineParams, driver: DriverParams,
                        h: float, f: float, k_seed: float, *,
                        evaluator: StageEvaluator = None
                        ) -> tuple[float, float]:
    """Optimal k (and tau) for a *fixed* segment length h.

    1-D golden-section on k around the continuous optimum's seed.  Delay
    evaluations route through a (shareable) kernel-backed
    :class:`~repro.core.evaluate.StageEvaluator`, so bracket endpoints
    revisited by the golden section — and candidates revisited across
    stage counts — are memo hits.
    """
    inv_phi = (math.sqrt(5.0) - 1.0) / 2.0
    if evaluator is None:
        evaluator = StageEvaluator(line, driver, f)

    def tau_of(k: float) -> float:
        return evaluator.delay(h, k)

    a, b = 0.05 * k_seed, 20.0 * k_seed
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = tau_of(c), tau_of(d)
    for _ in range(120):
        if (b - a) <= 1e-7 * b:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = tau_of(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = tau_of(d)
    k_best = 0.5 * (a + b)
    return k_best, tau_of(k_best)


def plan_staging(line: LineParams, driver: DriverParams,
                 total_length: float, *, f: float = 0.5,
                 max_candidates: int = 3,
                 method: OptimizerMethod = OptimizerMethod.AUTO
                 ) -> StagingPlan:
    """Best integer staging of a net of ``total_length`` metres.

    Evaluates N = floor and ceil of L/h_opt (plus neighbours up to
    ``max_candidates`` on each side, clipped at N = 1), re-optimizing the
    repeater size for each candidate segment length.
    """
    if total_length <= 0.0:
        raise ParameterError(
            f"total length must be positive, got {total_length}")
    continuous = optimize_repeater(line, driver, f, method=method)
    bound = total_length * continuous.delay_per_length

    n_center = total_length / continuous.h_opt
    candidates = sorted({
        max(1, int(math.floor(n_center)) + offset)
        for offset in range(-(max_candidates - 1), max_candidates + 1)})

    best: Optional[StagingPlan] = None
    evaluator = StageEvaluator(line, driver, f)
    for n in candidates:
        h = total_length / n
        try:
            k_best, tau = _best_k_for_segment(line, driver, h, f,
                                              continuous.k_opt,
                                              evaluator=evaluator)
        except (OptimizationError, ParameterError):
            continue
        plan = StagingPlan(total_length=total_length, n_stages=n,
                           segment_length=h, k_opt=k_best, stage_delay=tau,
                           total_delay=n * tau, continuous_bound=bound)
        if best is None or plan.total_delay < best.total_delay:
            best = plan
    if best is None:
        raise OptimizationError(
            "no feasible integer staging found (all candidates failed)")
    return best
