"""Parameter containers for the driver-interconnect-load stage.

The paper's Figure 1 structure is a repeater of size ``k`` (series
resistance ``r_s / k``, output parasitic capacitance ``c_p * k``) driving a
uniform distributed RLC line of length ``h`` terminated by the input
capacitance of an identical repeater (``c_0 * k``).  These containers carry
that configuration in SI units and expose the derived lumped element values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import ParameterError


@dataclass(frozen=True)
class LineParams:
    """Per-unit-length parameters of a uniform RLC line (SI units).

    Attributes
    ----------
    r:
        Resistance per unit length in ohm/m.
    l:
        Inductance per unit length in H/m.  May be zero (RC line).
    c:
        Capacitance per unit length in F/m.
    """

    r: float
    l: float
    c: float

    def __post_init__(self) -> None:
        if self.r <= 0.0:
            raise ParameterError(f"line resistance must be positive, got {self.r}")
        if self.l < 0.0:
            raise ParameterError(f"line inductance must be >= 0, got {self.l}")
        if self.c <= 0.0:
            raise ParameterError(f"line capacitance must be positive, got {self.c}")

    def with_inductance(self, l: float) -> "LineParams":
        """Return a copy with the inductance per unit length replaced."""
        return replace(self, l=l)

    def with_capacitance(self, c: float) -> "LineParams":
        """Return a copy with the capacitance per unit length replaced."""
        return replace(self, c=c)

    @property
    def characteristic_impedance_lossless(self) -> float:
        """Lossless characteristic impedance sqrt(l/c) in ohms.

        This is the high-frequency limit of Z0 = sqrt((r + s l) / (s c)); the
        paper's k_opt asymptote matches the driver output impedance to it.
        """
        return math.sqrt(self.l / self.c)

    @property
    def time_of_flight_per_length(self) -> float:
        """Wave propagation time per unit length sqrt(l c) in s/m."""
        return math.sqrt(self.l * self.c)

    def damping_factor(self, length: float) -> float:
        """Dimensionless line damping r·h/2 · sqrt(c·h / (l·h)) for length h.

        Values well above one indicate RC-dominated behaviour; values below
        one indicate a strongly inductive (transmission-line) regime.
        """
        if self.l == 0.0:
            return math.inf
        return 0.5 * self.r * length * math.sqrt(self.c / self.l)


@dataclass(frozen=True)
class DriverParams:
    """Minimum-sized repeater parameters for a technology (SI units).

    Attributes
    ----------
    r_s:
        Output resistance of a minimum-sized repeater in ohms.
    c_p:
        Output parasitic capacitance of a minimum-sized repeater in farads.
    c_0:
        Input capacitance of a minimum-sized repeater in farads.
    """

    r_s: float
    c_p: float
    c_0: float

    def __post_init__(self) -> None:
        if self.r_s <= 0.0:
            raise ParameterError(f"driver resistance must be positive, got {self.r_s}")
        if self.c_p < 0.0:
            raise ParameterError(f"parasitic capacitance must be >= 0, got {self.c_p}")
        if self.c_0 <= 0.0:
            raise ParameterError(f"input capacitance must be positive, got {self.c_0}")

    def sized(self, k: float) -> "SizedDriver":
        """Return the lumped element values for a driver of size ``k``."""
        if k <= 0.0:
            raise ParameterError(f"driver size must be positive, got {k}")
        return SizedDriver(r_series=self.r_s / k, c_parasitic=self.c_p * k,
                           c_load=self.c_0 * k)

    @property
    def intrinsic_delay(self) -> float:
        """Intrinsic time constant r_s (c_0 + c_p) of the repeater in seconds."""
        return self.r_s * (self.c_0 + self.c_p)


@dataclass(frozen=True)
class SizedDriver:
    """Lumped element values of a repeater scaled to a specific size.

    Attributes
    ----------
    r_series:
        Series output resistance R_S in ohms.
    c_parasitic:
        Output parasitic capacitance C_P in farads.
    c_load:
        Input (load) capacitance C_L of the identical next repeater in farads.
    """

    r_series: float
    c_parasitic: float
    c_load: float


@dataclass(frozen=True)
class Stage:
    """One buffered segment: driver of size ``k`` + line of length ``h`` + load.

    This is the unit the whole paper analyses: delay is computed per stage
    and the repeater-insertion optimizer minimizes (stage delay)/(stage
    length).
    """

    line: LineParams
    driver: DriverParams
    h: float
    k: float

    def __post_init__(self) -> None:
        if self.h <= 0.0:
            raise ParameterError(f"segment length must be positive, got {self.h}")
        if self.k <= 0.0:
            raise ParameterError(f"driver size must be positive, got {self.k}")

    @property
    def sized_driver(self) -> SizedDriver:
        """Lumped R_S, C_P, C_L for this stage."""
        return self.driver.sized(self.k)

    @property
    def total_line_resistance(self) -> float:
        """Total line resistance r·h in ohms."""
        return self.line.r * self.h

    @property
    def total_line_inductance(self) -> float:
        """Total line inductance l·h in henries."""
        return self.line.l * self.h

    @property
    def total_line_capacitance(self) -> float:
        """Total line capacitance c·h in farads."""
        return self.line.c * self.h

    def with_geometry(self, h: float, k: float) -> "Stage":
        """Return a copy with the segment length and driver size replaced."""
        return replace(self, h=h, k=k)

    def with_inductance(self, l: float) -> "Stage":
        """Return a copy with the line inductance per unit length replaced."""
        return replace(self, line=self.line.with_inductance(l))
