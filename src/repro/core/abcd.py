"""ABCD (chain) two-port algebra for driver-line-load cascades.

The paper builds the exact transfer function (Eq. 1) by cascading the ABCD
matrices of a series driver resistance, a shunt parasitic capacitance, a
uniform RLC transmission line and a shunt load capacitance.  This module
provides exactly those blocks plus the cascade product, in fully complex
arithmetic, so both the paper's closed form and an independent matrix
product are available (and are cross-checked in the tests).
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass

from ..errors import ParameterError
from .params import LineParams

#: Below this |theta*h| the line matrix entries switch to series expansions
#: to avoid catastrophic cancellation / 0*inf at s -> 0.
_SERIES_THRESHOLD = 1e-6


@dataclass(frozen=True)
class ABCDMatrix:
    """Chain matrix [[a, b], [c, d]] relating (V1, I1) to (V2, I2)."""

    a: complex
    b: complex
    c: complex
    d: complex

    def cascade(self, other: "ABCDMatrix") -> "ABCDMatrix":
        """Return self @ other — ``self`` is closer to the source."""
        return ABCDMatrix(
            a=self.a * other.a + self.b * other.c,
            b=self.a * other.b + self.b * other.d,
            c=self.c * other.a + self.d * other.c,
            d=self.c * other.b + self.d * other.d,
        )

    def __matmul__(self, other: "ABCDMatrix") -> "ABCDMatrix":
        return self.cascade(other)

    @property
    def determinant(self) -> complex:
        """a d - b c; equals 1 for any reciprocal two-port."""
        return self.a * self.d - self.b * self.c

    def voltage_transfer_open(self) -> complex:
        """V2/V1 with the output port open-circuited: 1/a."""
        return 1.0 / self.a

    def voltage_transfer_loaded(self, z_load: complex) -> complex:
        """V2/V1 with the output port terminated by impedance ``z_load``."""
        return 1.0 / (self.a + self.b / z_load)


def identity() -> ABCDMatrix:
    """The identity two-port."""
    return ABCDMatrix(1.0, 0.0, 0.0, 1.0)


def series_impedance(z: complex) -> ABCDMatrix:
    """A series element of impedance z: [[1, z], [0, 1]]."""
    return ABCDMatrix(1.0, z, 0.0, 1.0)


def shunt_admittance(y: complex) -> ABCDMatrix:
    """A shunt element of admittance y: [[1, 0], [y, 1]]."""
    return ABCDMatrix(1.0, 0.0, y, 1.0)


def series_resistor(resistance: float) -> ABCDMatrix:
    """Series resistor of the given resistance (ohms)."""
    return series_impedance(complex(resistance))


def shunt_capacitor(capacitance: float, s: complex) -> ABCDMatrix:
    """Shunt capacitor of the given capacitance (farads) at frequency s."""
    return shunt_admittance(s * capacitance)


def rlc_line(line: LineParams, length: float, s: complex) -> ABCDMatrix:
    """Exact chain matrix of a uniform RLC line of the given length.

    Entries are cosh(theta h), Z0 sinh(theta h), sinh(theta h)/Z0 and
    cosh(theta h) with theta = sqrt((r + s l) s c) and
    Z0 = sqrt((r + s l)/(s c)).  Near s = 0 (where Z0 diverges but the
    products stay finite) series expansions of the same entries are used.
    """
    if length <= 0.0:
        raise ParameterError(f"line length must be positive, got {length}")
    z_per_len = line.r + s * line.l         # series impedance per unit length
    y_per_len = s * line.c                  # shunt admittance per unit length
    zy = z_per_len * y_per_len
    theta_h = cmath.sqrt(zy) * length
    # b entry needs Z0 sinh(theta h) = z_per_len * length * sinh(u)/u,
    # c entry needs sinh(theta h)/Z0 = y_per_len * length * sinh(u)/u,
    # both of which are regular at u = 0.
    u = theta_h
    if abs(u) < _SERIES_THRESHOLD:
        u2 = u * u
        sinh_over_u = 1.0 + u2 / 6.0 + u2 * u2 / 120.0
        cosh_u = 1.0 + u2 / 2.0 + u2 * u2 / 24.0
    else:
        sinh_over_u = cmath.sinh(u) / u
        cosh_u = cmath.cosh(u)
    b = z_per_len * length * sinh_over_u
    c = y_per_len * length * sinh_over_u
    return ABCDMatrix(a=cosh_u, b=b, c=c, d=cosh_u)


def rc_line(resistance_per_length: float, capacitance_per_length: float,
            length: float, s: complex) -> ABCDMatrix:
    """Chain matrix of a purely RC line (inductance forced to zero)."""
    line = LineParams(r=resistance_per_length, l=0.0,
                      c=capacitance_per_length)
    return rlc_line(line, length, s)
