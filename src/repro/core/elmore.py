"""Elmore (RC) delay and the closed-form RC-optimal repeater insertion.

These are the inductance-blind baselines of Sec. 3.1.  For a line of total
length L broken into L/h segments, each driven by a size-k repeater,

    t_Elmore = (L/h) [ r_s/k (c_p k + c_0 k) + (r_s/k) c h
                       + r h c_0 k + r c h^2 / 2 ]

which is minimized by

    h_optRC  = sqrt(2 r_s (c_0 + c_p) / (r c))
    k_optRC  = sqrt(r_s c / (r c_0))
    tau_optRC = 2 r_s (c_0 + c_p) (1 + sqrt(2 c_0 / (c_0 + c_p)))

tau_optRC is independent of the wiring level (r, c) and is therefore a pure
technology figure of merit; Table 1 of the paper uses these identities to
back out r_s, c_0, c_p from SPICE-characterized optima (see
:mod:`repro.tech.characterize` for our simulator-based equivalent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from .params import DriverParams, LineParams, Stage


def elmore_stage_delay(stage: Stage) -> float:
    """Elmore delay of one buffered segment (equals the Padé moment b1)."""
    r, c = stage.line.r, stage.line.c
    h = stage.h
    drv = stage.sized_driver
    return (drv.r_series * (drv.c_parasitic + drv.c_load)
            + drv.r_series * c * h
            + r * h * drv.c_load
            + 0.5 * r * c * h * h)


def elmore_total_delay(line: LineParams, driver: DriverParams,
                       total_length: float, h: float, k: float) -> float:
    """Elmore delay of a length-L line split into L/h buffered segments."""
    if total_length <= 0.0:
        raise ParameterError(f"total length must be positive, got {total_length}")
    stage = Stage(line=line, driver=driver, h=h, k=k)
    return (total_length / h) * elmore_stage_delay(stage)


@dataclass(frozen=True)
class RCOptimum:
    """Closed-form RC-optimal repeater insertion for a technology/layer.

    Attributes
    ----------
    h_opt:
        Optimal segment length in metres.
    k_opt:
        Optimal repeater size (multiple of minimum size).
    tau_opt:
        Elmore delay of one optimal segment, in seconds.
    """

    h_opt: float
    k_opt: float
    tau_opt: float

    @property
    def delay_per_length(self) -> float:
        """Optimal Elmore delay per unit length tau_opt / h_opt, in s/m."""
        return self.tau_opt / self.h_opt


def rc_optimum(line: LineParams, driver: DriverParams) -> RCOptimum:
    """Compute (h_optRC, k_optRC, tau_optRC) from the closed forms above."""
    r, c = line.r, line.c
    r_s, c_p, c_0 = driver.r_s, driver.c_p, driver.c_0
    h_opt = math.sqrt(2.0 * r_s * (c_0 + c_p) / (r * c))
    k_opt = math.sqrt(r_s * c / (r * c_0))
    tau_opt = 2.0 * r_s * (c_0 + c_p) * (1.0 + math.sqrt(2.0 * c_0 / (c_0 + c_p)))
    return RCOptimum(h_opt=h_opt, k_opt=k_opt, tau_opt=tau_opt)


def driver_from_rc_optimum(line: LineParams, h_opt: float, k_opt: float,
                           tau_opt: float) -> DriverParams:
    """Invert the RC-optimum identities to recover (r_s, c_p, c_0).

    This is exactly how the paper derives Table 1's device parameters from
    SPICE-measured optima: the three closed forms above are three equations
    in the three unknowns r_s, c_p, c_0.

    Derivation: from h_opt and k_opt,

        r_s (c_0 + c_p) = r c h_opt^2 / 2        (A)
        r_s c           = r c_0 k_opt^2          (B)

    and substituting (A) into tau_opt gives sqrt(2 c_0/(c_0+c_p)), hence
    c_0/(c_0+c_p); together with (B) all three parameters follow.
    """
    r, c = line.r, line.c
    a = 0.5 * r * c * h_opt * h_opt            # = r_s (c_0 + c_p)
    ratio_term = tau_opt / (2.0 * a) - 1.0     # = sqrt(2 c_0 / (c_0 + c_p))
    if ratio_term <= 0.0:
        raise ParameterError(
            "inconsistent RC optimum: tau_opt must exceed r c h_opt^2")
    c0_fraction = 0.5 * ratio_term * ratio_term    # = c_0 / (c_0 + c_p)
    if c0_fraction > 1.0 + 1e-9:
        raise ParameterError(
            "inconsistent RC optimum: implies negative parasitic capacitance")
    # c_p = 0 is a legitimate boundary (c0_fraction exactly 1); clamp the
    # float round-off that can push it infinitesimally above.
    c0_fraction = min(c0_fraction, 1.0)
    # (B): r_s c = r c_0 k^2  =>  r_s = r c_0 k^2 / c, and (A) closes it.
    # Let S = c_0 + c_p.  Then c_0 = c0_fraction * S and
    # a = r_s S = (r k^2 / c) c0_fraction S^2  =>  S^2 = a c / (r k^2 c0_fraction).
    s_total = math.sqrt(a * c / (r * k_opt * k_opt * c0_fraction))
    c_0 = c0_fraction * s_total
    c_p = max(0.0, s_total - c_0)
    r_s = a / s_total
    return DriverParams(r_s=r_s, c_p=c_p, c_0=c_0)
