"""Shared stage evaluator: the optimizer's (h, k) -> (g1, g2, tau) oracle.

The repeater optimizer (:mod:`repro.core.optimize`) needs the paper's
stationarity residuals (Eqs. 7-8) at many nearby sizings: the base point,
two finite-difference probes per Newton iteration, and every backtracking
trial.  Before this module each of those was a full scalar walk of the
moments -> poles -> response -> delay chain; here the walk happens once
per *batch* through the kernel expression graphs of
:mod:`repro.core.kernels`, and a per-evaluator memo guarantees no (h, k)
is ever computed twice.

Bitwise compatibility
---------------------
The refactor contract is that :func:`repro.core.optimize.optimize_repeater`
returns bit-for-bit the same (h_opt, k_opt, tau) as the scalar
implementation — including its convergence path, i.e. every intermediate
residual must match exactly.  The scalar chain mixes two flavours of
complex/real scalar division, selected by Python's type coercion:

* ``complex / float`` (CPython) divides each component directly;
* ``np.complex128 / np.float64`` (numpy) follows Smith's algorithm with a
  reciprocal-multiply (``scl = 1/denom`` then componentwise multiply),
  which can differ from the direct quotient in the last ulp.

Which flavour the scalar code hits depends on whether numpy scalars have
"tainted" the operands.  Tracing the taint through
:func:`repro.core.moments.moments_terms` leaves exactly two independent
decisions, captured by :class:`ScalarSemantics`:

* ``numpy_b1`` — b1 (no l term) is an ``np.float64``; decides the pole
  divisions ``(-b1 +- sqrt)/2 b2``, the ``s*db2/b2`` term and ``s/h``.
* ``numpy_db2`` — db2 (contains every parameter) is an ``np.float64``;
  decides ``(b1 db1 - 2 db2)/sqrt`` and the ``numerator/2 b2`` division.

numpy complex *multiplication* needs no switch: the numpy scalar product
uses the naive componentwise formula, identical to CPython.  Array
multiplication, however, may use SIMD/FMA contraction, so every complex
product below is spelled out componentwise (:func:`_cmul`).

:class:`StageEvaluator` derives the semantics from the live types of the
line/driver parameters and the (h, k) iterates — e.g. a sweep warm start
carries ``np.float64`` optima into the next point's first evaluation —
so batched evaluation reproduces the scalar bits in every mixed-type
scenario the optimizer stack produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from . import moments as _moments_mod
from .kernels import (DAMPING_BY_CODE, ResponseBatch, classify_damping_v,
                      threshold_delay_v)
from .params import DriverParams, LineParams


# ----------------------------------------------------------------------
# Scalar-semantics selection.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScalarSemantics:
    """Which scalar division flavour each site of the chain would use.

    See the module docstring: ``numpy_b1`` tracks the taint of the moment
    b1 (every parameter except l), ``numpy_db2`` the taint of db2/dh
    (every parameter).  ``numpy_db2`` is implied by ``numpy_b1``.
    """

    numpy_b1: bool
    numpy_db2: bool

    @classmethod
    def for_values(cls, line: LineParams, driver: DriverParams,
                   h_values: Iterable[Any],
                   k_values: Iterable[Any]) -> "ScalarSemantics":
        """Derive the semantics the scalar chain would use for these types."""
        taint_s = any(
            isinstance(x, np.generic)
            for x in (line.r, line.c, driver.r_s, driver.c_p, driver.c_0))
        taint_s = taint_s or any(
            isinstance(x, np.generic) for x in h_values) or any(
            isinstance(x, np.generic) for x in k_values)
        return cls(numpy_b1=taint_s,
                   numpy_db2=taint_s or isinstance(line.l, np.generic))


# ----------------------------------------------------------------------
# Componentwise complex helpers (immune to SIMD/FMA contraction).
# ----------------------------------------------------------------------
def _cparts(re, im) -> np.ndarray:
    re = np.asarray(re, dtype=float)
    im = np.asarray(im, dtype=float)
    z = np.empty(np.broadcast(re, im).shape, dtype=complex)
    z.real, z.imag = re, im
    return z


def _cmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Naive componentwise complex product (the scalar formula)."""
    return _cparts(a.real * b.real - a.imag * b.imag,
                   a.real * b.imag + a.imag * b.real)


def _div_real(num: np.ndarray, den: np.ndarray,
              numpy_style: bool) -> np.ndarray:
    """complex / positive-real, in the requested scalar flavour.

    Warnings are silenced: exactly-critical lanes carry inf/NaN
    components here that ``np.where`` overrides downstream, and the
    scalar chain never divides on that branch at all.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        if numpy_style:
            return num / np.asarray(den, dtype=float)
        return _cparts(num.real / den, num.imag / den)


# ----------------------------------------------------------------------
# Batched stationarity residuals.
# ----------------------------------------------------------------------
def stationarity_residuals_v(r, l, c, r_s, c_p, c_0, h, k, f: float, *,
                             semantics: ScalarSemantics
                             ) -> Tuple[np.ndarray, np.ndarray,
                                        np.ndarray, np.ndarray]:
    """Batched (g1, g2, tau, damping code) over N stage lanes.

    Evaluates the paper's normalized residuals (see
    :func:`repro.core.optimize.stationarity_residuals`) for every lane of
    a parameter batch in one pipeline walk.  With ``semantics`` matching
    the operand types the scalar chain would see, each lane is
    bit-for-bit identical to the scalar evaluation (NaN lanes — exactly
    critical poles — are NaN in both).

    Raises
    ------
    ParameterError
        If any lane has b2 <= 0 or b1 <= 0, naming the first bad lane
        (mirroring :func:`repro.core.poles.compute_poles`).
    DelaySolverError
        If the threshold-crossing solve fails for any lane.
    """
    arrs = [np.asarray(x, dtype=float)
            for x in (r, l, c, r_s, c_p, c_0, h, k)]
    r, l, c, r_s, c_p, c_0, h, k = np.broadcast_arrays(*arrs)
    # Mirror the scalar chain's Stage/SizedDriver validation: a lane the
    # scalar path would reject must raise here too (the direct optimizer
    # maps these to +inf objective values).
    for name, values in (("segment length", h), ("driver size", k)):
        bad = np.flatnonzero(~(values > 0.0))
        if bad.size:
            i = int(bad[0])
            raise ParameterError(
                f"{name} must be positive, got {values.flat[i]} (lane {i})")
    b1, b2, db1_dh, db1_dk, db2_dh, db2_dk = _moments_mod.moments_terms(
        r, l, c, r_s, c_p, c_0, h, k)

    for name, values in (("b2", b2), ("b1", b1)):
        bad = np.flatnonzero(values <= 0.0)
        if bad.size:
            i = int(bad[0])
            raise ParameterError(
                f"two-pole model requires {name} > 0, got "
                f"{values.flat[i]} (lane {i})")

    disc = b1 * b1 - 4.0 * b2
    sqrt_abs = np.sqrt(np.abs(disc))
    over = disc >= 0.0
    sqrt_re = np.where(over, sqrt_abs, 0.0)
    sqrt_im = np.where(over, 0.0, sqrt_abs)
    two_b2 = 2.0 * b2
    s1 = _div_real(_cparts(-b1 + sqrt_re, sqrt_im), two_b2,
                   semantics.numpy_b1)
    s2 = _div_real(_cparts(-b1 - sqrt_re, -sqrt_im), two_b2,
                   semantics.numpy_b1)
    crit = sqrt_abs == 0.0

    def dterms(sign: float, s: np.ndarray, db1p: np.ndarray,
               db2p: np.ndarray) -> np.ndarray:
        x = sign * (b1 * db1p - 2.0 * db2p)
        if semantics.numpy_db2:
            with np.errstate(divide="ignore", invalid="ignore"):
                div = _cparts(x, 0.0) / _cparts(sqrt_re, sqrt_im)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                div = _cparts(np.where(over, x / sqrt_abs, 0.0),
                              np.where(over, 0.0, (0.0 - x) / sqrt_abs))
        num = _cparts(-db1p + div.real, div.imag)
        q1 = _div_real(num, two_b2, semantics.numpy_db2)
        sdb2 = _cparts(s.real * db2p - s.imag * 0.0,
                       s.real * 0.0 + s.imag * db2p)
        q2 = _div_real(sdb2, b2, semantics.numpy_b1)
        res = q1 - q2
        # Exactly coincident poles: the scalar chain switches to the
        # derivative of the double root (pure real arithmetic).
        if np.any(crit):
            crit_val = -db1p / two_b2 + b1 * db2p / (two_b2 * b2)
            res = np.where(crit, _cparts(crit_val, 0.0), res)
        return res

    ds1_dh = dterms(+1.0, s1, db1_dh, db2_dh)
    ds1_dk = dterms(+1.0, s1, db1_dk, db2_dk)
    ds2_dh = dterms(-1.0, s2, db1_dh, db2_dh)
    ds2_dk = dterms(-1.0, s2, db1_dk, db2_dk)

    solved = threshold_delay_v(ResponseBatch.from_s1s2(s1, s2), f)
    tau = solved.tau

    e1 = np.exp(_cparts(s1.real * tau, s1.imag * tau))
    e2 = np.exp(_cparts(s2.real * tau, s2.imag * tau))
    one_minus_f = 1.0 - f
    s1h = _div_real(s1, h, semantics.numpy_b1)
    s2h = _div_real(s2, h, semantics.numpy_b1)
    s1t = _cparts(s1.real * tau, s1.imag * tau)
    s2t = _cparts(s2.real * tau, s2.imag * tau)

    def rmul(x, z: np.ndarray) -> np.ndarray:
        # real * complex with the scalar's naive expansion.
        return _cparts(x * z.real - 0.0 * z.imag, x * z.imag + 0.0 * z.real)

    g1 = (rmul(one_minus_f, ds2_dh - ds1_dh)
          - _cmul(ds2_dh, e1) + _cmul(ds1_dh, e2)
          - _cmul(_cmul(s2t, ds1_dh + s1h), e1)
          + _cmul(_cmul(s1t, ds2_dh + s2h), e2))
    g2 = (rmul(one_minus_f, ds2_dk - ds1_dk)
          - _cmul(ds2_dk, e1) - _cmul(_cmul(s2t, ds1_dk), e1)
          + _cmul(ds1_dk, e2) + _cmul(_cmul(s1t, ds2_dk), e2))

    pole_gap = s2 - s1
    with np.errstate(divide="ignore", invalid="ignore"):
        g1_real = (g1 / pole_gap).real
        g2_real = (g2 / pole_gap).real
    return g1_real * h, g2_real * k, tau, classify_damping_v(b1, b2)


def delay_per_length_grid(line_zero_l: LineParams, driver: DriverParams,
                          l_values, h, k, f: float = 0.5) -> np.ndarray:
    """tau(h, k, l)/h over an inductance grid at one fixed sizing.

    The class-aware batched equivalent of looping
    ``threshold_delay(Stage(line.with_inductance(float(l)), ...)).tau / h``
    over ``l_values`` — each lane is bitwise identical to that scalar
    evaluation (the grid values are float-coerced exactly as the scalar
    loops do).  Used by :mod:`repro.core.robust` to collapse its
    per-candidate worst-case scans into one kernel walk each.
    """
    if not float(h) > 0.0:
        raise ParameterError(f"segment length must be positive, got {h}")
    if not float(k) > 0.0:
        raise ParameterError(f"driver size must be positive, got {k}")
    l_arr = np.asarray([float(l) for l in l_values], dtype=float)
    semantics = ScalarSemantics.for_values(line_zero_l, driver, (h,), (k,))
    r = np.full(l_arr.shape, float(line_zero_l.r))
    c = np.full(l_arr.shape, float(line_zero_l.c))
    h_arr = np.full(l_arr.shape, float(h))
    k_arr = np.full(l_arr.shape, float(k))
    b1, b2, _, _, _, _ = _moments_mod.moments_terms(
        r, l_arr, c, np.full(l_arr.shape, float(driver.r_s)),
        np.full(l_arr.shape, float(driver.c_p)),
        np.full(l_arr.shape, float(driver.c_0)), h_arr, k_arr)
    for name, values in (("b2", b2), ("b1", b1)):
        bad = np.flatnonzero(values <= 0.0)
        if bad.size:
            i = int(bad[0])
            raise ParameterError(
                f"two-pole model requires {name} > 0, got "
                f"{values.flat[i]} (lane {i})")
    disc = b1 * b1 - 4.0 * b2
    sqrt_abs = np.sqrt(np.abs(disc))
    over = disc >= 0.0
    s1 = _div_real(_cparts(-b1 + np.where(over, sqrt_abs, 0.0),
                           np.where(over, 0.0, sqrt_abs)),
                   2.0 * b2, semantics.numpy_b1)
    s2 = _div_real(_cparts(-b1 - np.where(over, sqrt_abs, 0.0),
                           np.where(over, 0.0, -sqrt_abs)),
                   2.0 * b2, semantics.numpy_b1)
    tau = threshold_delay_v(ResponseBatch.from_s1s2(s1, s2), f).tau
    return tau / h


# ----------------------------------------------------------------------
# Optimization traces.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceStep:
    """One accepted optimizer iterate (iteration 0 is the seed)."""

    iteration: int
    h: float
    k: float
    g1: float
    g2: float
    tau: float
    residual_norm: float
    damping: str
    step_scale: Optional[float]   #: damping factor applied; None at seed
    backtracks: int               #: step halvings before acceptance
    accepted_worse: bool          #: accepted with residual not decreased


@dataclass(frozen=True)
class TraceEvent:
    """A non-iterate optimizer event (fallback, error, direct stats)."""

    iteration: int
    kind: str
    detail: str


@dataclass
class OptimizationTrace:
    """Structured per-iteration history of one optimization run.

    Populated by :func:`repro.core.optimize.optimize_repeater` and
    attached to :class:`~repro.core.optimize.RepeaterOptimum`; the engine
    serializes it through :meth:`to_payload` so cached/parallel runs
    carry the same diagnostics as in-process ones.
    """

    steps: List[TraceStep] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)
    lanes_evaluated: int = 0     #: kernel lanes actually computed
    batch_calls: int = 0         #: vectorized pipeline walks issued
    memo_hits: int = 0           #: evaluations served from the memo

    def record_step(self, step: TraceStep) -> None:
        self.steps.append(step)

    def record_event(self, kind: str, detail: str = "") -> None:
        self.events.append(TraceEvent(iteration=self.next_iteration - 1,
                                      kind=kind, detail=detail))

    @property
    def next_iteration(self) -> int:
        return self.steps[-1].iteration + 1 if self.steps else 0

    @property
    def backtrack_total(self) -> int:
        return sum(step.backtracks for step in self.steps)

    @property
    def accepted_worse_total(self) -> int:
        return sum(1 for step in self.steps if step.accepted_worse)

    @property
    def fallback(self) -> bool:
        """True when Newton stalled and the direct method took over."""
        return any(event.kind == "fallback" for event in self.events)

    def attach_counters(self, evaluator: "StageEvaluator") -> None:
        """Snapshot the evaluator's lane accounting into the trace."""
        self.lanes_evaluated = evaluator.lanes_evaluated
        self.batch_calls = evaluator.batch_calls
        self.memo_hits = evaluator.memo_hits

    def summary(self) -> Dict[str, Any]:
        """Plain-typed roll-up for metrics output."""
        return {"steps": len(self.steps),
                "backtracks": self.backtrack_total,
                "accepted_worse": self.accepted_worse_total,
                "fallback": self.fallback,
                "lanes_evaluated": self.lanes_evaluated,
                "batch_calls": self.batch_calls,
                "memo_hits": self.memo_hits}

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dictionary form (floats/ints/strs only)."""
        return {
            "steps": [{"iteration": step.iteration,
                       "h": float(step.h), "k": float(step.k),
                       "g1": float(step.g1), "g2": float(step.g2),
                       "tau": float(step.tau),
                       "residual_norm": float(step.residual_norm),
                       "damping": step.damping,
                       "step_scale": (None if step.step_scale is None
                                      else float(step.step_scale)),
                       "backtracks": step.backtracks,
                       "accepted_worse": step.accepted_worse}
                      for step in self.steps],
            "events": [{"iteration": event.iteration, "kind": event.kind,
                        "detail": event.detail}
                       for event in self.events],
            "lanes_evaluated": self.lanes_evaluated,
            "batch_calls": self.batch_calls,
            "memo_hits": self.memo_hits,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "OptimizationTrace":
        trace = cls(lanes_evaluated=int(data.get("lanes_evaluated", 0)),
                    batch_calls=int(data.get("batch_calls", 0)),
                    memo_hits=int(data.get("memo_hits", 0)))
        for entry in data.get("steps", []):
            scale = entry.get("step_scale")
            trace.steps.append(TraceStep(
                iteration=int(entry["iteration"]),
                h=float(entry["h"]), k=float(entry["k"]),
                g1=float(entry["g1"]), g2=float(entry["g2"]),
                tau=float(entry["tau"]),
                residual_norm=float(entry["residual_norm"]),
                damping=str(entry["damping"]),
                step_scale=None if scale is None else float(scale),
                backtracks=int(entry.get("backtracks", 0)),
                accepted_worse=bool(entry.get("accepted_worse", False))))
        for entry in data.get("events", []):
            trace.events.append(TraceEvent(
                iteration=int(entry["iteration"]),
                kind=str(entry["kind"]),
                detail=str(entry.get("detail", ""))))
        return trace


# ----------------------------------------------------------------------
# The evaluator.
# ----------------------------------------------------------------------
class StageEvaluator:
    """Memoized, batched (h, k) -> (g1, g2, tau, damping) oracle.

    One evaluator is bound to a (line, driver, f) configuration; all
    optimizer layers for that configuration share it, so the Newton base
    point, finite-difference probes, backtracking trials and a direct
    fallback's simplex never recompute an already-seen sizing.

    The memo key includes the derived :class:`ScalarSemantics`, because
    the same (h, k) *values* evaluated under float vs numpy operand types
    may legitimately differ in the last ulp — both variants are cached
    independently so each caller sees exactly its scalar-path bits.
    """

    def __init__(self, line: LineParams, driver: DriverParams,
                 f: float) -> None:
        self.line = line
        self.driver = driver
        self.f = f
        self._memo: Dict[Tuple[float, float, bool, bool],
                         Tuple[float, float, float, int]] = {}
        self.lanes_evaluated = 0
        self.batch_calls = 0
        self.memo_hits = 0

    # -- semantics ------------------------------------------------------
    def semantics_for(self, pairs: Sequence[Tuple[Any, Any]]
                      ) -> ScalarSemantics:
        """The scalar flavour these (h, k) operand types would select."""
        return ScalarSemantics.for_values(
            self.line, self.driver,
            (pair[0] for pair in pairs), (pair[1] for pair in pairs))

    def _key(self, h: Any, k: Any, semantics: ScalarSemantics
             ) -> Tuple[float, float, bool, bool]:
        return (float(h), float(k), semantics.numpy_b1, semantics.numpy_db2)

    # -- evaluation -----------------------------------------------------
    def evaluate_many(self, pairs: Sequence[Tuple[Any, Any]]
                      ) -> List[Tuple[float, float, float, int]]:
        """Evaluate every (h, k) pair; misses become one kernel batch.

        Pairs are grouped by their derived semantics (in practice one
        group — an iteration's base point and probes share types), each
        group's misses run as a single vectorized pipeline walk, and all
        results are memoized per lane.
        """
        semantics = [self.semantics_for([pair]) for pair in pairs]
        keys = [self._key(pair[0], pair[1], sem)
                for pair, sem in zip(pairs, semantics)]
        by_group: Dict[ScalarSemantics, List[int]] = {}
        for index, (key, sem) in enumerate(zip(keys, semantics)):
            if key in self._memo:
                self.memo_hits += 1
            else:
                by_group.setdefault(sem, []).append(index)
        for sem, indices in by_group.items():
            # A pair may appear twice in one call; evaluate it once.
            unique: List[int] = []
            seen = set()
            for index in indices:
                if keys[index] not in seen:
                    seen.add(keys[index])
                    unique.append(index)
            self._evaluate_batch([keys[i] for i in unique], sem)
        return [self._memo[key] for key in keys]

    def evaluate(self, h: Any, k: Any) -> Tuple[float, float, float, int]:
        """(g1, g2, tau, damping code) at one sizing."""
        return self.evaluate_many([(h, k)])[0]

    def delay(self, h: Any, k: Any) -> float:
        """tau(h, k) alone — for objective-only callers (direct method,
        staging/power golden sections); shares the residual memo."""
        return self.evaluate(h, k)[2]

    def prime(self, key: Tuple[float, float, bool, bool],
              value: Tuple[float, float, float, int]) -> None:
        """Insert an externally computed lane (see :func:`prime_evaluators`)."""
        self._memo.setdefault(key, value)

    def __len__(self) -> int:
        return len(self._memo)

    def _evaluate_batch(self, keys: List[Tuple[float, float, bool, bool]],
                        semantics: ScalarSemantics) -> None:
        if not keys:
            return
        n = len(keys)
        line, driver = self.line, self.driver
        g1, g2, tau, codes = stationarity_residuals_v(
            [float(line.r)] * n, [float(line.l)] * n, [float(line.c)] * n,
            [float(driver.r_s)] * n, [float(driver.c_p)] * n,
            [float(driver.c_0)] * n,
            [key[0] for key in keys], [key[1] for key in keys],
            self.f, semantics=semantics)
        self.lanes_evaluated += n
        self.batch_calls += 1
        for j, key in enumerate(keys):
            self._memo[key] = (float(g1[j]), float(g2[j]), float(tau[j]),
                               int(codes[j]))


def prime_pairs(requests: Sequence[Tuple[StageEvaluator,
                                         Sequence[Tuple[Any, Any]]]]) -> int:
    """Pool uncached (h, k) points of many evaluators into kernel batches.

    ``requests`` pairs each :class:`StageEvaluator` with the sizings it is
    about to evaluate.  All points not already memoized are grouped by
    (semantics, f) — across evaluators, i.e. across line/driver
    configurations — and each group runs as one multi-configuration
    kernel batch whose lanes are bitwise identical to solo evaluation
    (lane values are batch-size invariant).  This is the engine of the
    lockstep Newton driver: N optimizations' probes and backtracking
    trials become one pipeline walk per iteration instead of N.

    A group whose batch fails (bad trial parameters, delay-solver
    failure) is skipped silently: its points simply evaluate — and raise
    — inside their own lanes, preserving per-lane fault isolation and
    per-lane exception types.

    Returns the number of lanes actually primed.
    """
    from ..errors import DelaySolverError

    groups: Dict[Tuple[ScalarSemantics, float],
                 List[Tuple[StageEvaluator,
                            Tuple[float, float, bool, bool]]]] = {}
    seen = set()
    for evaluator, pairs in requests:
        for pair in pairs:
            sem = evaluator.semantics_for([pair])
            key = evaluator._key(pair[0], pair[1], sem)
            if key in evaluator._memo:
                continue
            marker = (id(evaluator), key)
            if marker in seen:
                continue
            seen.add(marker)
            groups.setdefault((sem, evaluator.f), []).append(
                (evaluator, key))

    primed = 0
    for (sem, f), lanes in groups.items():
        try:
            g1, g2, tau, codes = stationarity_residuals_v(
                [float(ev.line.r) for ev, _ in lanes],
                [float(ev.line.l) for ev, _ in lanes],
                [float(ev.line.c) for ev, _ in lanes],
                [float(ev.driver.r_s) for ev, _ in lanes],
                [float(ev.driver.c_p) for ev, _ in lanes],
                [float(ev.driver.c_0) for ev, _ in lanes],
                [key[0] for _, key in lanes], [key[1] for _, key in lanes],
                f, semantics=sem)
        except (ParameterError, DelaySolverError):
            continue
        touched: Dict[int, StageEvaluator] = {}
        for j, (evaluator, key) in enumerate(lanes):
            evaluator.prime(key, (float(g1[j]), float(g2[j]),
                                  float(tau[j]), int(codes[j])))
            evaluator.lanes_evaluated += 1
            touched[id(evaluator)] = evaluator
            primed += 1
        for evaluator in touched.values():
            evaluator.batch_calls += 1
    return primed


def prime_evaluators(evaluators: Sequence[StageEvaluator],
                     seeds: Sequence[Tuple[Any, Any]]) -> int:
    """Warm N evaluators' memos with their seed points in one kernel batch.

    Used by the engine's ``BatchOptimizeJob``: the N seed evaluations that
    would otherwise each start a per-lane optimization cold are grouped by
    (semantics, f) and evaluated as single multi-configuration batches —
    lane results are bitwise identical to solo evaluation, so the
    subsequent optimizations replay the exact scalar convergence paths.

    Returns the number of lanes actually primed (see :func:`prime_pairs`
    for grouping and fault-isolation semantics).
    """
    return prime_pairs([(evaluator, [seed])
                        for evaluator, seed in zip(evaluators, seeds)])


def damping_name(code: int) -> str:
    """Damping enum value string for an integer classification code."""
    return DAMPING_BY_CODE[int(code)].value
