"""Exact and Padé transfer functions of the driver-line-load stage.

``exact_transfer`` evaluates the paper's Eq. 1,

    H(s) = 1 / ( [1 + s R_S (C_P + C_L)] cosh(theta h)
                 + [R_S/Z0 + s C_L Z0 + s^2 R_S C_P C_L Z0] sinh(theta h) )

both directly and (equivalently) as the (1,1) entry of the ABCD cascade of
Fig. 1; ``pade_transfer`` evaluates the two-pole approximation (Eq. 2).
Comparing the two — e.g. by numerically inverting the exact H(s)/s with the
Talbot method in :mod:`repro.analysis.laplace` — quantifies the only model
error the paper's optimizer incurs.
"""

from __future__ import annotations

import cmath
from typing import Callable

from . import abcd
from .moments import compute_moments
from .params import Stage

#: Below this |theta*h| the sinh/Z0-style products switch to series form.
_SERIES_THRESHOLD = 1e-6

#: Above this Re(theta*h) the denominator switches to its e^u asymptote
#: (cosh/sinh would overflow near Re(u) ~ 710; the relative error of the
#: asymptote at the threshold is e^{-2*350} ~ 1e-304, i.e. exact).
_ASYMPTOTIC_THRESHOLD = 350.0


def exact_transfer(stage: Stage) -> Callable[[complex], complex]:
    """Return H(s) of the stage, evaluated from the closed form of Eq. 1.

    The returned callable accepts any complex s (except s exactly on the
    negative-real branch cut handled by cmath.sqrt, which is benign for the
    right-half-plane contours used in numerical inversion).
    """
    line = stage.line
    h = stage.h
    drv = stage.sized_driver
    r_series, c_par, c_load = drv.r_series, drv.c_parasitic, drv.c_load

    def transfer(s: complex) -> complex:
        if s == 0.0:
            return 1.0
        z = line.r + s * line.l
        y = s * line.c
        u = cmath.sqrt(z * y) * h
        a_coef = 1.0 + s * r_series * (c_par + c_load)
        # b_coef multiplies sinh(u): R_S/Z0 + (s C_L + s^2 R_S C_P C_L) Z0,
        # written with the u-regular products y h / u and z h / u.
        b_coef_times_u = (r_series * y * h
                          + (s * c_load
                             + s * s * r_series * c_par * c_load) * z * h)
        if u.real > _ASYMPTOTIC_THRESHOLD:
            # cosh u ~ sinh u ~ e^u / 2; H ~ 2 e^{-u} / (A + B), avoiding
            # the overflow of cosh/sinh for electrically very long lines.
            return 2.0 * cmath.exp(-u) / (a_coef + b_coef_times_u / u)
        if abs(u) < _SERIES_THRESHOLD:
            u2 = u * u
            sinh_over_u = 1.0 + u2 / 6.0 + u2 * u2 / 120.0
            cosh_u = 1.0 + u2 / 2.0 + u2 * u2 / 24.0
        else:
            sinh_over_u = cmath.sinh(u) / u
            cosh_u = cmath.cosh(u)
        denominator = a_coef * cosh_u + b_coef_times_u * sinh_over_u
        return 1.0 / denominator

    return transfer


def exact_transfer_via_abcd(stage: Stage) -> Callable[[complex], complex]:
    """Return H(s) built as the ABCD cascade of Fig. 1 (cross-check path)."""
    line = stage.line
    h = stage.h
    drv = stage.sized_driver

    def transfer(s: complex) -> complex:
        if s == 0.0:
            return 1.0
        chain = (abcd.series_resistor(drv.r_series)
                 @ abcd.shunt_capacitor(drv.c_parasitic, s)
                 @ abcd.rlc_line(line, h, s)
                 @ abcd.shunt_capacitor(drv.c_load, s))
        return chain.voltage_transfer_open()

    return transfer


def pade_transfer(stage: Stage) -> Callable[[complex], complex]:
    """Return the two-pole Padé approximation H(s) = 1/(1 + s b1 + s^2 b2)."""
    moments = compute_moments(stage)
    b1, b2 = moments.b1, moments.b2

    def transfer(s: complex) -> complex:
        return 1.0 / (1.0 + s * b1 + s * s * b2)

    return transfer


def transfer_error_at(stage: Stage, s: complex) -> float:
    """|H_exact(s) - H_pade(s)| at a single complex frequency."""
    return abs(exact_transfer(stage)(s) - pade_transfer(stage)(s))
