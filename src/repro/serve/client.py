"""Small blocking HTTP client for ``repro-serve`` (stdlib only).

Used by the test suite, the ``repro-serve request`` subcommand and any
synchronous caller that wants to talk to a running server without
pulling in an HTTP library.  One keep-alive connection is maintained and
transparently re-established once if the server closed it between
requests (the normal fate of idle keep-alive sockets).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit


class ServeClientError(RuntimeError):
    """A non-OK response; carries the HTTP status and the error body."""

    def __init__(self, status: int, error: Dict[str, Any]) -> None:
        code = error.get("code", "unknown")
        message = error.get("message", "")
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.error = error


class ServeClient:
    """Blocking client bound to one ``repro-serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8451, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    @classmethod
    def from_url(cls, url: str, *, timeout: float = 30.0) -> "ServeClient":
        """Build a client from an ``http://host:port`` URL."""
        parts = urlsplit(url)
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported URL scheme {parts.scheme!r}")
        if not parts.hostname:
            raise ValueError(f"URL {url!r} has no host")
        return cls(parts.hostname, parts.port or 80, timeout=timeout)

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> Tuple[int, bytes]:
        for attempt in (0, 1):
            if self._connection is None:
                self._connection = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout)
            try:
                self._connection.request(
                    method, path, body=body,
                    headers={"Content-Type": "application/json"}
                    if body is not None else {})
                response = self._connection.getresponse()
                payload = response.read()
                return response.status, payload
            except (http.client.RemoteDisconnected,
                    http.client.BadStatusLine,
                    http.client.IncompleteRead, BrokenPipeError,
                    ConnectionResetError):
                # Stale keep-alive socket, or a response truncated by a
                # mid-write disconnect.  Every request here is a pure
                # evaluation (idempotent), so a resend is always safe:
                # reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _request_json(self, method: str, path: str,
                      body: Optional[bytes] = None) -> Dict[str, Any]:
        status, payload = self._request(method, path, body)
        document = json.loads(payload.decode("utf-8"))
        if status != 200 or (isinstance(document, dict)
                             and document.get("ok") is False):
            error = (document.get("error", {})
                     if isinstance(document, dict) else {})
            raise ServeClientError(status, error)
        return document

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------
    def evaluate(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """POST one request; returns the success body or raises."""
        body = json.dumps(request, allow_nan=False).encode("utf-8")
        return self._request_json("POST", "/v1/evaluate", body)

    def evaluate_many(self, requests: Sequence[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
        """POST a JSON-lines body; returns one response body per request.

        Per-request failures come back as ``{"ok": false, ...}`` entries
        rather than raising, mirroring the batcher's per-lane fault
        isolation.
        """
        body = ("\n".join(json.dumps(request, allow_nan=False)
                          for request in requests)
                + "\n").encode("utf-8")
        status, payload = self._request("POST", "/v1/evaluate", body)
        if status != 200:
            document = json.loads(payload.decode("utf-8"))
            raise ServeClientError(status, document.get("error", {}))
        return [json.loads(line)
                for line in payload.decode("utf-8").splitlines()
                if line.strip()]

    def healthz(self) -> Dict[str, Any]:
        return self._request_json("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request_json("GET", "/metrics")

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            finally:
                self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
