"""The evaluation service: batch evaluators + cache + batchers + metrics.

:class:`ReproService` is the in-process heart of ``repro-serve`` (the
HTTP server in :mod:`repro.serve.server` is a thin shell around it, and
the benchmark drives it directly).  One request flows::

    parse_request -> cache lookup -> DynamicBatcher.submit
                         |                 |
                      hit: answer       batch evaluator (kernel layer)
                      immediately          |
                         <- cache put <- per-lane envelope

The batch evaluators are where the serve layer meets the kernel layer:

* ``delay`` batches assemble one :class:`~repro.core.kernels.StageBatch`
  (heterogeneous lines/drivers/thresholds broadcast per lane) and run
  :func:`~repro.core.kernels.threshold_delay_v`,
* ``critical_inductance`` batches run
  :func:`~repro.core.kernels.critical_inductance_v`,
* ``optimize`` batches group lanes by shared (driver, f, method, tol,
  max_iterations) and run each group's Newton loops in lockstep via
  :func:`~repro.core.optimize.optimize_repeater_many`, replicating
  :class:`~repro.engine.jobs.OptimizeJob`'s RC re-seed retry per lane.

Every evaluator produces per-lane result dicts **bitwise identical** to
the corresponding solo ``job.run()`` (the scalar-vs-vector guarantees of
the kernel and evaluator layers) — except the optimize trace's execution
counters, which describe the lockstep pooling itself (see
:data:`EXACT_AT_ANY_BATCH_SIZE` for how the cache stays coherent with
``repro-batch`` regardless).  A batch of one skips the vectorized path
and calls ``job.run()`` directly — that scalar path is also the honest
baseline the serve benchmark compares micro-batching against.
"""

from __future__ import annotations

import asyncio
import math
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..core.elmore import rc_optimum
from ..core.kernels import (StageBatch, critical_inductance_v,
                            threshold_delay_v)
from ..core.optimize import optimize_repeater, optimize_repeater_many
from ..engine.backends import Backend, make_backend
from ..engine.jobs import _optimum_payload
from ..engine.store import ResultStore, flight_key
from ..errors import OptimizationError
from ..faults import hooks as _faults
from .batcher import (DEFAULT_MAX_BATCH_SIZE, DEFAULT_MAX_LINGER,
                      DEFAULT_MAX_QUEUE_DEPTH, DynamicBatcher)
from .metrics import ServerMetrics
from .protocol import (REQUEST_JOB_TYPES, DeadlineExceededError, ServeError,
                       ServeRequest, ServiceClosedError, encode_error,
                       encode_result, parse_request)


# ----------------------------------------------------------------------
# Batch evaluators (blocking; run on an executor thread).
# ----------------------------------------------------------------------
def _solo_envelope(job: Any, *, screen: bool = False) -> Dict[str, Any]:
    """Evaluate one job through its own ``run()`` with fault isolation.

    With ``screen`` true the result is additionally rejected if it
    contains non-finite numbers (the delay/critical kinds, whose
    payloads are always finite when healthy).  Optimize payloads are
    not screened: a *successful* optimum is finite where it matters,
    but its trace may legitimately record non-finite residuals from
    rejected probe steps.
    """
    try:
        envelope = {"ok": True, "result": job.run()}
    except Exception as exc:  # noqa: BLE001 — isolate any lane failure
        return {"ok": False, "error": str(exc),
                "error_type": type(exc).__name__}
    return _screened(envelope) if screen else envelope


def _finite(value: Any) -> bool:
    """Every number in ``value`` is finite (``None`` margins allowed)."""
    if isinstance(value, float):
        return math.isfinite(value)
    if isinstance(value, dict):
        return all(_finite(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return all(_finite(v) for v in value)
    return True


def _screened(envelope: Dict[str, Any]) -> Dict[str, Any]:
    """Fail a lane whose result contains NaN/inf instead of serving it.

    The wire protocol is strict JSON (no ``NaN`` tokens) and the cache
    must never store a non-finite payload, so a lane that solved to NaN
    — a numerical escape, or the ``kernels.threshold_delay.nan_lane``
    fault — is reported as that lane's own structured failure.
    """
    if envelope.get("ok") and not _finite(envelope["result"]):
        return {"ok": False,
                "error": "evaluation produced a non-finite result",
                "error_type": "DelaySolverError"}
    return envelope


def _stage_batch(jobs: Sequence[Any]) -> StageBatch:
    """Pack heterogeneous delay/critical jobs into one kernel batch."""
    return StageBatch.from_arrays(
        r=[job.line.r for job in jobs],
        l=[job.line.l for job in jobs],
        c=[job.line.c for job in jobs],
        r_s=[job.driver.r_s for job in jobs],
        c_p=[job.driver.c_p for job in jobs],
        c_0=[job.driver.c_0 for job in jobs],
        h=[job.h for job in jobs],
        k=[job.k for job in jobs])


def evaluate_delay_batch(jobs: Sequence[Any]) -> List[Dict[str, Any]]:
    """N delay requests as one ``threshold_delay_v`` call.

    Lane payloads match :meth:`repro.engine.jobs.DelayJob.run` bitwise
    (polish is rejected at the protocol boundary, so every lane is the
    unpolished kernel solve).  If the vectorized call refuses the batch
    (one bad lane poisons batch validation), every lane falls back to
    its solo scalar path so only the offending request fails.
    """
    if len(jobs) == 1:
        return [_solo_envelope(jobs[0], screen=True)]
    try:
        solved = threshold_delay_v(_stage_batch(jobs),
                                   [job.f for job in jobs])
    except Exception:  # noqa: BLE001 — isolate per lane via solo path
        return [_solo_envelope(job, screen=True) for job in jobs]
    damping = solved.damping_values()
    envelopes: List[Dict[str, Any]] = []
    for i, job in enumerate(jobs):
        tau = float(solved.tau[i])
        envelopes.append(_screened({"ok": True, "result": {
            "tau": tau,
            "delay_per_length": tau / job.h,
            "threshold": job.f,
            "damping": damping[i].value,
            "newton_iterations": 0}}))
    return envelopes


def evaluate_critical_inductance_batch(jobs: Sequence[Any]
                                       ) -> List[Dict[str, Any]]:
    """N critical-inductance requests as one ``critical_inductance_v``.

    Lane payloads match
    :meth:`repro.engine.jobs.CriticalInductanceJob.run` bitwise — both
    paths evaluate the same ``critical_inductance_terms`` expression
    graph.
    """
    if len(jobs) == 1:
        return [_solo_envelope(jobs[0], screen=True)]
    try:
        l_crit = critical_inductance_v(_stage_batch(jobs))
    except Exception:  # noqa: BLE001 — isolate per lane via solo path
        return [_solo_envelope(job, screen=True) for job in jobs]
    envelopes: List[Dict[str, Any]] = []
    for i, job in enumerate(jobs):
        lc = float(l_crit[i])
        margin = (job.line.l / lc) if lc > 0.0 else None
        envelopes.append(_screened({"ok": True, "result": {
            "l_crit": lc, "l": job.line.l, "damping_margin": margin}}))
    return envelopes


def evaluate_optimize_batch(jobs: Sequence[Any]) -> List[Dict[str, Any]]:
    """N optimize requests, lockstep-batched per shared configuration.

    Lanes sharing (driver, f, method, tol, max_iterations) run their
    Newton loops in lockstep through ``optimize_repeater_many`` —
    per-lane results, traces and failures bitwise identical to solo
    ``optimize_repeater`` — and each failed lane replays
    ``OptimizeJob``'s RC re-seed retry before reporting its own error.
    """
    if len(jobs) == 1:
        return [_solo_envelope(jobs[0])]
    envelopes: List[Optional[Dict[str, Any]]] = [None] * len(jobs)
    groups: Dict[Any, List[int]] = {}
    for i, job in enumerate(jobs):
        key = (job.driver, job.f, job.method, job.tol, job.max_iterations)
        groups.setdefault(key, []).append(i)
    for (driver, f, method, tol, max_iterations), indices in groups.items():
        try:
            outcomes = optimize_repeater_many(
                [jobs[i].line for i in indices], driver, f, method=method,
                initials=[jobs[i].initial for i in indices], tol=tol,
                max_iterations=max_iterations)
        except Exception:  # noqa: BLE001 — isolate per lane via solo path
            for i in indices:
                envelopes[i] = _solo_envelope(jobs[i])
            continue
        outcomes = list(outcomes)
        if _faults.ACTIVE is not None:
            # Named fault site: exactly one lane of the lockstep batch
            # diverges; the re-seed retry below must recover (or fail)
            # that lane alone.
            lane = _faults.pick_lane("serve.optimize.lane_error",
                                     len(outcomes))
            if lane is not None:
                outcomes[lane] = OptimizationError(
                    "injected fault at serve.optimize.lane_error: "
                    "lane diverged")
        for i, outcome in zip(indices, outcomes):
            job = jobs[i]
            retried = False
            if (isinstance(outcome, OptimizationError)
                    and job.retry_reseed and job.initial is not None):
                # The warm start failed: re-seed once from the RC
                # optimum, exactly as the solo OptimizeJob.run does.
                rc_ref = rc_optimum(job.line, job.driver)
                try:
                    outcome = optimize_repeater(
                        job.line, job.driver, job.f,
                        initial=(rc_ref.h_opt, rc_ref.k_opt),
                        method=job.method, tol=job.tol,
                        max_iterations=job.max_iterations)
                    retried = True
                except Exception as exc:  # noqa: BLE001 — lane isolation
                    outcome = exc
            if isinstance(outcome, Exception):
                envelopes[i] = {"ok": False, "error": str(outcome),
                                "error_type": type(outcome).__name__}
            else:
                envelopes[i] = {"ok": True,
                                "result": _optimum_payload(outcome, retried)}
    assert all(envelope is not None for envelope in envelopes)
    return envelopes  # type: ignore[return-value]


#: Blocking batch evaluator per served request class.
EVALUATORS: Dict[str, Callable[[Sequence[Any]], List[Dict[str, Any]]]] = {
    "delay": evaluate_delay_batch,
    "critical_inductance": evaluate_critical_inductance_batch,
    "optimize": evaluate_optimize_batch,
}

#: Kinds whose batched payloads are bitwise equal to solo ``job.run()``
#: at any batch size, so the service may write them into the shared
#: cache unconditionally.  Batched *optimize* lanes match solo runs in
#: every optimum/step/event field, but the trace's execution counters
#: (``lanes_evaluated``/``batch_calls``/``memo_hits``) describe the
#: lockstep pooling itself and legitimately differ — those results are
#: cached only when they were evaluated as a batch of one, keeping
#: every record in the store bitwise replayable by the engine.
EXACT_AT_ANY_BATCH_SIZE = frozenset({"delay", "critical_inductance"})

#: Default dispatch workers for a service-owned backend.
DEFAULT_SERVE_WORKERS = max(1, min(8, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# The service.
# ----------------------------------------------------------------------
class ReproService:
    """Dynamic-batching evaluation service over the kernel layer.

    Parameters
    ----------
    cache:
        Optional :class:`~repro.engine.store.ResultStore` (disk,
        memory, or tiered — see :func:`repro.engine.store.make_store`).
        Hits are answered without entering a batch; fresh successes are
        written back under the engine's salt/schema versioning, so the
        store is shared coherently with ``repro-batch``.  Every store
        ``get``/``put`` runs through the backend's auxiliary I/O lane
        (:meth:`~repro.engine.backends.Backend.run_io_async`), so a
        cache hit never opens files or decodes JSON on the event-loop
        thread (serial backends are inline by design).
    max_batch_size / max_linger / max_queue_depth:
        Batching policy applied to every request class's batcher.
    default_timeout:
        Queue deadline (seconds) applied to requests that do not carry
        their own ``timeout``; ``None`` means wait indefinitely.
    metrics / evaluators:
        Injection points for tests; default to a fresh
        :class:`ServerMetrics` and the kernel-layer :data:`EVALUATORS`.
    backend / backend_workers:
        The execution backend every batcher dispatches evaluator calls
        onto — a name from
        :data:`repro.engine.backends.BACKEND_NAMES` (default
        ``thread``, a bounded named pool of ``backend_workers``
        workers) or a live :class:`~repro.engine.backends.Backend`
        instance to share (the caller then owns its lifecycle).  A
        service-owned backend is shut down by :meth:`close` *after* the
        batchers drain, so in-flight dispatches always complete before
        the workers go away.
    """

    def __init__(self, *, cache: Optional[ResultStore] = None,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_linger: float = DEFAULT_MAX_LINGER,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 default_timeout: Optional[float] = None,
                 metrics: Optional[ServerMetrics] = None,
                 evaluators: Optional[Dict[str, Callable]] = None,
                 backend: Optional[Union[str, Backend]] = None,
                 backend_workers: Optional[int] = None) -> None:
        self.cache = cache
        self.default_timeout = default_timeout
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self._owns_backend = not isinstance(backend, Backend)
        self.backend = make_backend(
            backend if backend is not None else "thread",
            workers=backend_workers or DEFAULT_SERVE_WORKERS,
            thread_name_prefix="repro-serve-dispatch")
        table = evaluators if evaluators is not None else EVALUATORS
        self._batchers: Dict[str, DynamicBatcher] = {
            kind: DynamicBatcher(
                kind, table[kind], max_batch_size=max_batch_size,
                max_linger=max_linger, max_queue_depth=max_queue_depth,
                on_batch=self.metrics.record_batch,
                backend=self.backend)
            for kind in REQUEST_JOB_TYPES if kind in table}
        #: In-flight coalescing table: spec hash -> future resolving to
        #: ("ok", response) | ("error", exc).  Concurrent identical
        #: requests (across micro-batches too) collapse onto the first
        #: one's evaluation and receive its exact response body.
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def queue_depth(self) -> Dict[str, int]:
        """Current queued-lane count per request class."""
        return {kind: batcher.queue_depth
                for kind, batcher in self._batchers.items()}

    def backend_stats(self) -> Dict[str, Any]:
        """The shared backend's dispatch stats (the ``/metrics`` block)."""
        return self.backend.stats_payload()

    # ------------------------------------------------------------------
    # Request paths.
    # ------------------------------------------------------------------
    async def submit(self, request: ServeRequest) -> Dict[str, Any]:
        """Evaluate one admitted request; returns the response body.

        Raises the :class:`~repro.serve.protocol.ServeError` family on
        every failure path (the caller maps them to responses).

        Identical requests already in flight are coalesced: the first
        (leader) evaluates — at most one evaluation per unique spec no
        matter how many arrive concurrently — and every follower gets
        the leader's exact response body (or its failure; leader
        failure propagates, so followers stay answered-or-rejected).
        ``no_cache`` requests opt out: they asked for their own fresh
        evaluation.
        """
        start = time.perf_counter()
        kind = request.kind
        self.metrics.record_request(kind)
        try:
            if self._closed:
                raise ServiceClosedError(
                    "service is draining; request refused")
            batcher = self._batchers.get(kind)
            if batcher is None:
                raise ServiceClosedError(
                    f"no batcher serves request kind {kind!r}")

            key = None if request.no_cache else flight_key(request.job)
            if key is not None:
                leading = self._inflight.get(key)
                if leading is not None:
                    return await self._follow(kind, request, leading,
                                              start)
                future = asyncio.get_running_loop().create_future()
                self._inflight[key] = future
                try:
                    response = await self._evaluate(kind, request,
                                                    batcher, start)
                except BaseException as exc:
                    self._inflight.pop(key, None)
                    future.set_result(("error", exc))
                    raise
                self._inflight.pop(key, None)
                future.set_result(("ok", response))
                return response
            return await self._evaluate(kind, request, batcher, start)
        except ServeError as exc:
            self.metrics.record_outcome(kind, exc.code,
                                        time.perf_counter() - start)
            raise

    async def _evaluate(self, kind: str, request: ServeRequest,
                        batcher: DynamicBatcher,
                        start: float) -> Dict[str, Any]:
        """Leader path: cache lookup, batched evaluation, write-back.

        All store I/O runs on the backend's auxiliary I/O lane — a
        cache hit never opens a file or decodes JSON on the event-loop
        thread.
        """
        use_cache = self.cache is not None and not request.no_cache
        if use_cache:
            cached = await self.backend.run_io_async(
                lambda: self.cache.get(request.job))
            self.metrics.record_cache(kind, hit=cached is not None)
            if cached is not None:
                self.metrics.record_outcome(
                    kind, "ok", time.perf_counter() - start)
                return encode_result(kind, cached, cache="hit",
                                     batch_size=0)

        timeout = (request.timeout if request.timeout is not None
                   else self.default_timeout)
        result, batch_size = await batcher.submit(request.job,
                                                  timeout=timeout)
        if use_cache and (kind in EXACT_AT_ANY_BATCH_SIZE
                          or batch_size <= 1):
            try:
                await self.backend.run_io_async(
                    lambda: self.cache.put(request.job, result))
            except OSError:
                # A store failure (full disk, permissions, an
                # injected cache.put.os_error) must never fail a
                # request whose result is already in hand.
                self.metrics.record_cache_put_failure(kind)
        self.metrics.record_outcome(kind, "ok",
                                    time.perf_counter() - start)
        state = ("miss" if use_cache
                 else "bypass" if request.no_cache and self.cache
                 else "off")
        return encode_result(kind, result, cache=state,
                             batch_size=batch_size)

    async def _follow(self, kind: str, request: ServeRequest,
                      future: "asyncio.Future",
                      start: float) -> Dict[str, Any]:
        """Follower path: wait out the in-flight leader's evaluation.

        The future is shielded so one follower's deadline cannot
        cancel the shared evaluation other waiters (and the leader)
        depend on.
        """
        self.metrics.record_coalesced(kind)
        timeout = (request.timeout if request.timeout is not None
                   else self.default_timeout)
        try:
            if timeout is not None:
                status, value = await asyncio.wait_for(
                    asyncio.shield(future), timeout)
            else:
                status, value = await future
        except asyncio.TimeoutError:
            raise DeadlineExceededError(
                f"coalesced {kind} request timed out after {timeout:g}s "
                f"waiting for the in-flight evaluation") from None
        if status == "error":
            raise value
        self.metrics.record_outcome(kind, "ok",
                                    time.perf_counter() - start)
        return value

    async def handle(self, data: Any) -> tuple:
        """Full protocol path: parse → submit → encode.

        Never raises for protocol-visible failures; returns
        ``(http_status, response_body)``.
        """
        try:
            request = parse_request(data)
        except ServeError as exc:
            self.metrics.record_outcome("unknown", exc.code)
            return encode_error(exc)
        try:
            return 200, await self.submit(request)
        except ServeError as exc:
            return encode_error(exc)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Graceful drain: stop admitting, flush every batcher.

        Every request admitted before the call completes normally (its
        waiter gets a result or an explicit error); later submissions
        raise :class:`ServiceClosedError`.  A service-owned backend is
        shut down only after every batcher has drained, so in-flight
        dispatches finish on live workers.  Idempotent.
        """
        self._closed = True
        await asyncio.gather(*(batcher.close()
                               for batcher in self._batchers.values()))
        if self._owns_backend:
            self.backend.close()
