"""``repro-serve`` — the evaluation-service command line.

Usage::

    repro-serve serve --port 8451 --max-batch-size 64 --linger-ms 5
    repro-serve serve --no-cache --queue-depth 512 --default-timeout 30
    repro-serve request --url http://127.0.0.1:8451 request.json
    echo '{"kind": "delay", ...}' | repro-serve request -
    repro-serve bench --requests 256 --out BENCH_serve.json

``serve`` runs the asyncio server in the foreground until SIGINT/SIGTERM,
then drains gracefully (in-flight and queued requests all complete) and
prints the metrics summary.  ``request`` posts one JSON request document
— or a JSON-lines file of several, which the server micro-batches — and
pretty-prints the response(s).  ``bench`` runs the in-process
micro-batching benchmark without sockets.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Any, List, Optional

from ..engine.backends import BACKEND_NAMES
from ..engine.store import add_store_arguments, describe_store, \
    store_from_args
from .bench import run_backend_benchmark, run_benchmark, strip_responses
from .client import ServeClient, ServeClientError
from .server import ReproServer
from .service import ReproService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Asyncio evaluation service with dynamic "
                    "micro-batching over the vectorized kernel layer.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    serve_parser = subparsers.add_parser(
        "serve", help="run the evaluation server in the foreground")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8451,
                              help="TCP port (0 = ephemeral)")
    serve_parser.add_argument("--max-batch-size", type=int, default=64,
                              metavar="N",
                              help="lanes per dispatched batch")
    serve_parser.add_argument("--linger-ms", type=float, default=5.0,
                              metavar="MS",
                              help="max milliseconds the first queued "
                                   "request waits for company")
    serve_parser.add_argument("--queue-depth", type=int, default=1024,
                              metavar="N",
                              help="admission-control bound per request "
                                   "class (excess requests get 429)")
    serve_parser.add_argument("--default-timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="queue deadline for requests without "
                                   "their own timeout")
    serve_parser.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="result cache directory (default: "
                                   "$REPRO_CACHE_DIR or ./.repro-cache)")
    serve_parser.add_argument("--no-cache", action="store_true",
                              help="serve without the result cache")
    add_store_arguments(serve_parser)
    serve_parser.add_argument("--backend", choices=BACKEND_NAMES,
                              default="thread",
                              help="execution backend batch evaluations "
                                   "dispatch onto (default: thread)")
    serve_parser.add_argument("--backend-workers", type=int, default=None,
                              metavar="N",
                              help="backend worker count (default: "
                                   "min(8, cpu count))")

    request_parser = subparsers.add_parser(
        "request", help="post a request document to a running server")
    request_parser.add_argument("document",
                                help="path to a JSON / JSON-lines request "
                                     "file, or '-' for stdin")
    request_parser.add_argument("--url", default="http://127.0.0.1:8451",
                                help="server base URL")
    request_parser.add_argument("--timeout", type=float, default=30.0,
                                help="client-side socket timeout")

    bench_parser = subparsers.add_parser(
        "bench", help="in-process micro-batching throughput benchmark")
    bench_parser.add_argument("--requests", type=int, default=256,
                              metavar="N")
    bench_parser.add_argument("--reps", type=int, default=3, metavar="N",
                              help="repetitions per arm (best-of)")
    bench_parser.add_argument("--max-batch-size", type=int, default=None,
                              metavar="N",
                              help="batched arm's cap (default: N requests)")
    bench_parser.add_argument("--backends", action="store_true",
                              help="run the thread-vs-process backend "
                                   "benchmark (optimize-heavy stream) "
                                   "instead of the micro-batching one")
    bench_parser.add_argument("--workers", type=int, default=4, metavar="N",
                              help="backend workers for --backends")
    bench_parser.add_argument("--out", default=None, metavar="FILE",
                              help="write the JSON report here")
    return parser


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def _serve(args: argparse.Namespace) -> int:
    if args.max_batch_size < 1 or args.queue_depth < 1:
        print("repro-serve: --max-batch-size and --queue-depth must be "
              ">= 1", file=sys.stderr)
        return 2
    if args.linger_ms < 0:
        print(f"repro-serve: --linger-ms must be >= 0, got "
              f"{args.linger_ms}", file=sys.stderr)
        return 2
    if args.backend_workers is not None and args.backend_workers < 1:
        print("repro-serve: --backend-workers must be >= 1",
              file=sys.stderr)
        return 2
    if args.no_cache:
        cache = None
    else:
        try:
            cache = store_from_args(args)
        except ValueError as exc:
            print(f"repro-serve: {exc}", file=sys.stderr)
            return 2
    service = ReproService(
        cache=cache, max_batch_size=args.max_batch_size,
        max_linger=args.linger_ms / 1000.0,
        max_queue_depth=args.queue_depth,
        default_timeout=args.default_timeout,
        backend=args.backend, backend_workers=args.backend_workers)
    server = ReproServer(service, host=args.host, port=args.port)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-Unix event loops
                pass
        await server.start()
        print(f"repro-serve: listening on {server.url} "
              f"(batch<= {args.max_batch_size}, linger "
              f"{args.linger_ms:g}ms, queue<= {args.queue_depth}, "
              f"backend {service.backend.name}x{service.backend.workers}, "
              f"cache {describe_store(cache)})",
              flush=True)
        await stop.wait()
        print("repro-serve: draining ...", flush=True)
        await server.shutdown()

    asyncio.run(_main())
    print(service.metrics.format_summary())
    return 0


# ----------------------------------------------------------------------
# request
# ----------------------------------------------------------------------
def _read_documents(path: str) -> List[Any]:
    text = (sys.stdin.read() if path == "-"
            else open(path, "r", encoding="utf-8").read())
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty request document")
    try:
        return [json.loads(line) for line in lines]
    except json.JSONDecodeError:
        # A single pretty-printed (multi-line) JSON object is fine too.
        return [json.loads(text)]


def _request(args: argparse.Namespace) -> int:
    try:
        documents = _read_documents(args.document)
    except (OSError, ValueError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    with ServeClient.from_url(args.url, timeout=args.timeout) as client:
        try:
            if len(documents) == 1:
                responses = [client.evaluate(documents[0])]
            else:
                responses = client.evaluate_many(documents)
        except ServeClientError as exc:
            print(json.dumps({"ok": False, "error": exc.error}, indent=2,
                             sort_keys=True, allow_nan=False))
            return 1
        except (ConnectionError, OSError) as exc:
            print(f"repro-serve: cannot reach {args.url}: {exc}",
                  file=sys.stderr)
            return 2
    for response in responses:
        print(json.dumps(response, indent=2, sort_keys=True,
                         allow_nan=False))
    return 0 if all(r.get("ok") for r in responses) else 1


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def _bench(args: argparse.Namespace) -> int:
    if args.requests < 1 or args.reps < 1:
        print("repro-serve: --requests and --reps must be >= 1",
              file=sys.stderr)
        return 2
    if args.backends:
        if args.workers < 1:
            print("repro-serve: --workers must be >= 1", file=sys.stderr)
            return 2
        report = run_backend_benchmark(
            args.requests, workers=args.workers, reps=args.reps,
            max_batch_size=args.max_batch_size or 6)
        persisted = strip_responses(report)
        print(f"{report['requests']} optimize requests, "
              f"{report['workers']} workers: "
              f"process {report['process']['seconds']:.4f}s "
              f"({report['process']['throughput_rps']:.0f} req/s) vs "
              f"thread {report['thread']['seconds']:.4f}s "
              f"({report['thread']['throughput_rps']:.0f} req/s) -> "
              f"{report['process_over_thread']:.2f}x")
    else:
        report = run_benchmark(args.requests, reps=args.reps,
                               max_batch_size=args.max_batch_size)
        persisted = strip_responses(report)
        print(f"{report['requests']} requests: "
              f"batched {report['batched']['seconds']:.4f}s "
              f"({report['batched']['throughput_rps']:.0f} req/s) vs "
              f"solo {report['solo']['seconds']:.4f}s "
              f"({report['solo']['throughput_rps']:.0f} req/s) -> "
              f"{report['speedup']:.2f}x")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(persisted, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        print(f"report written to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _serve(args)
    if args.command == "request":
        return _request(args)
    return _bench(args)


if __name__ == "__main__":
    sys.exit(main())
