"""Dynamic micro-batching: coalesce concurrent requests into one batch.

The :class:`DynamicBatcher` is the serve layer's answer to the kernel
layer's economics: a vectorized ``threshold_delay_v`` call amortizes its
fixed cost over every lane, but interactive requests arrive one at a
time.  Each request class owns one batcher; admitted jobs queue as
*lanes* and a single drain task turns the queue into batches under a
max-batch-size / max-linger policy, hands each batch to a (blocking)
batch evaluator on an execution backend, and fans the per-lane
envelopes back to per-request futures.

Policy, in order of precedence:

* a batch is dispatched as soon as ``max_batch_size`` lanes are queued;
* otherwise the first queued lane waits at most ``max_linger`` seconds
  for company (the latency the slowest rider pays for batching);
* on ``close()`` lingering is abandoned and the queue is flushed —
  every admitted lane still completes (graceful drain), while new
  submissions are refused with :class:`ServiceClosedError`.

Admission control is a bounded queue: when ``max_queue_depth`` lanes
are already waiting, ``submit`` raises :class:`QueueFullError`
immediately (the 429 path) instead of building an unbounded backlog.
Per-request deadlines are enforced at dispatch time: a lane whose
deadline passed while it queued is expired with
:class:`DeadlineExceededError` and never evaluated.

Dispatch is where the backend seam sits.  Up to ``max_inflight``
batches evaluate concurrently: the drain loop waits for a free dispatch
slot *before* popping lanes (so deadline checks happen at true dispatch
time and ``queue_depth`` keeps meaning "not yet dispatched"), then
hands the batch to a :class:`repro.engine.backends.Backend` via
``run_call_async`` as its own task and immediately returns to the
queue.  With no backend the batcher falls back to a bounded, *named*
thread pool it owns and shuts down on ``close()`` — never the event
loop's anonymous default executor, which is process-global, unbounded,
and shared with any other ``run_in_executor(None, ...)`` caller.
``max_inflight=1`` (the no-backend default) reproduces the historical
one-batch-at-a-time behavior exactly.

Fault isolation is per lane: evaluators return one envelope per job
(``{"ok": True, "result": ...}`` or ``{"ok": False, "error": ...,
"error_type": ...}``), so one diverging optimization fails only its own
future.  An evaluator that raises outright fails exactly the lanes of
its batch — never the queue behind it.
"""

from __future__ import annotations

import asyncio
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (Any, Callable, Deque, Dict, List, Optional, Sequence, Set,
                    Tuple)

from ..engine.backends import Backend
from ..faults import hooks as _faults
from .protocol import (DeadlineExceededError, EvaluationFailedError,
                       QueueFullError, ServiceClosedError)

#: Default maximum lanes per dispatched batch.
DEFAULT_MAX_BATCH_SIZE = 64

#: Default seconds the first queued lane waits for company.
DEFAULT_MAX_LINGER = 0.005

#: Default admission-control bound on queued (not yet dispatched) lanes.
DEFAULT_MAX_QUEUE_DEPTH = 1024


@dataclass
class _Lane:
    """One queued request: its job, its future, and its deadline."""

    job: Any
    future: "asyncio.Future[Tuple[Dict[str, Any], int]]"
    enqueued_at: float
    deadline: Optional[float]


class DynamicBatcher:
    """Queue of one request class, drained into batched evaluations.

    Parameters
    ----------
    kind:
        Request-class label (used in error messages and metrics).
    evaluate:
        Blocking callable ``(jobs) -> [envelope, ...]`` run on the
        backend; must return exactly one envelope per job, in order.
    max_batch_size / max_linger / max_queue_depth:
        The batching policy (see module docstring).
    on_batch:
        Optional ``(kind, size)`` callback fired per dispatched batch —
        the metrics registry's batch-size histogram hook.
    backend:
        Optional shared :class:`~repro.engine.backends.Backend` the
        evaluator calls are dispatched onto (the caller owns its
        lifecycle).  Without one the batcher lazily creates — and on
        ``close()`` shuts down — its own bounded named thread pool.
    max_inflight:
        Dispatched batches allowed to evaluate concurrently.  Defaults
        to the backend's worker count (1 without a backend, preserving
        the strict one-batch-at-a-time history).
    """

    def __init__(self, kind: str,
                 evaluate: Callable[[Sequence[Any]], List[Dict[str, Any]]],
                 *, max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_linger: float = DEFAULT_MAX_LINGER,
                 max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
                 on_batch: Optional[Callable[[str, int], None]] = None,
                 backend: Optional[Backend] = None,
                 max_inflight: Optional[int] = None
                 ) -> None:
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_linger < 0.0:
            raise ValueError(f"max_linger must be >= 0, got {max_linger}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_inflight is None:
            max_inflight = backend.workers if backend is not None else 1
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.kind = kind
        self.max_batch_size = max_batch_size
        self.max_linger = max_linger
        self.max_queue_depth = max_queue_depth
        self.max_inflight = max_inflight
        self.on_batch = on_batch
        self.backend = backend
        self._evaluate = evaluate
        self._pending: Deque[_Lane] = deque()
        self._inflight: Set["asyncio.Task[None]"] = set()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Lanes admitted but not yet dispatched into a batch."""
        return len(self._pending)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------
    async def submit(self, job: Any, *, timeout: Optional[float] = None
                     ) -> Tuple[Dict[str, Any], int]:
        """Queue ``job`` and await its result.

        Returns ``(result_dict, batch_size)`` where ``batch_size`` is
        the number of lanes evaluated together with this one.  Raises
        :class:`QueueFullError`, :class:`DeadlineExceededError`,
        :class:`EvaluationFailedError` or :class:`ServiceClosedError`.
        """
        if self._closed:
            raise ServiceClosedError(
                f"{self.kind} batcher is draining; request refused")
        if len(self._pending) >= self.max_queue_depth:
            raise QueueFullError(
                f"{self.kind} queue is full "
                f"({self.max_queue_depth} requests pending)")
        loop = asyncio.get_running_loop()
        now = loop.time()
        lane = _Lane(job=job, future=loop.create_future(), enqueued_at=now,
                     deadline=(now + timeout) if timeout is not None
                     else None)
        self._pending.append(lane)
        self._ensure_draining()
        assert self._wakeup is not None
        self._wakeup.set()
        return await lane.future

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Graceful drain: refuse new work, flush every admitted lane.

        Idempotent.  Returns once the queue is empty, every in-flight
        dispatch has fanned out, and the owned executor (if one was
        created) is shut down — no admitted request is ever dropped
        silently and no worker thread outlives the batcher.
        """
        self._closed = True
        if self._wakeup is not None:
            self._wakeup.set()
        if self._task is not None:
            task = self._task
            try:
                await task
            except asyncio.CancelledError:
                if not task.cancelled():
                    raise  # close() itself was cancelled mid-await
            # repro: ignore[RPR007] -- the drain task can die with any
            # exception type; close() must still run the flush below so
            # every admitted lane is answered-or-rejected (the abnormal
            # death itself is already surfaced per-lane as rejections).
            except Exception:  # noqa: BLE001 — flush below regardless
                pass
            self._task = None
        # Flush in-flight dispatches: every batch already handed to the
        # backend completes and fans out before the workers go away.
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        # Defense in depth for the close/drain race: if the drain task
        # ever exits with lanes still queued (it crashed, or a lane was
        # admitted in the same event-loop step close() began), those
        # lanes are rejected explicitly — answered-or-rejected, never
        # silently lost.
        while self._pending:
            lane = self._pending.popleft()
            if not lane.future.done():
                lane.future.set_exception(ServiceClosedError(
                    f"{self.kind} batcher closed before the lane "
                    f"dispatched"))
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _ensure_draining(self) -> None:
        if self._wakeup is None:
            self._wakeup = asyncio.Event()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop())

    # ------------------------------------------------------------------
    # The drain loop.
    # ------------------------------------------------------------------
    async def _drain_loop(self) -> None:
        loop = asyncio.get_running_loop()
        wakeup = self._wakeup
        assert wakeup is not None
        while True:
            if not self._pending:
                if self._closed:
                    return
                wakeup.clear()
                if self._pending or self._closed:
                    continue  # raced with a submit/close between checks
                await wakeup.wait()
                continue

            # Linger: wait for company until the batch fills, the first
            # lane's linger budget runs out, or the batcher is closing.
            linger_until = self._pending[0].enqueued_at + self.max_linger
            while (len(self._pending) < self.max_batch_size
                   and not self._closed):
                remaining = linger_until - loop.time()
                if remaining <= 0.0:
                    break
                wakeup.clear()
                try:
                    await asyncio.wait_for(wakeup.wait(), remaining)
                except asyncio.TimeoutError:
                    break

            # Dispatch-slot wait *before* popping lanes: queued lanes
            # stay visible to admission control and their deadlines are
            # judged at the moment a slot actually frees up.
            while len(self._inflight) >= self.max_inflight:
                done, _ = await asyncio.wait(
                    set(self._inflight),
                    return_when=asyncio.FIRST_COMPLETED)
                self._inflight.difference_update(done)

            if _faults.ACTIVE is not None:
                # Named fault site: the drain loop stalls before popping
                # lanes, widening the linger/deadline/close races.
                pause = _faults.delay_duration("batcher.dispatch.delay")
                if pause > 0.0:
                    await asyncio.sleep(pause)

            size = min(self.max_batch_size, len(self._pending))
            lanes = [self._pending.popleft() for _ in range(size)]
            now = loop.time()
            live: List[_Lane] = []
            for lane in lanes:
                if lane.future.done():  # waiter went away (cancelled)
                    continue
                if lane.deadline is not None and now > lane.deadline:
                    lane.future.set_exception(DeadlineExceededError(
                        f"{self.kind} request expired after "
                        f"{now - lane.enqueued_at:.3f}s in queue "
                        f"(timeout {lane.deadline - lane.enqueued_at:.3f}s)"))
                    continue
                live.append(lane)
            if not live:
                continue

            if self.on_batch is not None:
                try:
                    self.on_batch(self.kind, len(live))
                # repro: ignore[RPR007] -- the on_batch metrics hook is
                # advisory and caller-supplied: a raising hook once
                # killed the drain task here, silently orphaning every
                # popped lane; answered-or-rejected outranks the
                # histogram, so any hook failure is deliberately dropped.
                except Exception:  # noqa: BLE001 — metrics are advisory
                    pass

            task = loop.create_task(self._dispatch_batch(live))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _dispatch_batch(self, live: List[_Lane]) -> None:
        """Evaluate one popped batch and fan its envelopes out.

        Runs as its own task so the drain loop can keep popping while
        the backend evaluates.  Never raises: everything batch-scoped —
        the evaluator call, the envelope count check, and the fan-out
        itself (a malformed envelope raises here) — fails exactly this
        batch's lanes and leaves the drain task alive for the queue
        behind it.  No admitted lane is ever orphaned by an internal
        error.
        """
        try:
            if _faults.ACTIVE is not None:
                _faults.fire("batcher.evaluate.error")
            envelopes = await self._run_evaluate(
                [lane.job for lane in live])
            if _faults.ACTIVE is not None:
                envelopes = _faults.mutate(
                    "batcher.envelope.malformed", envelopes)
            if len(envelopes) != len(live):
                raise RuntimeError(
                    f"{self.kind} evaluator returned "
                    f"{len(envelopes)} envelopes for {len(live)} jobs")
            for lane, envelope in zip(live, envelopes):
                if lane.future.done():
                    continue
                if envelope.get("ok"):
                    lane.future.set_result(
                        (envelope["result"], len(live)))
                else:
                    lane.future.set_exception(EvaluationFailedError(
                        envelope.get("error", "evaluation failed"),
                        error_type=envelope.get("error_type")))
        except Exception as exc:  # noqa: BLE001 — fail this batch only
            for lane in live:
                if not lane.future.done():
                    lane.future.set_exception(EvaluationFailedError(
                        f"{self.kind} batch evaluation failed: {exc}",
                        error_type=type(exc).__name__))

    async def _run_evaluate(self, jobs: List[Any]
                            ) -> List[Dict[str, Any]]:
        """One evaluator call, placed on the backend seam."""
        if self.backend is not None:
            return await self.backend.run_call_async(self._evaluate, jobs)
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_inflight,
                thread_name_prefix=f"repro-batcher-{self.kind}")
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, self._evaluate, jobs)
