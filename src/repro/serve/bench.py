"""Serving-throughput benchmark: micro-batched vs batch-size-1 serving.

The experiment mirrors an inference server's canonical claim: take one
stream of N concurrent single-point requests and serve it twice through
the *same* :class:`~repro.serve.service.ReproService` machinery — once
with micro-batching enabled (``max_batch_size >= N``) and once degraded
to ``max_batch_size=1`` (every request evaluated solo through the scalar
path, which is exactly what N independent ``DelayJob.run()`` calls would
cost).  The ratio of wall times is the dynamic batcher's throughput win;
the kernel layer's scalar-vs-vector bitwise guarantee makes the two runs
answer-identical, which ``benchmarks/test_bench_serve.py`` asserts.

Used by both ``repro-serve bench`` and the benchmark suite.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import units
from ..core.elmore import rc_optimum
from ..engine.backends import make_backend
from ..engine.jobs import DelayJob, OptimizeJob
from ..tech import NODE_100NM
from .protocol import ServeRequest
from .service import ReproService

#: Linger generous enough that a burst submitted in one loop pass always
#: coalesces; the burst fills the batch long before the linger expires.
BENCH_LINGER = 0.05


def build_delay_jobs(n: int) -> List[DelayJob]:
    """N heterogeneous delay requests: an inductance grid at the 100 nm
    node's RC-optimal sizing — the serving-shaped version of the kernel
    benchmark's sweep."""
    node = NODE_100NM
    rc_ref = rc_optimum(node.line, node.driver)
    l_values = np.linspace(0.0, 2.0 * units.NH_PER_MM, n)
    return [DelayJob(line=node.line.with_inductance(float(l)),
                     driver=node.driver, h=rc_ref.h_opt, k=rc_ref.k_opt)
            for l in l_values]


def build_optimize_jobs(n: int) -> List[OptimizeJob]:
    """N heterogeneous repeater optimizations (Eqs. 7–8): an inductance
    grid at the 100 nm node, each lane warm-started from its own RC
    optimum.  The optimize-heavy, CPU-bound workload where backend
    parallelism — not micro-batching alone — decides throughput."""
    node = NODE_100NM
    l_values = np.linspace(0.2 * units.NH_PER_MM, 2.0 * units.NH_PER_MM, n)
    jobs = []
    for l in l_values:
        line = node.line.with_inductance(float(l))
        seed = rc_optimum(line, node.driver)
        jobs.append(OptimizeJob(line=line, driver=node.driver,
                                initial=(seed.h_opt, seed.k_opt)))
    return jobs


def serve_once(jobs: Sequence[Any], *, max_batch_size: int,
               max_linger: float = BENCH_LINGER
               ) -> Tuple[float, List[Dict[str, Any]], Dict[str, int]]:
    """Serve every job concurrently through one fresh service.

    Returns ``(wall_seconds, response_bodies, batch_size_histogram)``;
    responses are in job order.  The cache is off so both benchmark arms
    measure evaluation, not replay.  Dispatch is pinned to one worker
    (``backend_workers=1``) so the micro-batching comparison measures
    coalescing alone, exactly as it did before the backend seam existed.
    """

    async def _run() -> Tuple[float, List[Dict[str, Any]], Dict[str, int]]:
        service = ReproService(cache=None, max_batch_size=max_batch_size,
                               max_linger=max_linger,
                               max_queue_depth=max(len(jobs), 1),
                               backend="thread", backend_workers=1)
        start = time.perf_counter()
        responses = await asyncio.gather(
            *(service.submit(ServeRequest(job=job)) for job in jobs))
        elapsed = time.perf_counter() - start
        histogram = {f"{kind}:{size}": count
                     for (kind, size), count in
                     sorted(service.metrics.batch_sizes.items())}
        await service.close()
        return elapsed, list(responses), histogram

    return asyncio.run(_run())


def run_benchmark(n_requests: int = 256, *, reps: int = 3,
                  max_batch_size: Optional[int] = None,
                  max_linger: float = BENCH_LINGER) -> Dict[str, Any]:
    """Time micro-batched vs batch-size-1 serving of one request stream.

    Each arm reports its best-of-``reps`` wall time (the standard
    defence against scheduler noise); the returned report carries both
    arms' timings, throughputs, batch-size histograms and the speedup.
    """
    jobs = build_delay_jobs(n_requests)
    batch_cap = max_batch_size if max_batch_size is not None else n_requests

    # Untimed warmup: the first passes of a process pay numpy and
    # thread-pool spin-up that neither serving mode should be billed
    # for, and the spin-up cost scales with the lane count — so warm
    # each arm once at full size before timing either.
    serve_once(jobs, max_batch_size=batch_cap, max_linger=max_linger)
    serve_once(jobs, max_batch_size=batch_cap, max_linger=max_linger)
    serve_once(jobs, max_batch_size=1, max_linger=max_linger)

    def best_of(cap: int) -> Tuple[float, List[Dict[str, Any]],
                                   Dict[str, int]]:
        best = float("inf")
        responses: List[Dict[str, Any]] = []
        histogram: Dict[str, int] = {}
        for _ in range(reps):
            elapsed, responses, histogram = serve_once(
                jobs, max_batch_size=cap, max_linger=max_linger)
            best = min(best, elapsed)
        return best, responses, histogram

    batched_seconds, batched_responses, batched_hist = best_of(batch_cap)
    solo_seconds, solo_responses, solo_hist = best_of(1)

    return {
        "requests": n_requests,
        "reps": reps,
        "max_linger": max_linger,
        "batched": {
            "max_batch_size": batch_cap,
            "seconds": batched_seconds,
            "throughput_rps": n_requests / batched_seconds,
            "batch_size_histogram": batched_hist,
        },
        "solo": {
            "max_batch_size": 1,
            "seconds": solo_seconds,
            "throughput_rps": n_requests / solo_seconds,
            "batch_size_histogram": solo_hist,
        },
        "speedup": solo_seconds / batched_seconds,
        "_responses": {"batched": batched_responses,
                       "solo": solo_responses},
    }


def _backend_arm_once(jobs: Sequence[Any], backend: Any, *,
                      max_batch_size: int, max_linger: float
                      ) -> Tuple[float, List[Dict[str, Any]]]:
    """One timed pass of the shared-backend service over ``jobs``."""

    async def _run() -> Tuple[float, List[Dict[str, Any]]]:
        service = ReproService(cache=None, backend=backend,
                               max_batch_size=max_batch_size,
                               max_linger=max_linger,
                               max_queue_depth=max(len(jobs), 1))
        start = time.perf_counter()
        responses = await asyncio.gather(
            *(service.submit(ServeRequest(job=job)) for job in jobs))
        elapsed = time.perf_counter() - start
        await service.close()  # the caller owns the backend instance
        return elapsed, list(responses)

    return asyncio.run(_run())


def run_backend_benchmark(n_requests: int = 48, *, workers: int = 4,
                          reps: int = 3, max_batch_size: int = 6,
                          max_linger: float = BENCH_LINGER
                          ) -> Dict[str, Any]:
    """Thread vs process backend under an optimize-heavy request stream.

    The same ``n_requests`` concurrent repeater optimizations are served
    twice through identical services differing only in the shared
    backend.  ``max_batch_size`` is kept small so the stream splits into
    many batches and up to ``workers`` of them dispatch concurrently —
    the regime where the thread backend is GIL-bound (the Newton loops
    are pure-Python + small-array numpy) while warm process workers
    genuinely parallelize.  Each arm reports its best-of-``reps`` wall
    time after an untimed warmup pass (which also pays the process
    pool's spawn + import cost, amortized across every later batch by
    design).
    """
    jobs = build_optimize_jobs(n_requests)
    arms: Dict[str, Any] = {}
    responses: Dict[str, List[Dict[str, Any]]] = {}
    for name in ("thread", "process"):
        backend = make_backend(
            name, workers=workers,
            thread_name_prefix="repro-bench-dispatch")
        backend.start()
        try:
            _backend_arm_once(jobs, backend,
                              max_batch_size=max_batch_size,
                              max_linger=max_linger)  # warmup, untimed
            best = float("inf")
            arm_responses: List[Dict[str, Any]] = []
            for _ in range(reps):
                elapsed, arm_responses = _backend_arm_once(
                    jobs, backend, max_batch_size=max_batch_size,
                    max_linger=max_linger)
                best = min(best, elapsed)
            arms[name] = {
                "seconds": best,
                "throughput_rps": n_requests / best,
                "backend": backend.stats_payload(),
            }
            responses[name] = arm_responses
        finally:
            backend.close()
    return {
        "requests": n_requests,
        "workers": workers,
        "reps": reps,
        "cpu_count": os.cpu_count(),
        "max_batch_size": max_batch_size,
        "max_linger": max_linger,
        "thread": arms["thread"],
        "process": arms["process"],
        "process_over_thread": (arms["thread"]["seconds"]
                                / arms["process"]["seconds"]),
        "_responses": responses,
    }


def strip_responses(report: Dict[str, Any]) -> Dict[str, Any]:
    """Drop the raw response bodies before persisting a report to JSON."""
    return {key: value for key, value in report.items()
            if key != "_responses"}
