"""Server-side observability: counters, histograms, latency percentiles.

The :class:`ServerMetrics` registry is the serve twin of the engine's
:class:`~repro.engine.metrics.BatchMetrics`: request counts by class and
outcome, the dispatched batch-size histogram (the direct measure of how
well micro-batching is coalescing traffic), cache accounting, and
response-latency percentiles computed by the *same*
:func:`repro.engine.metrics.latency_percentiles` helper the ``repro-batch``
CLI footer uses — a ``/metrics`` scrape and a batch-run summary report
latency identically.

Latency samples are kept in a bounded ring (the most recent
``LATENCY_WINDOW`` requests), so a long-running server's percentiles
track current behaviour and memory stays O(1).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional

from ..engine.metrics import latency_percentiles

#: Latency samples retained for the percentile window.
LATENCY_WINDOW = 4096

#: Outcome labels recorded per request.
OUTCOMES = ("ok", "evaluation_failed", "bad_request", "queue_full",
            "deadline_exceeded", "shutting_down", "internal")


@dataclass
class ServerMetrics:
    """Mutable registry the service updates and ``/metrics`` renders."""

    requests: Counter = field(default_factory=Counter)      #: by kind
    outcomes: Counter = field(default_factory=Counter)      #: (kind, code)
    cache_hits: Counter = field(default_factory=Counter)    #: by kind
    cache_misses: Counter = field(default_factory=Counter)  #: by kind
    cache_put_failures: Counter = field(default_factory=Counter)  #: by kind
    coalesced: Counter = field(default_factory=Counter)     #: by kind
    batch_sizes: Counter = field(default_factory=Counter)   #: (kind, size)
    batches: Counter = field(default_factory=Counter)       #: by kind
    latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    # ------------------------------------------------------------------
    # Recording (called by the service / batchers).
    # ------------------------------------------------------------------
    def record_request(self, kind: str) -> None:
        self.requests[kind] += 1

    def record_outcome(self, kind: str, code: str,
                       latency: Optional[float] = None) -> None:
        self.outcomes[(kind, code)] += 1
        if latency is not None:
            self.latencies.append(float(latency))

    def record_cache(self, kind: str, hit: bool) -> None:
        (self.cache_hits if hit else self.cache_misses)[kind] += 1

    def record_cache_put_failure(self, kind: str) -> None:
        """A computed result could not be written back to the store."""
        self.cache_put_failures[kind] += 1

    def record_coalesced(self, kind: str) -> None:
        """A request answered by an identical in-flight evaluation."""
        self.coalesced[kind] += 1

    def record_batch(self, kind: str, size: int) -> None:
        """Batch-size histogram hook wired into each DynamicBatcher."""
        self.batches[kind] += 1
        self.batch_sizes[(kind, int(size))] += 1

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    @property
    def requests_total(self) -> int:
        return sum(self.requests.values())

    def cache_hit_rate(self) -> float:
        hits = sum(self.cache_hits.values())
        lookups = hits + sum(self.cache_misses.values())
        return hits / lookups if lookups else 0.0

    def mean_batch_size(self, kind: Optional[str] = None) -> float:
        """Average lanes per dispatched batch (optionally one class)."""
        lanes = sum(size * count
                    for (k, size), count in self.batch_sizes.items()
                    if kind is None or k == kind)
        batches = sum(count for k, count in self.batches.items()
                      if kind is None or k == kind)
        return lanes / batches if batches else 0.0

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 over the rolling latency window (``{}`` if none)."""
        return latency_percentiles(self.latencies)

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def to_payload(self, *, queue_depth: Optional[Dict[str, int]] = None,
                   backend: Optional[Dict[str, Any]] = None
                   ) -> Dict[str, Any]:
        """JSON document served by ``GET /metrics``.

        ``backend`` is the shared execution backend's stats block
        (``Backend.stats_payload()``): dispatch counts, in-flight and
        queued batches, worker restarts, dispatch-wait p50/p95.
        """
        payload: Dict[str, Any] = {
            "requests_total": self.requests_total,
            "requests": dict(self.requests),
            "outcomes": {f"{kind}:{code}": count
                         for (kind, code), count in
                         sorted(self.outcomes.items())},
            "cache": {
                "hits": dict(self.cache_hits),
                "misses": dict(self.cache_misses),
                "hit_rate": self.cache_hit_rate(),
                "put_failures": dict(self.cache_put_failures),
            },
            "coalesced": dict(self.coalesced),
            "batches": dict(self.batches),
            "batch_size_histogram": {
                f"{kind}:{size}": count
                for (kind, size), count in sorted(self.batch_sizes.items())},
            "mean_batch_size": self.mean_batch_size(),
            "latency": self.latency_summary(),
            "latency_samples": len(self.latencies),
        }
        if queue_depth is not None:
            payload["queue_depth"] = dict(queue_depth)
            payload["queue_depth_total"] = sum(queue_depth.values())
        if backend is not None:
            payload["backend"] = dict(backend)
        return payload

    def format_summary(self) -> str:
        """Human-readable footer printed when a server drains."""
        lines = [
            f"requests: {self.requests_total} total "
            + " ".join(f"{kind}={count}"
                       for kind, count in sorted(self.requests.items())),
            f"batches: {sum(self.batches.values())} dispatched, "
            f"mean size {self.mean_batch_size():.2f}",
            f"cache: {sum(self.cache_hits.values())} hits / "
            f"{sum(self.cache_misses.values())} misses "
            f"({100.0 * self.cache_hit_rate():.1f}% hit rate)"
            + (f", {sum(self.coalesced.values())} coalesced"
               if self.coalesced else ""),
        ]
        percentiles = self.latency_summary()
        if percentiles:
            lines.append("latency: " + " ".join(
                f"{name}={value:.4g}s"
                for name, value in percentiles.items()))
        return "\n".join(lines)
