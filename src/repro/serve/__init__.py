"""Serving layer: asyncio evaluation service with dynamic micro-batching.

The vectorized kernel layer only reaches its measured speedups when a
caller hands it a pre-assembled batch — but interactive workloads (a
signal-integrity service fielding per-net delay queries, repeater-sizing
requests) arrive one at a time.  This package closes that gap the way an
inference server does: concurrent single-point requests are admitted
into per-class queues, coalesced by a max-batch-size / max-linger
policy into single ``threshold_delay_v`` / ``critical_inductance_v`` /
``optimize_repeater_many`` calls, and fanned back to per-request futures
— with per-lane fault isolation, bounded-queue admission control (429),
per-request queue deadlines (504) and graceful drain.  Batch
evaluations dispatch onto a shared execution backend
(:mod:`repro.engine.backends` — serial, thread or warm-process
workers, selected via ``repro-serve serve --backend``), the same plane
the batch engine runs on.

Modules: :mod:`~repro.serve.protocol` (wire format + error codes),
:mod:`~repro.serve.batcher` (the dynamic micro-batcher),
:mod:`~repro.serve.service` (batch evaluators, cache and metrics wiring),
:mod:`~repro.serve.metrics` (the ``/metrics`` registry),
:mod:`~repro.serve.server` / :mod:`~repro.serve.client` (stdlib HTTP
front end and blocking client), :mod:`~repro.serve.bench` (the
micro-batched vs batch-size-1 benchmark) and :mod:`~repro.serve.cli`
(the ``repro-serve`` command).
"""

from .batcher import (DEFAULT_MAX_BATCH_SIZE, DEFAULT_MAX_LINGER,
                      DEFAULT_MAX_QUEUE_DEPTH, DynamicBatcher)
from .client import ServeClient, ServeClientError
from .metrics import ServerMetrics
from .protocol import (BadRequestError, DeadlineExceededError,
                       EvaluationFailedError, QueueFullError, ServeError,
                       ServeRequest, ServiceClosedError, encode_error,
                       encode_result, parse_request)
from .server import ReproServer, ServerThread
from .service import ReproService

__all__ = [
    "BadRequestError", "DEFAULT_MAX_BATCH_SIZE", "DEFAULT_MAX_LINGER",
    "DEFAULT_MAX_QUEUE_DEPTH", "DeadlineExceededError", "DynamicBatcher",
    "EvaluationFailedError", "QueueFullError", "ReproServer",
    "ReproService", "ServeClient", "ServeClientError", "ServeError",
    "ServeRequest", "ServerMetrics", "ServerThread", "ServiceClosedError",
    "encode_error", "encode_result", "parse_request",
]
