"""Stdlib-only asyncio HTTP front end for :class:`ReproService`.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
— request line + headers + ``Content-Length`` body, keep-alive until the
client closes or the server drains.  Endpoints:

* ``POST /v1/evaluate`` — body is one request JSON object, *or* several
  newline-delimited objects (JSON lines).  A JSON-lines body is
  evaluated concurrently, which is exactly what lets the
  :class:`~repro.serve.batcher.DynamicBatcher` coalesce it into one
  kernel batch; the response mirrors the shape (single object in,
  single object out; JSON lines in, JSON lines out, same order).
* ``GET /metrics`` — the :class:`~repro.serve.metrics.ServerMetrics`
  JSON document, including live per-class queue depths.
* ``GET /healthz`` — liveness + drain state.

Shutdown is graceful and never drops an accepted request: the listener
closes, idle keep-alive connections are cancelled, connections busy in a
handler finish their in-flight response, and finally the service drains
its batchers (flushing every admitted lane).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Set, Tuple

from ..faults import hooks as _faults
from .service import ReproService

#: Largest accepted request body, in bytes.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default seconds a request body may take to arrive in full.  A client
#: that advertises a Content-Length and then stalls (a truncated NDJSON
#: body with the socket held open) gets a structured 400 instead of
#: pinning the connection forever.
DEFAULT_READ_TIMEOUT = 30.0

#: Reason phrases for the statuses this server emits.
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


def _error_body(code: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": {"code": code, "message": message}}


class _Connection:
    """Book-keeping for one client connection (task + busy flag)."""

    __slots__ = ("task", "busy")

    def __init__(self, task: "asyncio.Task[Any]") -> None:
        self.task = task
        self.busy = False


class ReproServer:
    """HTTP shell around a :class:`ReproService`.

    ``port=0`` binds an ephemeral port; the bound address is available
    as :attr:`host`/:attr:`port` after :meth:`start`.
    """

    def __init__(self, service: ReproService, *, host: str = "127.0.0.1",
                 port: int = 8451,
                 read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT
                 ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def shutdown(self) -> None:
        """Stop accepting, finish in-flight requests, drain the service."""
        self._draining = True
        if self._server is not None:
            self._server.close()
        # Idle keep-alive connections are parked in a read; cancel them.
        # Busy ones observe _draining and close after their response.
        for connection in list(self._connections):
            if not connection.busy:
                connection.task.cancel()
        if self._connections:
            await asyncio.gather(
                *(connection.task for connection in self._connections),
                return_exceptions=True)
        await self.service.close()

    # ------------------------------------------------------------------
    # Connection handling.
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        assert task is not None
        connection = _Connection(task)
        self._connections.add(connection)
        try:
            while not self._draining:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body, parse_error = parsed
                connection.busy = True
                try:
                    if parse_error is not None:
                        # Framing errors carry a response *document*;
                        # encode it here so the malformed request still
                        # gets its structured 4xx (never a silently
                        # closed connection).
                        status, error_document = parse_error
                        payload = _json_bytes(error_document)
                    else:
                        status, payload = await self._dispatch(
                            method, path, body)
                    keep_alive = (parse_error is None
                                  and headers.get("connection", "")
                                  .lower() != "close"
                                  and not self._draining)
                    await self._write_response(writer, status, payload,
                                               keep_alive=keep_alive)
                finally:
                    connection.busy = False
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str, Dict[str, str],
                                                bytes, Optional[tuple]]]:
        """Parse one HTTP request; ``None`` on clean EOF.

        The fifth element carries a ready-made error response for
        malformed-but-answerable requests (oversized body, bad framing).
        """
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line:
            return None
        if _faults.ACTIVE is not None and _faults.should("server.read.drop"):
            # Named fault site: the client vanished mid-request (after the
            # request line, before the body).  Surfaces as ConnectionError
            # so the connection handler tears down exactly as it would for
            # a real half-open socket.
            raise ConnectionResetError(
                "injected fault at server.read.drop: client disconnected "
                "mid-request")
        try:
            method, path, _version = (
                request_line.decode("latin-1").strip().split(" ", 2))
        except ValueError:
            return ("GET", "/", {}, b"",
                    (400, _error_body("bad_request",
                                      "malformed HTTP request line")))
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            return (method, path, headers, b"",
                    (400, _error_body("bad_request",
                                      "unreadable Content-Length")))
        if length > MAX_BODY_BYTES:
            return (method, path, headers, b"",
                    (413, _error_body("bad_request",
                                      f"body exceeds {MAX_BODY_BYTES} "
                                      f"bytes")))
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length),
                    self.read_timeout) if self.read_timeout is not None \
                    else await reader.readexactly(length)
            except asyncio.TimeoutError:
                # The client advertised a Content-Length and then stalled
                # with the socket open: answer with a structured 400
                # rather than pinning the connection on a body that will
                # never arrive.
                return (method.upper(), path, headers, b"",
                        (400, _error_body(
                            "bad_request",
                            f"request body incomplete after "
                            f"{self.read_timeout:g}s (expected {length} "
                            f"bytes)")))
            except asyncio.IncompleteReadError:
                # Truncated body then EOF — nothing to answer to.
                return None
        else:
            body = b""
        return (method.upper(), path, headers, body, None)

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: bytes, *,
                              keep_alive: bool) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
                f"\r\n\r\n")
        wire = head.encode("latin-1") + payload
        if _faults.ACTIVE is not None:
            truncated = _faults.mutate("server.write.truncate", wire)
            if len(truncated) != len(wire):
                # Named fault site: the connection dies mid-response.  The
                # client sees fewer bytes than Content-Length promised —
                # the retryable IncompleteRead path.
                writer.write(truncated)
                await writer.drain()
                raise ConnectionResetError(
                    "injected fault at server.write.truncate: connection "
                    "lost mid-response")
        writer.write(wire)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, path: str, body: bytes
                        ) -> Tuple[int, bytes]:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            depth = self.service.queue_depth()
            status = "draining" if (self._draining or self.service.closed) \
                else "ok"
            return 200, _json_bytes({"status": status,
                                     "queue_depth": sum(depth.values())})
        if path == "/metrics" and method == "GET":
            payload = self.service.metrics.to_payload(
                queue_depth=self.service.queue_depth(),
                backend=self.service.backend_stats())
            return 200, _json_bytes(payload)
        if path == "/v1/evaluate":
            if method != "POST":
                return 405, _json_bytes(_error_body(
                    "bad_request", "use POST for /v1/evaluate"))
            return await self._evaluate(body)
        return 404, _json_bytes(_error_body(
            "not_found", f"no route for {method} {path}"))

    async def _evaluate(self, body: bytes) -> Tuple[int, bytes]:
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            return 400, _json_bytes(_error_body(
                "bad_request", "body is not valid UTF-8"))
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            return 400, _json_bytes(_error_body(
                "bad_request", "empty request body"))
        try:
            documents = [json.loads(line) for line in lines]
        except json.JSONDecodeError as exc:
            return 400, _json_bytes(_error_body(
                "bad_request", f"body is not valid JSON: {exc}"))
        if len(documents) == 1:
            status, response = await self.service.handle(documents[0])
            return status, _json_bytes(response)
        # JSON lines: evaluate concurrently (this is what lets the
        # batcher coalesce a multi-request body into one kernel batch).
        outcomes = await asyncio.gather(
            *(self.service.handle(document) for document in documents))
        payload = "\n".join(
            _json_bytes(response).decode("utf-8").rstrip("\n")
            for _status, response in outcomes) + "\n"
        return 200, payload.encode("utf-8")


#: Strict-JSON fallback: emitted when a response document contains a
#: non-finite float that slipped past the service-layer screens.  Strict
#: encoding (``allow_nan=False``) guarantees ``NaN``/``Infinity`` tokens
#: — invalid JSON most parsers reject — never reach the wire.
_NONFINITE_BODY = (json.dumps(
    _error_body("internal",
                "response contained a non-finite number"),
    sort_keys=True, allow_nan=False) + "\n").encode("utf-8")


def _json_bytes(payload: Any) -> bytes:
    try:
        return (json.dumps(payload, sort_keys=True, allow_nan=False)
                + "\n").encode("utf-8")
    except ValueError:
        return _NONFINITE_BODY


# ----------------------------------------------------------------------
# Threaded harness (tests, CLI `request` smoke, benchmarks).
# ----------------------------------------------------------------------
class ServerThread:
    """Run a :class:`ReproServer` on a dedicated event-loop thread.

    The blocking-client world (tests, the CLI) talks to the server over
    real sockets while the calling thread stays synchronous::

        with ServerThread(ReproService()) as handle:
            client = ServeClient.from_url(handle.url)
            ...

    ``stop()`` (or leaving the ``with`` block) performs the graceful
    shutdown — in-flight requests finish, the batchers drain.
    """

    def __init__(self, service: ReproService, *, host: str = "127.0.0.1",
                 port: int = 0,
                 read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT
                 ) -> None:
        self.service = service
        self.server = ReproServer(service, host=host, port=port,
                                  read_timeout=read_timeout)
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve")

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.stop()

    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._startup_error}")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:  # noqa: BLE001 — surface to starter
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.shutdown()
