"""Wire protocol of the serve subsystem: requests, responses, errors.

A request is one JSON object selecting a request class (``kind``) and
carrying the same fields as the matching engine job spec — the protocol
is deliberately a thin veneer over :mod:`repro.engine.jobs`, so a served
request, a ``repro-batch`` manifest row and a cache record all describe
the computation identically (and therefore share cache keys):

``{"kind": "delay", "line": {"r": ..., "l": ..., "c": ...},
   "driver": {"r_s": ..., "c_p": ..., "c_0": ...}, "h": ..., "k": ...,
   "f": 0.5}``

Two protocol-level fields ride on top of the job spec and never reach
the job (or the cache key): ``timeout`` (seconds the request may spend
queued before the batcher expires it) and ``no_cache`` (bypass the
result cache both ways).

Responses are JSON objects: ``{"ok": true, "kind": ..., "result": ...,
"cache": "hit" | "miss" | "bypass" | "off", "batch_size": N}`` on
success, ``{"ok": false, "error": {"code": ..., "message": ...}}`` on
failure.  Error codes map onto HTTP statuses the way an inference
server's do: admission-control rejections are ``429``, expired
deadlines ``504``, a draining server ``503``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Type

from ..engine.jobs import CriticalInductanceJob, DelayJob, OptimizeJob
from ..errors import ParameterError

#: Request classes the service batches, mapped to their engine job spec.
REQUEST_JOB_TYPES: Dict[str, Type[Any]] = {
    DelayJob.kind: DelayJob,
    CriticalInductanceJob.kind: CriticalInductanceJob,
    OptimizeJob.kind: OptimizeJob,
}

#: Keys consumed by the protocol layer, stripped before job parsing.
PROTOCOL_KEYS = ("timeout", "no_cache")


class ServeError(Exception):
    """Base of every protocol-visible failure; carries an error code."""

    code = "internal"
    http_status = 500

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.message = message
        self.details = {k: v for k, v in details.items() if v is not None}


class BadRequestError(ServeError):
    """Malformed or unsupported request document."""

    code = "bad_request"
    http_status = 400


class QueueFullError(ServeError):
    """Admission control: the request class's queue is at capacity."""

    code = "queue_full"
    http_status = 429


class DeadlineExceededError(ServeError):
    """The request expired in the queue before evaluation started."""

    code = "deadline_exceeded"
    http_status = 504


class ServiceClosedError(ServeError):
    """The service is draining and no longer admits new requests."""

    code = "shutting_down"
    http_status = 503


class EvaluationFailedError(ServeError):
    """The request was evaluated and its own lane failed."""

    code = "evaluation_failed"
    http_status = 500


@dataclass(frozen=True)
class ServeRequest:
    """One admitted request: the engine job plus protocol options."""

    job: Any
    timeout: Optional[float] = None
    no_cache: bool = False

    @property
    def kind(self) -> str:
        return self.job.kind


def _find_nonfinite(value: Any, path: str) -> Optional[str]:
    """Path of the first non-finite number in ``value``, else ``None``.

    Strict-JSON guard: ``json.loads`` happily accepts ``NaN`` and
    ``Infinity`` tokens, but no finite electrical parameter is ever
    legitimately non-finite — and admitting one would poison a whole
    kernel batch (NaN propagates across vectorized lanes' shared
    reductions in some solvers) and could round-trip into the cache.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return path
    if isinstance(value, dict):
        for key, item in value.items():
            found = _find_nonfinite(item, f"{path}.{key}" if path else
                                    str(key))
            if found is not None:
                return found
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            found = _find_nonfinite(item, f"{path}[{index}]")
            if found is not None:
                return found
    return None


def parse_request(data: Any) -> ServeRequest:
    """Validate a request document and build its :class:`ServeRequest`.

    Raises :class:`BadRequestError` with a human-readable message for
    every malformed input — the server turns it into a 400 response
    rather than a traceback.
    """
    if not isinstance(data, dict):
        raise BadRequestError(
            f"request must be a JSON object, got {type(data).__name__}")
    nonfinite = _find_nonfinite(data, "")
    if nonfinite is not None:
        raise BadRequestError(
            f"request field {nonfinite!r} is not a finite number "
            f"(NaN/Infinity are not accepted on the wire)")
    kind = data.get("kind")
    if kind not in REQUEST_JOB_TYPES:
        known = ", ".join(sorted(REQUEST_JOB_TYPES))
        raise BadRequestError(
            f"unknown request kind {kind!r}; served kinds: {known}")
    if data.get("polish_with_newton"):
        # The batched solver's polish step is not lane-equivalent to the
        # scalar one, which would break the serve layer's bitwise
        # solo-vs-batched guarantee — so the service refuses it.
        raise BadRequestError(
            "polish_with_newton is not supported by the serve batcher")

    timeout = data.get("timeout")
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise BadRequestError(
                f"timeout must be a number of seconds, got {timeout!r}")
        if timeout <= 0.0:
            raise BadRequestError(
                f"timeout must be positive, got {timeout}")
    no_cache = bool(data.get("no_cache", False))

    body = {key: value for key, value in data.items()
            if key not in PROTOCOL_KEYS}
    try:
        job = REQUEST_JOB_TYPES[kind].from_dict(body)
    except (KeyError, TypeError, ValueError, ParameterError) as exc:
        detail = (f"missing field {exc}" if isinstance(exc, KeyError)
                  else str(exc))
        raise BadRequestError(f"invalid {kind} request: {detail}")
    return ServeRequest(job=job, timeout=timeout, no_cache=no_cache)


def encode_result(kind: str, result: Dict[str, Any], *, cache: str,
                  batch_size: int) -> Dict[str, Any]:
    """Success response body.  ``cache`` is hit/miss/bypass/off."""
    return {"ok": True, "kind": kind, "result": result,
            "cache": cache, "batch_size": batch_size}


def encode_error(exc: ServeError) -> Tuple[int, Dict[str, Any]]:
    """(HTTP status, response body) of a protocol-visible failure."""
    error: Dict[str, Any] = {"code": exc.code, "message": exc.message}
    error.update(exc.details)
    return exc.http_status, {"ok": False, "error": error}
