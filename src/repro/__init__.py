"""repro — reproduction of Banerjee & Mehrotra, DAC 2001.

"Analysis of On-Chip Inductance Effects using a Novel Performance
Optimization Methodology for Distributed RLC Interconnects."

Public API highlights
---------------------
* :func:`repro.optimize_repeater` — inductance-aware repeater insertion
  (the paper's contribution, Eqs. 7-8).
* :func:`repro.threshold_delay` — f*100% delay of a driver-line-load stage
  from the two-pole model (Eq. 3).
* :func:`repro.rc_optimum` — Elmore-based closed-form baseline.
* :func:`repro.critical_inductance` — l_crit (Eq. 4).
* :data:`repro.NODE_250NM` / :data:`repro.NODE_100NM` — Table 1 technology
  nodes.
* :mod:`repro.circuits` — MNA transient simulator (SPICE substitute) used
  by the ring-oscillator failure studies (Figs. 9-12).
"""

# 1.2.0: optimizer stack on the kernel layer (repro.core.evaluate); the
# OptimizeJob payload gained a "trace" entry, so the bump salts the engine's
# content-addressed cache and keeps pre-trace results from being replayed.
# 1.2.1: canonical_json now serializes with allow_nan=False (strict JSON on
# every payload path); byte-identical for finite payloads, but the salted
# jobs module changed, so the bump re-blesses the salt fingerprint.
__version__ = "1.2.1"

from . import units
from .core import (Damping, DelayBatchResult, DelayResult,
                   DelaySensitivities, DriverParams, InductanceSweep,
                   LineParams, Moments, MomentsBatch, OptimizerMethod,
                   PoleBatch, PolePair, RCOptimum, RCTree, RepeaterOptimum,
                   ResponseBatch, SizedDriver, Stage, StageBatch,
                   StepResponse, canonical_response, classify_damping,
                   classify_damping_v, compute_moments, compute_moments_v,
                   compute_poles, critical_inductance,
                   critical_inductance_v, damping_margin,
                   delay_sensitivities, driver_from_rc_optimum,
                   elmore_stage_delay, elmore_total_delay, exact_transfer,
                   newton_delay, optimize_repeater, pade_transfer, poles_v,
                   rc_optimum, response_v, stage_delay,
                   stage_delay_per_length, sweep_inductance,
                   threshold_delay, threshold_delay_v)
from .core import (OptimizationTrace, StageEvaluator,
                   stationarity_residuals_v)
from .errors import (ConvergenceError, DelaySolverError, ExtractionError,
                     NetlistError, OptimizationError, ParameterError,
                     ReproError, SimulationError)
from .tech.node import (MAX_PRACTICAL_INDUCTANCE, NODE_100NM,
                        NODE_100NM_EPS_250NM, NODE_250NM, NODES,
                        TechnologyNode, WireGeometrySpec, get_node)
from . import engine
from . import verify

__all__ = [
    "__version__", "units", "engine", "verify",
    # core
    "Damping", "DelayResult", "DriverParams", "InductanceSweep", "LineParams",
    "Moments", "OptimizerMethod", "PolePair", "RCOptimum", "RepeaterOptimum",
    "SizedDriver", "Stage", "StepResponse", "canonical_response",
    "classify_damping", "compute_moments", "compute_poles",
    "critical_inductance", "damping_margin", "driver_from_rc_optimum",
    "elmore_stage_delay", "elmore_total_delay", "exact_transfer",
    "newton_delay", "optimize_repeater", "pade_transfer", "rc_optimum",
    "stage_delay", "stage_delay_per_length", "sweep_inductance",
    "threshold_delay", "DelaySensitivities", "delay_sensitivities",
    "RCTree",
    # core kernels (array-first batched pipeline)
    "DelayBatchResult", "MomentsBatch", "PoleBatch", "ResponseBatch",
    "StageBatch", "classify_damping_v", "compute_moments_v",
    "critical_inductance_v", "poles_v", "response_v", "threshold_delay_v",
    # kernel-backed optimizer stack
    "OptimizationTrace", "StageEvaluator", "stationarity_residuals_v",
    # errors
    "ConvergenceError", "DelaySolverError", "ExtractionError", "NetlistError",
    "OptimizationError", "ParameterError", "ReproError", "SimulationError",
    # tech
    "MAX_PRACTICAL_INDUCTANCE", "NODE_100NM", "NODE_100NM_EPS_250NM",
    "NODE_250NM", "NODES", "TechnologyNode", "WireGeometrySpec", "get_node",
]
