"""Closed-form wire capacitance estimation (FASTCAP substitute).

The paper extracted Table 1's c with a multipole 3-D solver [25]; offline
we use the well-established closed forms:

* **Sakurai-Tamaru** single wire over a ground plane:

      C/eps = 1.15 (w/h) + 2.80 (t/h)^0.222

* **Sakurai** lateral coupling to each same-layer neighbour:

      Cc/eps = [0.03 (w/h) + 0.83 (t/h) - 0.07 (t/h)^0.222] (s/h)^-1.34

These track field-solver results to ~10% inside their fitted ranges
(0.3 <= w/h <= 30, t/h <= 10, 0.5 <= s/h <= 10 approximately).  Global
top-metal wires also couple upward to the orthogonal routing above, which
behaves approximately as a second ground plane; :func:`total_capacitance`
models that with a configurable mirror factor.  The extractor's role in
the reproduction is consistency checking (Table 1's c is used verbatim by
the experiments) plus the Miller-factor variation study the paper sketches
in Sec. 3 (effective c varying by up to ~4x with neighbour switching).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import units
from ..errors import ExtractionError
from .geometry import Wire


def parallel_plate(wire: Wire, epsilon_r: float) -> float:
    """Bottom-plate capacitance per unit length (F/m): eps w / h."""
    _check_eps(epsilon_r)
    return units.EPSILON_0 * epsilon_r * wire.width / wire.height


def sakurai_tamaru_ground(wire: Wire, epsilon_r: float) -> float:
    """Single-wire-over-plane capacitance per unit length (F/m)."""
    _check_eps(epsilon_r)
    w_over_h = wire.width / wire.height
    t_over_h = wire.thickness / wire.height
    shape = 1.15 * w_over_h + 2.80 * t_over_h ** 0.222
    return units.EPSILON_0 * epsilon_r * shape


def sakurai_coupling(wire: Wire, epsilon_r: float) -> float:
    """Lateral coupling capacitance per unit length to ONE neighbour (F/m).

    Returns 0 for an isolated wire (infinite spacing).
    """
    _check_eps(epsilon_r)
    if math.isinf(wire.spacing):
        return 0.0
    w_over_h = wire.width / wire.height
    t_over_h = wire.thickness / wire.height
    s_over_h = wire.spacing / wire.height
    shape = (0.03 * w_over_h + 0.83 * t_over_h
             - 0.07 * t_over_h ** 0.222) * s_over_h ** -1.34
    return units.EPSILON_0 * epsilon_r * shape


@dataclass(frozen=True)
class CapacitanceBreakdown:
    """Per-unit-length capacitance components of a wire (F/m)."""

    ground: float              #: to the plane(s) below/above
    coupling_per_neighbour: float
    neighbours: int
    miller_factor: float       #: switching factor applied to coupling

    @property
    def total(self) -> float:
        """Effective total capacitance per unit length (F/m)."""
        return (self.ground
                + self.miller_factor * self.neighbours
                * self.coupling_per_neighbour)


def total_capacitance(wire: Wire, epsilon_r: float, *,
                      neighbours: int = 2, miller_factor: float = 1.0,
                      plane_mirror_factor: float = 2.0
                      ) -> CapacitanceBreakdown:
    """Effective wire capacitance per unit length.

    Parameters
    ----------
    neighbours:
        Same-layer nearest neighbours (2 for a wire inside a bus).
    miller_factor:
        Switching factor on the lateral coupling: 0 when both neighbours
        switch in phase, 1 when quiet, 2 when both switch in anti-phase.
        The paper's Sec. 3 remark that effective c varies "by as much as
        4x" corresponds to the 0..2 range with dominant lateral coupling.
    plane_mirror_factor:
        Multiplier on the ground-plane term: 1 for a true single plane
        (wire over substrate only), 2 when the orthogonal routing layer
        above acts as a second plane (the usual global-wire situation and
        the configuration that reproduces Table 1's totals).
    """
    if neighbours < 0:
        raise ExtractionError(f"neighbours must be >= 0, got {neighbours}")
    if miller_factor < 0.0:
        raise ExtractionError(
            f"miller factor must be >= 0, got {miller_factor}")
    if plane_mirror_factor <= 0.0:
        raise ExtractionError(
            f"plane mirror factor must be positive, got {plane_mirror_factor}")
    ground = plane_mirror_factor * sakurai_tamaru_ground(wire, epsilon_r)
    coupling = sakurai_coupling(wire, epsilon_r)
    return CapacitanceBreakdown(ground=ground,
                                coupling_per_neighbour=coupling,
                                neighbours=neighbours,
                                miller_factor=miller_factor)


def capacitance_range(wire: Wire, epsilon_r: float, *,
                      neighbours: int = 2,
                      plane_mirror_factor: float = 2.0
                      ) -> tuple[float, float]:
    """(min, max) effective capacitance over Miller factors 0..2 (F/m)."""
    low = total_capacitance(wire, epsilon_r, neighbours=neighbours,
                            miller_factor=0.0,
                            plane_mirror_factor=plane_mirror_factor).total
    high = total_capacitance(wire, epsilon_r, neighbours=neighbours,
                             miller_factor=2.0,
                             plane_mirror_factor=plane_mirror_factor).total
    return low, high


def _check_eps(epsilon_r: float) -> None:
    if epsilon_r < 1.0:
        raise ExtractionError(
            f"relative permittivity must be >= 1, got {epsilon_r}")
