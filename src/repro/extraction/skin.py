"""Skin-effect resistance of on-chip wires (frequency-dependent r).

The paper's Sec. 1.1 cites the frequency dependence of the current
return-path distribution [refs. 11, 20]; the simplest self-consistent
piece of that picture is the skin effect in the signal conductor itself.
With skin depth

    delta(f) = sqrt( rho / (pi f mu0) )

current crowds into a shell of thickness ~delta around the perimeter of
the rectangular cross section; the effective conducting area is

    A_eff = w t - max(0, w - 2 delta) max(0, t - 2 delta)

(the full area once delta >= min(w, t)/2), giving r_ac = rho / A_eff.
For Table 1's 2 x 2.5 um copper wires the onset sits near a few GHz —
just above the 2001-era clock fundamentals but inside the signal
harmonics, which is why the paper treats r as constant while flagging the
frequency dependence as an accuracy limit.
"""

from __future__ import annotations

import math

from .. import units
from ..errors import ExtractionError
from .geometry import Wire


def skin_depth(resistivity: float, frequency: float) -> float:
    """Skin depth in metres: sqrt(rho / (pi f mu0))."""
    if resistivity <= 0.0:
        raise ExtractionError(f"resistivity must be positive, got {resistivity}")
    if frequency <= 0.0:
        raise ExtractionError(f"frequency must be positive, got {frequency}")
    return math.sqrt(resistivity / (math.pi * frequency * units.MU_0))


def effective_area(wire: Wire, delta: float) -> float:
    """Conducting cross section with current confined to a delta shell."""
    if delta <= 0.0:
        raise ExtractionError(f"skin depth must be positive, got {delta}")
    core_w = max(0.0, wire.width - 2.0 * delta)
    core_t = max(0.0, wire.thickness - 2.0 * delta)
    return wire.cross_section - core_w * core_t


def resistance_at_frequency(wire: Wire, resistivity: float,
                            frequency: float) -> float:
    """AC resistance per unit length (ohm/m) at the given frequency.

    Reduces to the DC value while delta >= min(w, t)/2 and grows like
    sqrt(f) deep in the skin regime.
    """
    delta = skin_depth(resistivity, frequency)
    return resistivity / effective_area(wire, delta)


def skin_onset_frequency(wire: Wire, resistivity: float) -> float:
    """Frequency at which delta equals half the smaller cross dimension.

    Below this the wire conducts through its full cross section (r_ac =
    r_dc); above it the resistance starts rising.
    """
    half_min = 0.5 * min(wire.width, wire.thickness)
    # delta(f) = half_min  =>  f = rho / (pi mu0 half_min^2).
    return wire.resistance_per_length(resistivity) * wire.cross_section \
        / (math.pi * units.MU_0 * half_min * half_min)


def resistance_ratio_table(wire: Wire, resistivity: float,
                           frequencies) -> dict:
    """{frequency: r_ac/r_dc} over an iterable of frequencies (Hz)."""
    r_dc = wire.resistance_per_length(resistivity)
    return {float(f): resistance_at_frequency(wire, resistivity, float(f))
            / r_dc for f in frequencies}
