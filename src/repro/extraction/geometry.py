"""Wire geometry primitives for parasitic extraction.

The closed-form capacitance and inductance estimators need the wire cross
section, its height above the return plane and (for partial inductance)
its length.  :class:`Wire` is deliberately independent of the technology
database; :func:`wire_from_tech` adapts a Table 1 geometry spec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ExtractionError


@dataclass(frozen=True)
class Wire:
    """A straight rectangular wire (SI units).

    Attributes
    ----------
    width:
        Cross-section width (m).
    thickness:
        Cross-section (metal) thickness (m).
    height:
        Distance from the wire bottom to the reference/return plane (m).
    spacing:
        Edge-to-edge distance to the nearest same-layer neighbour (m);
        ``math.inf`` models an isolated wire.
    length:
        Routed length (m); only the inductance formulas use it.
    """

    width: float
    thickness: float
    height: float
    spacing: float = math.inf
    length: float = 1e-3

    def __post_init__(self) -> None:
        for field_name in ("width", "thickness", "height", "length"):
            value = getattr(self, field_name)
            if value <= 0.0:
                raise ExtractionError(
                    f"wire {field_name} must be positive, got {value}")
        if self.spacing <= 0.0:
            raise ExtractionError(
                f"wire spacing must be positive, got {self.spacing}")

    @property
    def aspect_ratio(self) -> float:
        """thickness / width."""
        return self.thickness / self.width

    @property
    def cross_section(self) -> float:
        """Current-carrying area width * thickness (m^2)."""
        return self.width * self.thickness

    @property
    def geometric_mean_radius(self) -> float:
        """Equivalent round-wire radius ~ 0.2235 (w + t) (Grover/Ruehli).

        Used to map the rectangular cross section onto the filament
        formulas for self and loop inductance.
        """
        return 0.2235 * (self.width + self.thickness)

    def resistance_per_length(self, resistivity: float) -> float:
        """DC resistance per unit length (ohm/m) for a given resistivity.

        Copper at roughly the paper's era: 2.2e-8 ohm*m including barrier
        effects; Table 1's 4.4 ohm/mm for a 2 x 2.5 um wire corresponds to
        resistivity 2.2e-8 ohm*m.
        """
        if resistivity <= 0.0:
            raise ExtractionError(
                f"resistivity must be positive, got {resistivity}")
        return resistivity / self.cross_section


#: Copper resistivity (ohm*m) consistent with Table 1's r = 4.4 ohm/mm
#: at a 2 um x 2.5 um cross section.
COPPER_RESISTIVITY = 2.2e-8


def wire_from_tech(geometry, *, length: float = 1e-3) -> Wire:
    """Adapt a :class:`repro.tech.node.WireGeometrySpec` to a :class:`Wire`."""
    return Wire(width=geometry.width, thickness=geometry.height,
                height=geometry.t_ins, spacing=geometry.spacing,
                length=length)
