"""Closed-form wire inductance estimation (field-solver substitute).

The paper's central premise about inductance (Sec. 1.1) is that the
effective value is *uncertain*: it depends on where the return current
flows, which varies with the switching pattern of every neighbour.  This
module provides the standard closed forms spanning that uncertainty:

* **Partial self inductance** of a rectangular bar (Grover/Ruehli):

      L_p = (mu0 l / 2 pi) [ ln(2 l / (w + t)) + 0.5 + 0.2235 (w + t)/l ]

  which grows logarithmically with length — the "worst case" when the
  return path is very far away.

* **Partial mutual inductance** between parallel filaments at pitch d:

      M_p = (mu0 l / 2 pi) [ ln(2 l / d) - 1 + d/l ]

* **Loop inductance** of a wire with a concrete return:
  - over a ground plane at height D (image method),
    L = (mu0 / 2 pi) ln(2 D / GMR);
  - against a parallel return wire at pitch d,
    L = L_p(signal) + L_p(return) - 2 M_p(d) per the partial-inductance
    bookkeeping.

:func:`worst_case_inductance` evaluates the substrate-return case the
paper uses to justify sweeping 0 <= l < 5 nH/mm.
"""

from __future__ import annotations

import math

from .. import units
from ..errors import ExtractionError
from .geometry import Wire


def partial_self_inductance(wire: Wire) -> float:
    """Partial self inductance (H) of the whole wire length."""
    l = wire.length
    w_plus_t = wire.width + wire.thickness
    if l <= w_plus_t:
        raise ExtractionError(
            "partial-inductance formula needs length >> cross section "
            f"(length {l}, w+t {w_plus_t})")
    return (units.MU_0 * l / (2.0 * math.pi)) * (
        math.log(2.0 * l / w_plus_t) + 0.5 + 0.2235 * w_plus_t / l)


def partial_self_inductance_per_length(wire: Wire) -> float:
    """Partial self inductance per unit length (H/m).

    Note this *depends on the total length* through the logarithm — per
    unit length values quoted for on-chip wires implicitly assume a
    length, which is one source of the variability the paper discusses.
    """
    return partial_self_inductance(wire) / wire.length


def partial_mutual_inductance(length: float, pitch: float) -> float:
    """Partial mutual inductance (H) between parallel filaments."""
    if length <= 0.0 or pitch <= 0.0:
        raise ExtractionError("length and pitch must be positive")
    if pitch >= length:
        raise ExtractionError(
            f"mutual-inductance formula needs pitch << length "
            f"(pitch {pitch}, length {length})")
    return (units.MU_0 * length / (2.0 * math.pi)) * (
        math.log(2.0 * length / pitch) - 1.0 + pitch / length)


def loop_inductance_over_plane(wire: Wire, *,
                               plane_distance: float | None = None) -> float:
    """Loop inductance per unit length (H/m) with a ground-plane return.

    Image method for a filament of radius GMR at height D over a perfect
    plane: L = (mu0 / 2 pi) ln(2 D / GMR).  ``plane_distance`` defaults to
    the wire's own ``height`` (return in the substrate, the configuration
    behind the paper's < 5 nH/mm worst-case bound when D is large).
    """
    d = wire.height if plane_distance is None else plane_distance
    gmr = wire.geometric_mean_radius
    if d <= gmr:
        raise ExtractionError(
            f"plane distance {d} must exceed the wire GMR {gmr}")
    return (units.MU_0 / (2.0 * math.pi)) * math.log(2.0 * d / gmr)


def loop_inductance_with_return_wire(wire: Wire, return_pitch: float) -> float:
    """Loop inductance per unit length (H/m) against a parallel return wire.

    L_loop = (L_p,signal + L_p,return - 2 M_p) / length with an identical
    return conductor at centre-to-centre ``return_pitch``.
    """
    lp = partial_self_inductance(wire)
    m = partial_mutual_inductance(wire.length, return_pitch)
    return (2.0 * lp - 2.0 * m) / wire.length


def worst_case_inductance(wire: Wire, *,
                          return_distance: float | None = None) -> float:
    """Worst-case effective inductance per unit length (H/m).

    The worst case arises when the nearest return is very far away; we
    model it as a return wire at ``return_distance`` (default: the wire's
    full length / 4, i.e. a return path several millimetres away for a
    centimetre-class global wire).  For Table 1 geometries this evaluates
    to a few nH/mm, consistent with the paper's "< 5 nH/mm" bound.
    """
    distance = wire.length / 4.0 if return_distance is None else return_distance
    return loop_inductance_with_return_wire(wire, distance)


def inductance_range(wire: Wire) -> tuple[float, float]:
    """(best, worst) effective inductance per unit length (H/m).

    Best case: a dense return immediately adjacent (loop against the
    nearest neighbour at minimum pitch).  Worst case: see
    :func:`worst_case_inductance`.
    """
    if math.isinf(wire.spacing):
        best = loop_inductance_over_plane(wire)
    else:
        pitch = wire.spacing + wire.width
        best = loop_inductance_with_return_wire(wire, pitch)
    return best, worst_case_inductance(wire)
