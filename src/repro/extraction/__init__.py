"""Parasitic extraction substitutes (closed-form capacitance/inductance)."""

from .capacitance import (CapacitanceBreakdown, capacitance_range,
                          parallel_plate, sakurai_coupling,
                          sakurai_tamaru_ground, total_capacitance)
from .geometry import COPPER_RESISTIVITY, Wire, wire_from_tech
from .inductance import (inductance_range, loop_inductance_over_plane,
                         loop_inductance_with_return_wire,
                         partial_mutual_inductance, partial_self_inductance,
                         partial_self_inductance_per_length,
                         worst_case_inductance)
from .skin import (effective_area, resistance_at_frequency,
                   resistance_ratio_table, skin_depth, skin_onset_frequency)

__all__ = [
    "effective_area", "resistance_at_frequency", "resistance_ratio_table",
    "skin_depth", "skin_onset_frequency",
    "CapacitanceBreakdown", "capacitance_range", "parallel_plate",
    "sakurai_coupling", "sakurai_tamaru_ground", "total_capacitance",
    "COPPER_RESISTIVITY", "Wire", "wire_from_tech",
    "inductance_range", "loop_inductance_over_plane",
    "loop_inductance_with_return_wire", "partial_mutual_inductance",
    "partial_self_inductance", "partial_self_inductance_per_length",
    "worst_case_inductance",
]
