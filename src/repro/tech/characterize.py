"""Device calibration: Table 1 driver parameters -> simulator inverters.

The paper obtains r_s, c_p, c_0 by SPICE characterization.  Going the
other way, this module builds simulator inverters (square-law CMOS) whose
minimum-size effective output resistance matches Table 1's r_s, whose
input loading is the linear c_0 and whose output parasitic is the linear
c_p — the exact abstraction the paper's analysis assumes ("linear r_s and
c_p for the entire voltage range").

Calibration path
----------------
For a symmetric square-law inverter discharging a capacitor with the gate
at VDD, the classical average switching resistance over the top half of
the swing is approximately R_eff ~= 0.75 VDD / Id_sat, giving the analytic
seed

    beta = 1.5 VDD / (r_s (VDD - vth)^2).

``calibrate_inverter(..., refine=True)`` then bisects a multiplicative
correction on beta until the *simulated* 50% delay of a minimum inverter
driving a pure capacitive load matches the ideal-switch RC prediction
ln(2) r_s (C_load + c_p), closing the loop through the very transient
engine used in the ring-oscillator experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..circuits.inverter import (InverterCalibration, add_mosfet_inverter,
                                 analytic_beta)
from ..circuits.mosfet import DEFAULT_LAMBDA
from ..circuits.netlist import GROUND, Circuit
from ..circuits.transient import TransientOptions, simulate
from ..circuits.waveforms import Pulse
from ..core.params import DriverParams
from ..errors import ConvergenceError
from .node import TechnologyNode

#: Default threshold voltage as a fraction of VDD.
DEFAULT_VTH_FRACTION = 0.25

__all__ = [
    "DEFAULT_VTH_FRACTION", "InverterCalibration", "VtcReport",
    "add_mosfet_inverter", "analytic_beta", "calibrate_inverter",
    "inverter_vtc", "measure_falling_delay", "measured_driver_params",
]


def calibrate_inverter(node: TechnologyNode, *,
                       vth_fraction: float = DEFAULT_VTH_FRACTION,
                       lam: float = DEFAULT_LAMBDA,
                       refine: bool = False,
                       tolerance: float = 0.02) -> InverterCalibration:
    """Calibrate a symmetric CMOS inverter to a technology node.

    Parameters
    ----------
    refine:
        When true, bisect a correction factor on beta so the simulated
        falling 50% delay into a pure capacitive load matches the ideal
        ln(2) r_s (C + c_p) switch model within ``tolerance``.
    """
    vdd = node.vdd
    vth = vth_fraction * vdd
    beta = analytic_beta(vdd, vth, node.driver.r_s)
    calibration = InverterCalibration(vdd=vdd, vth=vth, beta=beta, lam=lam,
                                      driver=node.driver)
    if not refine:
        return calibration
    # Measured/ideal delay ratio is monotone decreasing in beta.
    lo, hi = 0.2, 5.0
    ratio_lo = _delay_ratio(calibration, lo)
    ratio_hi = _delay_ratio(calibration, hi)
    if not (ratio_hi < 1.0 < ratio_lo):
        raise ConvergenceError(
            "calibration bracket failed: delay ratios "
            f"{ratio_lo:.3f} (x0.2) .. {ratio_hi:.3f} (x5) do not straddle 1")
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        ratio = _delay_ratio(calibration, mid)
        if abs(ratio - 1.0) < tolerance:
            return replace(calibration, beta=beta * mid)
        if ratio > 1.0:
            lo = mid
        else:
            hi = mid
    raise ConvergenceError("inverter beta refinement did not converge")


def _delay_ratio(calibration: InverterCalibration, beta_scale: float,
                 *, load_multiple: float = 20.0) -> float:
    """Simulated/ideal falling-delay ratio for a scaled-beta min inverter."""
    scaled = replace(calibration, beta=calibration.beta * beta_scale)
    c_load = load_multiple * scaled.driver.c_0
    measured = measure_falling_delay(scaled, c_load=c_load)
    ideal = math.log(2.0) * scaled.driver.r_s * (c_load + scaled.driver.c_p)
    return measured / ideal


def measure_falling_delay(calibration: InverterCalibration, *,
                          c_load: float, k: float = 1.0) -> float:
    """Simulate a size-k inverter discharging ``c_load``; return 50% delay.

    The input steps 0 -> VDD abruptly; the returned time is from the input
    step to the output falling through VDD/2.
    """
    from ..analysis.waveform import Waveform

    vdd = calibration.vdd
    circuit = Circuit("inverter-characterization")
    circuit.voltage_source("VDD", "vdd", GROUND, vdd)
    t_unit = calibration.driver.r_s * (c_load + calibration.driver.c_p) / k
    delay = 2.0 * t_unit
    circuit.voltage_source(
        "VIN", "in", GROUND,
        Pulse(v1=0.0, v2=vdd, delay=delay, rise=t_unit / 200.0,
              width=50.0 * t_unit, period=200.0 * t_unit))
    add_mosfet_inverter(circuit, "inv", "in", "out", "vdd", calibration, k)
    circuit.capacitor("CL", "out", GROUND, c_load)

    t_end = delay + 10.0 * t_unit
    dt = t_unit / 100.0
    result = simulate(circuit, t_end, dt,
                      initial_voltages={"out": vdd, "vdd": vdd},
                      options=TransientOptions(max_update=max(1.0, vdd)))
    out = Waveform(result.time, result.voltage("out"))
    crossing = out.falling_crossings(0.5 * vdd)
    if crossing.size == 0:
        raise ConvergenceError("inverter output never fell through VDD/2")
    return float(crossing[0]) - delay


@dataclass(frozen=True)
class VtcReport:
    """Static voltage-transfer characteristic of a calibrated inverter."""

    input_voltages: "np.ndarray"
    output_voltages: "np.ndarray"
    switching_threshold: float     #: v_in where v_out = v_in
    peak_gain: float               #: max |dv_out/dv_in|
    noise_margin_low: float        #: NML = V_IL - 0
    noise_margin_high: float      #: NMH = VDD - V_IH

    @property
    def symmetric(self) -> bool:
        """True when the threshold sits within 5% of VDD/2."""
        vdd = float(self.input_voltages[-1])
        return abs(self.switching_threshold - 0.5 * vdd) < 0.05 * vdd


def inverter_vtc(calibration: InverterCalibration, *, k: float = 1.0,
                 points: int = 81) -> VtcReport:
    """DC voltage-transfer curve of a size-k inverter via the MNA solver.

    Sweeps v_in over [0, VDD], solving the DC operating point at each
    step, and extracts the switching threshold (v_out = v_in crossing),
    the peak small-signal gain and the unity-gain noise margins.
    """
    import numpy as np

    vdd = calibration.vdd
    v_in = np.linspace(0.0, vdd, points)
    v_out = np.empty(points)
    for i, vi in enumerate(v_in):
        circuit = Circuit("vtc-point")
        circuit.voltage_source("VDD", "vdd", GROUND, vdd)
        circuit.voltage_source("VIN", "in", GROUND, float(vi))
        add_mosfet_inverter(circuit, "inv", "in", "out", "vdd",
                            calibration, k)
        from ..circuits.mna import dc_operating_point
        v_out[i] = dc_operating_point(circuit)["out"]

    gain = np.gradient(v_out, v_in)
    crossing_idx = int(np.argmin(np.abs(v_out - v_in)))
    threshold = float(v_in[crossing_idx])
    # Unity-gain points bracket the transition region.
    steep = np.nonzero(np.abs(gain) >= 1.0)[0]
    if steep.size:
        v_il = float(v_in[steep[0]])
        v_ih = float(v_in[steep[-1]])
    else:
        v_il, v_ih = threshold, threshold
    return VtcReport(input_voltages=v_in, output_voltages=v_out,
                     switching_threshold=threshold,
                     peak_gain=float(np.max(np.abs(gain))),
                     noise_margin_low=v_il,
                     noise_margin_high=vdd - v_ih)


def measured_driver_params(calibration: InverterCalibration, *,
                           load_multiple: float = 20.0) -> DriverParams:
    """Re-measure (r_s, c_p, c_0) of the calibrated inverter by simulation.

    c_0 and c_p are linear capacitors by construction and are returned
    verbatim; r_s is extracted from the simulated 50% discharge delay via
    the ideal-switch relation tau = ln(2) r_s (C_load + c_p).  This is the
    simulator-based equivalent of the paper's SPICE characterization, used
    by the Table 1 experiment as a cross-check.
    """
    c_load = load_multiple * calibration.driver.c_0
    tau = measure_falling_delay(calibration, c_load=c_load)
    r_s = tau / (math.log(2.0) * (c_load + calibration.driver.c_p))
    return DriverParams(r_s=r_s, c_p=calibration.driver.c_p,
                        c_0=calibration.driver.c_0)
