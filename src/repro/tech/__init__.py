"""Technology data (Table 1) and simulator-based device characterization."""

from .characterize import (DEFAULT_VTH_FRACTION, InverterCalibration,
                           VtcReport, add_mosfet_inverter, analytic_beta,
                           calibrate_inverter, inverter_vtc,
                           measure_falling_delay, measured_driver_params)
from .node import (MAX_PRACTICAL_INDUCTANCE, NODE_100NM, NODE_100NM_EPS_250NM,
                   NODE_250NM, NODES, TechnologyNode, WireGeometrySpec,
                   get_node)

__all__ = [
    "DEFAULT_VTH_FRACTION", "InverterCalibration", "VtcReport",
    "add_mosfet_inverter", "analytic_beta", "calibrate_inverter",
    "inverter_vtc", "measure_falling_delay", "measured_driver_params",
    "MAX_PRACTICAL_INDUCTANCE", "NODE_100NM", "NODE_100NM_EPS_250NM",
    "NODE_250NM", "NODES", "TechnologyNode", "WireGeometrySpec", "get_node",
]
