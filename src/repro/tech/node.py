"""Technology parameter database (paper Table 1, NTRS-1997 derived).

Both nodes describe the top-level metal (metal 6 at 250 nm, metal 8 at
100 nm) of a copper process.  The driver parameters r_s, c_0, c_p were
obtained in the paper by SPICE-characterizing the RC-optimal repeater and
inverting the closed-form optimum identities; the same values are stored
here verbatim (and re-derived from our own circuit simulator by
:mod:`repro.tech.characterize` as a cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .. import units
from ..core.params import DriverParams, LineParams


@dataclass(frozen=True)
class WireGeometrySpec:
    """Top-metal wire geometry of a node (SI units, from Table 1)."""

    width: float          #: drawn wire width (m)
    pitch: float          #: wire pitch (m)
    height: float         #: metal thickness (m)
    t_ins: float          #: distance from wire to substrate (m)

    @property
    def spacing(self) -> float:
        """Edge-to-edge spacing to the nearest neighbour (m)."""
        return self.pitch - self.width

    @property
    def aspect_ratio(self) -> float:
        """Thickness / width; > 1 in DSM technologies (Sec. 3 remark)."""
        return self.height / self.width

    @property
    def cross_section_area(self) -> float:
        """Current-carrying cross section width x thickness (m^2)."""
        return self.width * self.height


@dataclass(frozen=True)
class TechnologyNode:
    """One technology node: line, driver, geometry and supply parameters."""

    name: str
    feature_size: float          #: nominal feature size (m)
    line: LineParams             #: top-metal r, l(=0 placeholder), c (SI)
    driver: DriverParams         #: minimum repeater r_s, c_p, c_0 (SI)
    geometry: WireGeometrySpec
    epsilon_r: float             #: interlevel dielectric constant
    vdd: float                   #: nominal supply voltage (V)
    metal_level: int             #: top metal index (6 or 8 in the paper)

    def line_with_inductance(self, l: float) -> LineParams:
        """Line parameters with the given inductance per unit length (H/m)."""
        return self.line.with_inductance(l)

    def with_dielectric_of(self, other: "TechnologyNode") -> "TechnologyNode":
        """Return a copy using ``other``'s dielectric (hence capacitance).

        This reproduces the paper's control experiment: the 100 nm node with
        the 250 nm dielectric constant has the *same* c per unit length as
        the 250 nm node (the top-metal geometry is identical), isolating the
        driver-scaling contribution to inductance susceptibility in Fig. 7.
        """
        scale = other.epsilon_r / self.epsilon_r
        new_line = self.line.with_capacitance(self.line.c * scale)
        return replace(self, name=f"{self.name}-eps{other.epsilon_r:g}",
                       line=new_line, epsilon_r=other.epsilon_r)


#: 250 nm node, metal 6 (Table 1).
NODE_250NM = TechnologyNode(
    name="250nm",
    feature_size=250 * units.NM,
    line=LineParams(
        r=units.resistance_per_length_from_ohm_per_mm(4.4),
        l=0.0,
        c=units.capacitance_per_length_from_pf_per_m(203.50),
    ),
    driver=DriverParams(
        r_s=11.784 * units.KOHM,
        c_p=6.2474 * units.FF,
        c_0=1.6314 * units.FF,
    ),
    geometry=WireGeometrySpec(
        width=2.0 * units.UM,
        pitch=4.0 * units.UM,
        height=2.5 * units.UM,
        t_ins=13.9 * units.UM,
    ),
    epsilon_r=3.3,
    vdd=2.5,
    metal_level=6,
)

#: 100 nm node, metal 8 (Table 1).
NODE_100NM = TechnologyNode(
    name="100nm",
    feature_size=100 * units.NM,
    line=LineParams(
        r=units.resistance_per_length_from_ohm_per_mm(4.4),
        l=0.0,
        c=units.capacitance_per_length_from_pf_per_m(123.33),
    ),
    driver=DriverParams(
        r_s=7.534 * units.KOHM,
        c_p=3.68 * units.FF,
        c_0=0.758 * units.FF,
    ),
    geometry=WireGeometrySpec(
        width=2.0 * units.UM,
        pitch=4.0 * units.UM,
        height=2.5 * units.UM,
        t_ins=15.4 * units.UM,
    ),
    epsilon_r=2.0,
    vdd=1.2,
    metal_level=8,
)

#: The paper's control case: 100 nm devices with the 250 nm dielectric,
#: which makes c identical to the 250 nm node (203.5 pF/m).
NODE_100NM_EPS_250NM = NODE_100NM.with_dielectric_of(NODE_250NM)

#: All nodes keyed by name.
NODES = {
    NODE_250NM.name: NODE_250NM,
    NODE_100NM.name: NODE_100NM,
    NODE_100NM_EPS_250NM.name: NODE_100NM_EPS_250NM,
}

#: The paper's sweep bound: worst-case global-wire inductance < 5 nH/mm.
MAX_PRACTICAL_INDUCTANCE = units.inductance_per_length_from_nh_per_mm(5.0)


def get_node(name: str) -> TechnologyNode:
    """Look up a technology node by name ('250nm', '100nm', ...)."""
    try:
        return NODES[name]
    except KeyError:
        known = ", ".join(sorted(NODES))
        raise KeyError(f"unknown technology node {name!r}; known: {known}") \
            from None
