"""Unit tests for the shared ring-oscillator experiment machinery."""

import pytest

from repro import rc_optimum, units
from repro.errors import ParameterError
from repro.experiments.ring import (calibrated, expected_period, run_ring)
from repro.tech import NODE_100NM


class TestCalibrationCache:
    def test_cached_instance_reused(self):
        a = calibrated("100nm")
        b = calibrated("100nm")
        assert a is b

    def test_calibration_matches_node(self):
        calibration = calibrated("100nm")
        assert calibration.vdd == NODE_100NM.vdd
        assert calibration.driver == NODE_100NM.driver


class TestExpectedPeriod:
    def test_scales_with_stage_count(self):
        five = expected_period(NODE_100NM, 5)
        seven = expected_period(NODE_100NM, 7)
        assert seven == pytest.approx(five * 7.0 / 5.0)

    def test_is_multiple_of_rc_stage_delay(self):
        rc = rc_optimum(NODE_100NM.line, NODE_100NM.driver)
        assert expected_period(NODE_100NM, 5) == pytest.approx(
            10.0 * rc.tau_opt)


class TestRunRing:
    @pytest.fixture(scope="class")
    def short_run(self):
        return run_ring("100nm", 1.0, segments=6, period_budget=6.0,
                        steps_per_period=300)

    def test_waveforms_available(self, short_run):
        vin = short_run.input_waveform
        vout = short_run.output_waveform
        assert vin.time.shape == vout.time.shape
        assert vin.duration > 0.0

    def test_voltages_bounded_near_rails(self, short_run):
        """Even with ringing, voltages stay within a few VDD of the rails."""
        vdd = short_run.oscillator.vdd
        for waveform in (short_run.input_waveform,
                         short_run.output_waveform):
            assert waveform.values.max() < 4.0 * vdd
            assert waveform.values.min() > -3.0 * vdd

    def test_probe_stage_recorded(self, short_run):
        assert short_run.probe_stage == 2
        assert short_run.l == pytest.approx(1.0 * units.NH_PER_MM)

    def test_rejects_negative_inductance(self):
        with pytest.raises(ParameterError):
            run_ring("100nm", -1.0)

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            run_ring("65nm", 1.0)
