"""Unit tests for interconnect current extraction and densities."""

import numpy as np
import pytest

from repro import LineParams
from repro.analysis.currents import (CurrentDensityReport,
                                     current_density_report, line_current)
from repro.circuits import Circuit, GROUND, Sine, Step, add_rlc_ladder, simulate
from repro.errors import ParameterError

LINE = LineParams(r=4400.0, l=1e-6, c=2e-10)
RC_LINE = LineParams(r=4400.0, l=0.0, c=2e-10)


def driven_ladder(line, h=0.005, segments=6, waveform=None):
    circuit = Circuit("driven-ladder")
    source = waveform or Step(level=1.0)
    circuit.voltage_source("V1", "in", GROUND, source)
    circuit.resistor("RS", "in", "a", 100.0)
    ladder = add_rlc_ladder(circuit, "w", "a", "b", line, h, segments)
    circuit.capacitor("CL", "b", GROUND, 1e-14)
    return circuit, ladder


class TestLineCurrent:
    def test_rlc_uses_inductor_branch_current(self):
        circuit, ladder = driven_ladder(LINE)
        result = simulate(circuit, 5e-9, 5e-12)
        waveform = line_current(result, ladder, 0)
        direct = result.branch_current("w.L1")
        assert waveform.values == pytest.approx(direct)

    def test_rc_uses_resistor_current(self):
        circuit, ladder = driven_ladder(RC_LINE)
        result = simulate(circuit, 5e-9, 5e-12)
        waveform = line_current(result, ladder, 0)
        direct = result.resistor_current("w.R1")
        assert waveform.values == pytest.approx(direct)

    def test_steady_state_dc_current_zero(self):
        """After settling into a capacitive load, the line current -> 0."""
        circuit, ladder = driven_ladder(LINE)
        result = simulate(circuit, 50e-9, 20e-12)
        waveform = line_current(result, ladder, 0)
        assert abs(waveform.values[-1]) < 1e-6

    def test_segment_out_of_range(self):
        circuit, ladder = driven_ladder(LINE)
        result = simulate(circuit, 1e-9, 5e-12)
        with pytest.raises(ParameterError):
            line_current(result, ladder, 99)


class TestDensityReport:
    def test_sine_steady_state_density(self):
        """AC steady state: rms = peak/sqrt(2) and densities scale by area."""
        amplitude, r_total = 1.0, 100.0 + 4400.0 * 0.005
        circuit, ladder = driven_ladder(
            RC_LINE, waveform=Sine(offset=0.0, amplitude=amplitude,
                                   frequency=1e8))
        # Give the line a resistive termination so a real AC current flows.
        circuit.resistor("RT", "b", GROUND, 50.0)
        result = simulate(circuit, 100e-9, 20e-12)
        area = 5e-12
        report = current_density_report(result, ladder, area,
                                        window_start=50e-9)
        assert report.rms_current == pytest.approx(
            report.peak_current / np.sqrt(2.0), rel=0.05)
        assert report.peak_density == pytest.approx(
            report.peak_current / area)
        assert report.peak_density_a_per_cm2 == pytest.approx(
            report.peak_density * 1e-4)

    def test_window_defaults_to_second_half(self):
        circuit, ladder = driven_ladder(LINE)
        result = simulate(circuit, 10e-9, 10e-12)
        report = current_density_report(result, ladder, 5e-12)
        assert report.window_start == pytest.approx(5e-9, rel=1e-6)
        assert report.window_end == pytest.approx(10e-9, rel=1e-6)

    def test_rejects_bad_cross_section(self):
        circuit, ladder = driven_ladder(LINE)
        result = simulate(circuit, 1e-9, 5e-12)
        with pytest.raises(ParameterError):
            current_density_report(result, ladder, 0.0)

    def test_report_is_plain_data(self):
        report = CurrentDensityReport(peak_current=1e-3, rms_current=5e-4,
                                      cross_section=5e-12,
                                      window_start=0.0, window_end=1e-9)
        assert report.peak_density == pytest.approx(2e8)
        assert report.rms_density == pytest.approx(1e8)
