"""Unit tests for the behavioral switch-level inverter."""

import numpy as np
import pytest

from repro.circuits import Circuit, GROUND, SwitchInverter, Step, simulate
from repro.errors import ParameterError


def inverter(vdd=1.2, threshold=0.6, r_out=100.0, width=0.02):
    return SwitchInverter(name="inv", input_node="in", output_node="out",
                          vdd=vdd, threshold=threshold, r_out=r_out,
                          width=width)


class TestRailSelector:
    def test_low_input_selects_high_rail(self):
        rail, _ = inverter().rail_voltage(0.0)
        assert rail == pytest.approx(1.2, abs=1e-6)

    def test_high_input_selects_low_rail(self):
        rail, _ = inverter().rail_voltage(1.2)
        assert rail == pytest.approx(0.0, abs=1e-6)

    def test_midpoint_is_half_rail(self):
        rail, slope = inverter().rail_voltage(0.6)
        assert rail == pytest.approx(0.6)
        assert slope < 0.0           # inverting gain

    def test_gain_scales_with_width(self):
        sharp = inverter(width=0.005)
        soft = inverter(width=0.1)
        assert abs(sharp.rail_voltage(0.6)[1]) > abs(soft.rail_voltage(0.6)[1])

    def test_extreme_inputs_numerically_safe(self):
        rail_low, _ = inverter().rail_voltage(-100.0)
        rail_high, _ = inverter().rail_voltage(100.0)
        assert rail_low == pytest.approx(1.2)
        assert rail_high == pytest.approx(0.0, abs=1e-12)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ParameterError):
            inverter(vdd=0.0)
        with pytest.raises(ParameterError):
            inverter(r_out=-1.0)
        with pytest.raises(ParameterError):
            inverter(width=0.0)


class TestInCircuit:
    def test_inverts_a_step(self):
        circuit = Circuit("switch-inverter")
        circuit.voltage_source("VIN", "in", GROUND,
                               Step(level=1.2, delay=1e-9, rise=0.1e-9))
        circuit.add(inverter())
        circuit.capacitor("CL", "out", GROUND, 1e-13)
        result = simulate(circuit, 5e-9, 5e-12,
                          initial_voltages={"out": 1.2})
        v_out = result.voltage("out")
        assert v_out[0] == pytest.approx(1.2, abs=0.05)
        assert v_out[-1] == pytest.approx(0.0, abs=0.05)

    def test_output_time_constant_is_rout_c(self):
        """Discharge follows exp(-t/(r_out C)) after the input step."""
        r_out, c_load = 100.0, 1e-13
        circuit = Circuit("switch-tau")
        circuit.voltage_source("VIN", "in", GROUND, Step(level=1.2))
        circuit.add(inverter(r_out=r_out))
        circuit.capacitor("CL", "out", GROUND, c_load)
        tau = r_out * c_load
        result = simulate(circuit, 6.0 * tau, tau / 200.0,
                          initial_voltages={"out": 1.2})
        from repro.analysis import Waveform
        waveform = Waveform(result.time, result.voltage("out"))
        t_half = waveform.falling_crossings(0.6)[0]
        assert t_half == pytest.approx(np.log(2.0) * tau, rel=0.05)

    def test_input_draws_no_current(self):
        """A series resistor to the input sees no voltage drop."""
        circuit = Circuit("switch-hiZ")
        circuit.voltage_source("VIN", "drive", GROUND, 1.0)
        circuit.resistor("RS", "drive", "in", 1e6)
        circuit.add(inverter())
        circuit.capacitor("CL", "out", GROUND, 1e-13)
        result = simulate(circuit, 1e-9, 1e-11)
        assert result.voltage("in")[-1] == pytest.approx(1.0, abs=1e-4)
